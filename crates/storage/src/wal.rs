//! Physical write-ahead log for NH-Index mutations.
//!
//! This is an *undo* log: before a mutation overwrites any page that
//! existed when the transaction began, the page's before-image is appended
//! here. If the process dies mid-mutation, recovery replays the images and
//! truncates the files back to their pre-transaction length, restoring the
//! exact pre-op byte state. Durability of the *new* state comes from the
//! owner's commit point — an atomic meta-file rename performed after all
//! data pages are fsynced — not from the log.
//!
//! One log covers both page files of an index (B+-tree and blob store),
//! distinguished by a one-byte file tag. A mutation is bracketed by
//! `Begin`/`Commit` records and the log holds at most one transaction:
//! `begin` truncates whatever a previous committed transaction left.
//!
//! ## Record format
//!
//! ```text
//! +--------+--------+--------+------+------------------+
//! | len u32| crc u32| lsn u64| kind | body (len-9 B)   |
//! +--------+--------+--------+------+------------------+
//! ```
//!
//! `len` counts `lsn + kind + body`; `crc` is CRC-32 (IEEE) over those
//! same bytes. Recovery reads records until the first short read or CRC
//! mismatch — a torn tail simply ends the log.
//!
//! * `Begin`  — body: `generation u64, baseline_pages[0] u64,
//!   baseline_pages[1] u64` (file lengths, in pages, at transaction start).
//! * `Image`  — body: `file_tag u8, page_id u64, raw page (PAGE_SIZE B)`.
//!   Only pages below the baseline are logged (first image wins); pages
//!   appended by the transaction are undone by truncation.
//! * `Commit` — empty body, appended after the owner's commit point.
//!   Best-effort: recovery decides committed-vs-not from the owner's
//!   persisted generation, so a lost `Commit` record is harmless.

use crate::page::PAGE_SIZE;
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Number of page files one log covers (B+-tree + blobs).
pub const WAL_FILES: usize = 2;

const KIND_BEGIN: u8 = 1;
const KIND_IMAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// Largest legal record body: an `Image` record.
const MAX_BODY: usize = 1 + 8 + PAGE_SIZE;

struct TxState {
    baseline_pages: [u64; WAL_FILES],
    logged: HashSet<(u8, u64)>,
}

struct WalInner {
    file: File,
    next_lsn: u64,
    /// LSN of the last appended record, and the last one covered by fsync.
    appended: u64,
    synced: u64,
    tx: Option<TxState>,
}

/// The live write-ahead log of one index directory.
pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Opens (creating or truncating) the log at `path`, ready for a new
    /// transaction. Callers must run [`read_log`]/[`rollback`] recovery
    /// *before* constructing the live log — opening discards any tail.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Wal {
            inner: Mutex::new(WalInner {
                file,
                next_lsn: 1,
                appended: 0,
                synced: 0,
                tx: None,
            }),
        })
    }

    /// Begins a mutation transaction. `generation` is the owner's
    /// *pre-mutation* generation counter (recovery compares it against the
    /// persisted one to tell committed from in-flight); `baseline_pages`
    /// are the current page counts of the covered files.
    pub fn begin(&self, generation: u64, baseline_pages: [u64; WAL_FILES]) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.tx.is_some() {
            return Err(StorageError::Wal(
                "begin with a transaction already open".into(),
            ));
        }
        // At most one transaction lives in the log: drop the previous
        // committed one.
        inner.file.set_len(0)?;
        inner.file.seek(SeekFrom::Start(0))?;
        inner.appended = 0;
        inner.synced = 0;
        let mut body = Vec::with_capacity(8 * (1 + WAL_FILES));
        body.extend_from_slice(&generation.to_le_bytes());
        for &b in &baseline_pages {
            body.extend_from_slice(&b.to_le_bytes());
        }
        append_record(&mut inner, KIND_BEGIN, &body)?;
        inner.tx = Some(TxState {
            baseline_pages,
            logged: HashSet::new(),
        });
        Ok(())
    }

    /// True when a transaction is open and `page_id` of file `tag` still
    /// needs its before-image logged before being overwritten.
    pub fn needs_image(&self, tag: u8, page_id: u64) -> bool {
        let inner = self.inner.lock();
        match &inner.tx {
            Some(tx) => {
                page_id < tx.baseline_pages[tag as usize] && !tx.logged.contains(&(tag, page_id))
            }
            None => false,
        }
    }

    /// Appends the before-image of a page (first image wins; later calls
    /// for the same page are ignored). No-op outside a transaction.
    pub fn log_image(&self, tag: u8, page_id: u64, raw: &[u8; PAGE_SIZE]) -> Result<()> {
        let mut inner = self.inner.lock();
        let Some(tx) = &inner.tx else {
            return Ok(());
        };
        if page_id >= tx.baseline_pages[tag as usize] || tx.logged.contains(&(tag, page_id)) {
            return Ok(());
        }
        let mut body = Vec::with_capacity(MAX_BODY);
        body.push(tag);
        body.extend_from_slice(&page_id.to_le_bytes());
        body.extend_from_slice(raw.as_slice());
        append_record(&mut inner, KIND_IMAGE, &body)?;
        if let Some(tx) = inner.tx.as_mut() {
            tx.logged.insert((tag, page_id));
        }
        Ok(())
    }

    /// Fsyncs the log up to the last appended record. The disk manager
    /// calls this before overwriting data pages, so one sync covers every
    /// image logged since the last barrier (group fsync).
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.appended > inner.synced {
            crate::fault_check("wal.sync")?;
            inner.file.sync_all()?;
            inner.synced = inner.appended;
        }
        Ok(())
    }

    /// Ends the transaction after the owner's commit point. Appends the
    /// `Commit` record (best-effort durable — see module docs).
    pub fn commit(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.tx.is_none() {
            return Err(StorageError::Wal("commit without a transaction".into()));
        }
        append_record(&mut inner, KIND_COMMIT, &[])?;
        inner.tx = None;
        Ok(())
    }

    /// True while a transaction is open.
    pub fn in_tx(&self) -> bool {
        self.inner.lock().tx.is_some()
    }
}

fn append_record(inner: &mut WalInner, kind: u8, body: &[u8]) -> Result<()> {
    crate::fault_check("wal.append")?;
    let lsn = inner.next_lsn;
    inner.next_lsn += 1;
    let mut rec = Vec::with_capacity(8 + 9 + body.len());
    let len = (8 + 1 + body.len()) as u32;
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&[0u8; 4]); // crc placeholder
    rec.extend_from_slice(&lsn.to_le_bytes());
    rec.push(kind);
    rec.extend_from_slice(body);
    let crc = crc32(&rec[8..]);
    rec[4..8].copy_from_slice(&crc.to_le_bytes());
    inner.file.write_all(&rec)?;
    inner.appended = lsn;
    Ok(())
}

/// A page before-image recovered from the log.
pub struct PageImage {
    /// Which covered file the page belongs to (0 = B+-tree, 1 = blobs by
    /// NH-Index convention).
    pub file: u8,
    /// Page index within that file.
    pub page_id: u64,
    /// The raw pre-transaction page bytes.
    pub data: Box<[u8; PAGE_SIZE]>,
}

/// The (single) transaction parsed out of a log file.
pub struct LoggedTx {
    /// Owner generation at `begin` (pre-mutation).
    pub generation: u64,
    /// Covered-file lengths (in pages) at `begin`.
    pub baseline_pages: [u64; WAL_FILES],
    /// Before-images, in log order (at most one per page).
    pub images: Vec<PageImage>,
    /// Whether a `Commit` record survived.
    pub committed: bool,
}

/// Reads a little-endian `u32` out of `bytes` at `at`, or `None` when the
/// slice is too short — parsing never indexes unchecked.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(at..at + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

/// Little-endian `u64` counterpart of [`le_u32`].
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let raw: [u8; 8] = bytes.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}

/// One structurally valid record body, already length- and tag-checked.
enum ParsedRecord {
    Begin {
        generation: u64,
        baseline_pages: [u64; WAL_FILES],
    },
    Image(PageImage),
    Commit,
}

/// Validates and decodes one record body. `None` means the record is
/// malformed (wrong body length, out-of-range file tag, unknown kind) —
/// the caller treats it exactly like a torn tail and stops trusting the
/// log there. No code path indexes past a checked bound, so corrupt
/// bytes can never panic recovery.
fn parse_record(kind: u8, body: &[u8]) -> Option<ParsedRecord> {
    match kind {
        KIND_BEGIN => {
            if body.len() != 8 * (1 + WAL_FILES) {
                return None;
            }
            let generation = le_u64(body, 0)?;
            let mut baseline_pages = [0u64; WAL_FILES];
            for (i, b) in baseline_pages.iter_mut().enumerate() {
                *b = le_u64(body, 8 + 8 * i)?;
            }
            Some(ParsedRecord::Begin {
                generation,
                baseline_pages,
            })
        }
        KIND_IMAGE => {
            if body.len() != 1 + 8 + PAGE_SIZE {
                return None;
            }
            let file_tag = *body.first()?;
            if file_tag as usize >= WAL_FILES {
                return None;
            }
            let page_id = le_u64(body, 1)?;
            let raw = body.get(9..)?;
            let mut data: Box<[u8; PAGE_SIZE]> = Box::new([0u8; PAGE_SIZE]);
            data.copy_from_slice(raw);
            Some(ParsedRecord::Image(PageImage {
                file: file_tag,
                page_id,
                data,
            }))
        }
        KIND_COMMIT => {
            if !body.is_empty() {
                return None;
            }
            Some(ParsedRecord::Commit)
        }
        _ => None,
    }
}

/// Parses the log at `path`. Returns `None` when the file is missing,
/// empty, or holds no complete `Begin` record. Reading stops at the first
/// torn or malformed record (short read, CRC mismatch, bad length, bad
/// tag, protocol violation) — everything before it is trusted, everything
/// after is discarded. Only a *real* I/O error (not end-of-file) surfaces
/// as `Err`; corrupt bytes always resolve to a truncated-but-valid `Ok`,
/// never a panic.
pub fn read_log(path: &Path) -> Result<Option<LoggedTx>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut tx: Option<LoggedTx> = None;
    loop {
        let mut hdr = [0u8; 8];
        match file.read_exact(&mut hdr) {
            Ok(()) => {}
            // Clean EOF or torn header — end of trusted log.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let (Some(len), Some(crc)) = (le_u32(&hdr, 0), le_u32(&hdr, 4)) else {
            break;
        };
        let len = len as usize;
        if !(9..=9 + MAX_BODY).contains(&len) {
            break;
        }
        let mut rec = vec![0u8; len];
        match file.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break, // torn tail
            Err(e) => return Err(e.into()),
        }
        if crc32(&rec) != crc {
            break;
        }
        let Some(&kind) = rec.get(8) else {
            break;
        };
        let Some(body) = rec.get(9..) else {
            break;
        };
        let Some(parsed) = parse_record(kind, body) else {
            break;
        };
        match (parsed, &mut tx) {
            (
                ParsedRecord::Begin {
                    generation,
                    baseline_pages,
                },
                None,
            ) => {
                tx = Some(LoggedTx {
                    generation,
                    baseline_pages,
                    images: Vec::new(),
                    committed: false,
                });
            }
            (ParsedRecord::Image(img), Some(t)) if !t.committed => {
                t.images.push(img);
            }
            (ParsedRecord::Commit, Some(t)) if !t.committed => {
                t.committed = true;
            }
            // Anything out of protocol (records before Begin, a second
            // Begin, records after Commit) ends the trusted prefix.
            _ => break,
        }
    }
    Ok(tx)
}

/// What [`rollback`] undid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RollbackStats {
    /// Before-images written back.
    pub pages_restored: u64,
    /// Bytes truncated off the covered files (pages the transaction
    /// appended past the baselines).
    pub bytes_truncated: u64,
}

/// Rolls an uncommitted transaction back: restores every before-image and
/// truncates each covered file to its baseline length, then fsyncs.
/// Idempotent — safe to re-run if recovery itself is interrupted.
pub fn rollback(tx: &LoggedTx, files: [&Path; WAL_FILES]) -> Result<RollbackStats> {
    let mut stats = RollbackStats::default();
    for (i, path) in files.iter().enumerate() {
        let baseline_bytes = tx.baseline_pages[i] * PAGE_SIZE as u64;
        let mut file = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && tx.baseline_pages[i] == 0 => {
                // never materialized and nothing to restore
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        for img in tx.images.iter().filter(|im| im.file as usize == i) {
            file.seek(SeekFrom::Start(img.page_id * PAGE_SIZE as u64))?;
            file.write_all(img.data.as_slice())?;
            stats.pages_restored += 1;
        }
        let len = file.metadata()?.len();
        if len > baseline_bytes {
            file.set_len(baseline_bytes)?;
            stats.bytes_truncated += len - baseline_bytes;
        }
        file.sync_all()?;
    }
    Ok(stats)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn begin_image_commit_roundtrip() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(7, [2, 0]).unwrap();
        let img = Box::new([0xABu8; PAGE_SIZE]);
        wal.log_image(0, 1, &img).unwrap();
        // duplicate image and beyond-baseline image are ignored
        wal.log_image(0, 1, &img).unwrap();
        wal.log_image(0, 5, &img).unwrap();
        wal.sync().unwrap();
        drop(wal);

        let tx = read_log(&p).unwrap().expect("one tx");
        assert_eq!(tx.generation, 7);
        assert_eq!(tx.baseline_pages, [2, 0]);
        assert_eq!(tx.images.len(), 1);
        assert_eq!((tx.images[0].file, tx.images[0].page_id), (0, 1));
        assert!(!tx.committed);
    }

    #[test]
    fn commit_record_marks_tx_committed() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(1, [0, 0]).unwrap();
        wal.commit().unwrap();
        wal.sync().unwrap();
        let tx = read_log(&p).unwrap().expect("one tx");
        assert!(tx.committed);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(3, [1, 1]).unwrap();
        wal.log_image(1, 0, &Box::new([9u8; PAGE_SIZE])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // truncate mid-record: the image record is torn, Begin survives
        let full = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(full - 100).unwrap();
        drop(f);
        let tx = read_log(&p).unwrap().expect("begin survives");
        assert_eq!(tx.generation, 3);
        assert!(tx.images.is_empty());
        assert!(!tx.committed);
    }

    #[test]
    fn rollback_restores_images_and_truncates() {
        let d = tempfile::tempdir().unwrap();
        let bt = d.path().join("bt.pages");
        let bl = d.path().join("bl.pages");
        // file 0: two pages of 0x11; file 1: empty
        std::fs::write(&bt, vec![0x11u8; 2 * PAGE_SIZE]).unwrap();
        std::fs::write(&bl, Vec::<u8>::new()).unwrap();

        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(0, [2, 0]).unwrap();
        wal.log_image(0, 1, &Box::new([0x11u8; PAGE_SIZE])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // simulate the mutation: overwrite page 1, append page 2, grow blobs
        let mut bytes = std::fs::read(&bt).unwrap();
        bytes[PAGE_SIZE..].fill(0x22);
        bytes.extend(vec![0x33u8; PAGE_SIZE]);
        std::fs::write(&bt, &bytes).unwrap();
        std::fs::write(&bl, vec![0x44u8; PAGE_SIZE]).unwrap();

        let tx = read_log(&p).unwrap().unwrap();
        let stats = rollback(&tx, [&bt, &bl]).unwrap();
        assert_eq!(stats.pages_restored, 1);
        assert_eq!(stats.bytes_truncated, 2 * PAGE_SIZE as u64);
        assert_eq!(std::fs::read(&bt).unwrap(), vec![0x11u8; 2 * PAGE_SIZE]);
        assert!(std::fs::read(&bl).unwrap().is_empty());
        // idempotent
        let again = rollback(&tx, [&bt, &bl]).unwrap();
        assert_eq!(again.pages_restored, 1);
        assert_eq!(again.bytes_truncated, 0);
        assert_eq!(std::fs::read(&bt).unwrap(), vec![0x11u8; 2 * PAGE_SIZE]);
    }

    /// Writes a full begin + image + commit log and replays `read_log`
    /// at *every* truncation point of the file. No prefix may panic or
    /// error: a truncated tail must always parse as a (possibly shorter)
    /// trusted prefix, and any recovered transaction must be usable by
    /// [`rollback`].
    #[test]
    fn every_truncation_point_recovers_without_panic() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(11, [1, 1]).unwrap();
        wal.log_image(0, 0, &Box::new([0x5Au8; PAGE_SIZE])).unwrap();
        wal.log_image(1, 0, &Box::new([0xA5u8; PAGE_SIZE])).unwrap();
        wal.commit().unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::read(&p).unwrap();

        let bt = d.path().join("bt.pages");
        let bl = d.path().join("bl.pages");
        for cut in 0..=full.len() {
            let q = d.path().join("cut.wal");
            std::fs::write(&q, &full[..cut]).unwrap();
            let tx = read_log(&q).unwrap(); // must never panic or Err
            if let Some(tx) = tx {
                assert_eq!(tx.generation, 11);
                assert_eq!(tx.baseline_pages, [1, 1]);
                assert!(tx.images.len() <= 2);
                // A recovered prefix must drive rollback cleanly.
                std::fs::write(&bt, vec![0u8; 2 * PAGE_SIZE]).unwrap();
                std::fs::write(&bl, vec![0u8; 2 * PAGE_SIZE]).unwrap();
                let stats = rollback(&tx, [&bt, &bl]).unwrap();
                assert_eq!(stats.pages_restored, tx.images.len() as u64);
            } else {
                // Only prefixes too short for a complete Begin record
                // (8-byte header + lsn + kind + body) may parse as "no
                // transaction".
                assert!(cut < 8 + 8 + 1 + 8 * (1 + WAL_FILES));
            }
        }
    }

    /// Corrupt bytes in the header or body must end the trusted prefix,
    /// never panic: garbage lengths, bad kinds, bad file tags, and flipped
    /// body bytes all resolve to a clean (possibly empty) parse.
    #[test]
    fn corrupt_records_end_the_trusted_prefix() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("t.wal");
        let wal = Wal::open(&p).unwrap();
        wal.begin(5, [1, 0]).unwrap();
        wal.log_image(0, 0, &Box::new([1u8; PAGE_SIZE])).unwrap();
        wal.commit().unwrap();
        wal.sync().unwrap();
        drop(wal);
        let full = std::fs::read(&p).unwrap();
        let begin_len = 8 + 8 + 1 + 8 * (1 + WAL_FILES);

        // Garbage length field on the very first record: nothing trusted.
        let mut bad = full.clone();
        bad[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let q = d.path().join("len.wal");
        std::fs::write(&q, &bad).unwrap();
        assert!(read_log(&q).unwrap().is_none());

        // Flip a byte inside the image body: CRC rejects the record, the
        // Begin before it survives.
        let mut bad = full.clone();
        bad[begin_len + 20] ^= 0xFF;
        let q = d.path().join("body.wal");
        std::fs::write(&q, &bad).unwrap();
        let tx = read_log(&q).unwrap().expect("begin survives");
        assert_eq!(tx.generation, 5);
        assert!(tx.images.is_empty());
        assert!(!tx.committed);

        // A record whose CRC is valid but whose kind is unknown ends the
        // prefix (hand-built: recompute the CRC after corrupting the kind).
        let mut bad = full.clone();
        bad[begin_len + 16] = 0xEE; // kind byte of the image record
        let img_len =
            u32::from_le_bytes(bad[begin_len..begin_len + 4].try_into().unwrap()) as usize;
        let crc = crc32(&bad[begin_len + 8..begin_len + 8 + img_len]);
        bad[begin_len + 4..begin_len + 8].copy_from_slice(&crc.to_le_bytes());
        let q = d.path().join("kind.wal");
        std::fs::write(&q, &bad).unwrap();
        let tx = read_log(&q).unwrap().expect("begin survives");
        assert!(tx.images.is_empty());
    }

    #[test]
    fn missing_or_empty_log_reads_as_none() {
        let d = tempfile::tempdir().unwrap();
        assert!(read_log(&d.path().join("nope.wal")).unwrap().is_none());
        let p = d.path().join("empty.wal");
        std::fs::write(&p, b"").unwrap();
        assert!(read_log(&p).unwrap().is_none());
    }
}
