//! Failpoint-style fault injection for crash-torture testing.
//!
//! Only compiled with the `failpoints` cargo feature (tests and the
//! `experiments crash` harness). Every I/O side effect on the mutation
//! path calls [`check`] first; the harness arms a per-thread countdown and
//! the Nth operation returns an injected error. Once a fault fires the
//! thread is *tripped*: every subsequent gated operation fails too, which
//! is what makes the simulation a process death rather than a single
//! transient error — the buffer pool's best-effort `Drop` flush, the WAL
//! commit, the meta rename all fail exactly as they would after a kill.
//!
//! State is thread-local so torture sweeps are deterministic and parallel
//! test threads do not interfere.

use std::cell::Cell;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// No injection; all operations pass.
    Disarmed,
    /// Count gated operations without failing (the measuring run of a
    /// torture sweep).
    Counting(u64),
    /// Allow this many more operations, then trip.
    Armed(u64),
    /// A fault has fired: all further operations fail.
    Tripped,
}

thread_local! {
    static MODE: Cell<Mode> = const { Cell::new(Mode::Disarmed) };
}

/// Arms the current thread: the next `allow` gated operations succeed, the
/// one after trips and every operation from then on fails until
/// [`disarm`].
pub fn arm(allow: u64) {
    MODE.with(|m| m.set(Mode::Armed(allow)));
}

/// Switches the current thread to counting mode: operations succeed and
/// are counted. Read the count back with [`disarm`].
pub fn arm_counting() {
    MODE.with(|m| m.set(Mode::Counting(0)));
}

/// Disarms the current thread and returns the number of operations
/// observed since [`arm_counting`] (0 in other modes).
pub fn disarm() -> u64 {
    MODE.with(|m| {
        let prev = m.replace(Mode::Disarmed);
        match prev {
            Mode::Counting(n) => n,
            _ => 0,
        }
    })
}

/// True once an armed fault has fired on this thread.
pub fn is_tripped() -> bool {
    MODE.with(|m| m.get() == Mode::Tripped)
}

/// The gate. Called by the storage layer before each real I/O side effect.
pub fn check(op: &'static str) -> std::io::Result<()> {
    MODE.with(|m| match m.get() {
        Mode::Disarmed => Ok(()),
        Mode::Counting(n) => {
            m.set(Mode::Counting(n + 1));
            Ok(())
        }
        Mode::Armed(0) => {
            m.set(Mode::Tripped);
            Err(injected(op))
        }
        Mode::Armed(n) => {
            m.set(Mode::Armed(n - 1));
            Ok(())
        }
        Mode::Tripped => Err(injected(op)),
    })
}

fn injected(op: &'static str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {op}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_then_armed_trips_at_nth_op() {
        arm_counting();
        for _ in 0..5 {
            check("op").unwrap();
        }
        assert_eq!(disarm(), 5);

        arm(2);
        assert!(check("a").is_ok());
        assert!(check("b").is_ok());
        assert!(check("c").is_err());
        assert!(is_tripped());
        // tripped: everything keeps failing, like a dead process
        assert!(check("d").is_err());
        disarm();
        assert!(check("e").is_ok());
    }
}
