//! Disk storage substrate for the NH-Index.
//!
//! The paper implements the NH-Index inside PostgreSQL: "the second level
//! indices can be implemented simply as a relation with two attributes …
//! the first level index is simply a B+-tree built on this table" (§IV-C).
//! The distinguishing property the evaluation leans on is that the index is
//! **disk-based** — unlike C-Tree it is "not limited by the memory size"
//! (§VI-B.2). This crate supplies the minimal DBMS machinery that claim
//! requires:
//!
//! * [`page`]: 8 KiB pages with checksums.
//! * [`disk`]: a page-granular file manager.
//! * [`buffer`]: a pinned-frame buffer pool with LRU eviction, so working
//!   sets larger than memory stream through a bounded pool (the paper runs
//!   Postgres with a 512 MB buffer pool; ours defaults to a configurable
//!   frame count).
//! * [`btree`]: a disk B+-tree with fixed 12-byte composite keys
//!   `(label, degree, nbConnection)` — exactly the paper's first level —
//!   supporting exact and range scans and sorted bulk loading.
//! * [`blob`]: an append-only blob store for the second-level postings
//!   (node-id lists + neighbor-array bitmaps).
//! * [`readpath`]: the asynchronous read path — an I/O worker pool and a
//!   prefetch staging area behind a [`readpath::ReadBackend`] seam — so
//!   larger-than-RAM query workloads overlap their cold reads instead of
//!   serializing on pool misses.
//! * [`wah`]: word-aligned-hybrid bitmap compression for the posting
//!   bit columns (the classic bitmap-index storage optimization).
//! * [`wal`]: a physical (before-image) write-ahead log bracketing index
//!   mutations, so `insert_graph` / `remove_graph` survive mid-write
//!   failure. Bulk build stays unprotected on purpose — it is
//!   rebuild-on-failure, matching the paper's read-only usage — and the
//!   read path never touches the log.
//! * [`atomic`]: write-temp + fsync + rename whole-file persistence for
//!   manifests and reports.
//! * `faults` (behind the `failpoints` cargo feature): a fault-injection
//!   shim that fails the Nth I/O operation, driving the crash-torture
//!   harness. Compiled out of release builds.
//!
//! This crate itself provides no versioning: pages are mutated in place
//! under a single writer. MVCC lives one layer up — `tale-nhindex` builds
//! immutable index *generations* out of these primitives (one page-file
//! set per generation, committed by an atomic manifest flip) so readers
//! pin a generation and never observe a writer. The only storage-level
//! concession to that design is [`Prefetcher::invalidate_all`] /
//! [`BufferPool::invalidate_prefetched`]: a generation flip rewrites
//! files outside any pool's write path, so staged read-ahead images must
//! be dropped wholesale on commit.

pub mod atomic;
pub mod blob;
pub mod btree;
pub mod buffer;
pub mod disk;
#[cfg(feature = "failpoints")]
pub mod faults;
pub mod page;
pub mod readpath;
pub mod wah;
pub mod wal;

pub use blob::{BlobRef, BlobStore};
pub use btree::{BTree, CompositeKey, TreeCheck};
pub use buffer::{BufferPool, PageGuard, PageGuardMut, PoolStats};
pub use disk::DiskManager;
pub use page::{PageId, PAGE_SIZE};
pub use readpath::{
    DiskReadBackend, IoPool, LatencyBackend, PrefetchStats, Prefetcher, ReadBackend,
};
pub use wal::Wal;

/// Fault-injection gate, called before every real I/O side effect on the
/// mutation path. With the `failpoints` feature off this is a no-op the
/// optimizer removes; with it on, [`faults::check`] decides.
#[cfg(feature = "failpoints")]
#[inline]
pub(crate) fn fault_check(op: &'static str) -> std::io::Result<()> {
    faults::check(op)
}

/// No-op fault gate (the `failpoints` feature is disabled).
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub(crate) fn fault_check(_op: &'static str) -> std::io::Result<()> {
    Ok(())
}

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A page read back with a bad checksum (torn/corrupted write).
    Corrupt(PageId),
    /// A page id outside the allocated file range.
    PageOutOfRange(PageId),
    /// Buffer pool has no evictable frame (all pinned).
    PoolExhausted,
    /// A blob reference pointed outside the store.
    BadBlobRef,
    /// B+-tree structural invariant violated (indicates a bug).
    TreeInvariant(&'static str),
    /// Write-ahead-log protocol violation or unrecoverable log state.
    Wal(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::Corrupt(p) => write!(f, "corrupt page {}", p.0),
            StorageError::PageOutOfRange(p) => write!(f, "page {} out of range", p.0),
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            StorageError::BadBlobRef => write!(f, "blob reference out of bounds"),
            StorageError::TreeInvariant(m) => write!(f, "btree invariant violated: {m}"),
            StorageError::Wal(m) => write!(f, "wal: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
