//! Asynchronous read path: a portable I/O worker pool and a prefetch
//! staging area, behind a [`ReadBackend`] seam.
//!
//! The paper's setting is explicitly larger-than-RAM (a 512 MB Postgres
//! buffer pool over multi-GB protein networks), where probe latency is
//! dominated by cold page reads. The buffer pool's synchronous miss path
//! can only overlap reads across *threads*; this module lets the query
//! engine overlap them across *pages*: the probe stage knows every
//! B+-tree descent and posting-blob page a batch will touch before any
//! worker blocks on them, and hands the list to [`Prefetcher::request`].
//! Worker threads read the pages into a bounded staging area; when the
//! pool later misses on a staged page it takes the image instead of
//! issuing its own read ([`Prefetcher::take`]).
//!
//! [`ReadBackend`] is the portability seam: the default
//! [`DiskReadBackend`] is a blocking positional read through
//! [`DiskManager`], and an io_uring (or any completion-based) backend can
//! slot in later without touching the pool or the staging protocol.
//! Tests substitute latency-injecting backends to prove the pool never
//! holds its mutex across a read.
//!
//! Staleness safety: the staging area holds *disk* images. A page that is
//! dirty in some buffer pool is by definition resident there (dirty pages
//! are never dropped without write-back), so the pool skips resident
//! pages when issuing prefetches and invalidates staged entries whenever
//! it dirties or rewrites a page. Workers re-check that their entry is
//! still wanted before publishing, so a late read of an invalidated page
//! is discarded rather than resurrected.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How a page image is fetched from storage. Implementations must be
/// callable from any thread; the buffer pool calls this *outside* its
/// internal mutex (enforced by a debug assertion in [`DiskManager`]).
pub trait ReadBackend: Send + Sync {
    /// Reads and verifies one page.
    fn read_page(&self, id: PageId) -> Result<Page>;
}

/// The default backend: a blocking checksum-verified read through the
/// pool's [`DiskManager`].
pub struct DiskReadBackend {
    disk: Arc<DiskManager>,
}

impl DiskReadBackend {
    /// Wraps `disk` as a [`ReadBackend`].
    pub fn new(disk: Arc<DiskManager>) -> Self {
        DiskReadBackend { disk }
    }
}

impl ReadBackend for DiskReadBackend {
    fn read_page(&self, id: PageId) -> Result<Page> {
        self.disk.read_page(id)
    }
}

/// Decorates any backend with a fixed per-read sleep — a stand-in for a
/// storage device with real seek latency. Benchmarks on tempfile-backed
/// indexes read from the OS page cache in microseconds, which hides the
/// I/O-wait overlap the async read path exists to create; wrapping the
/// backend restores a disk-like cost model without touching correctness
/// (the bytes still come from the real file).
pub struct LatencyBackend {
    inner: Arc<dyn ReadBackend>,
    delay: std::time::Duration,
}

impl LatencyBackend {
    /// Wraps `inner`, sleeping `delay` before every read.
    pub fn new(inner: Arc<dyn ReadBackend>, delay: std::time::Duration) -> Self {
        LatencyBackend { inner, delay }
    }
}

impl ReadBackend for LatencyBackend {
    fn read_page(&self, id: PageId) -> Result<Page> {
        std::thread::sleep(self.delay);
        self.inner.read_page(id)
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A small pool of OS threads that execute read jobs. One `IoPool` is
/// meant to be shared by every buffer pool of an index (and by every
/// shard of a sharded index), so the total number of in-flight reads is
/// bounded machine-wide regardless of shard count.
pub struct IoPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl IoPool {
    /// Spawns `workers` I/O threads (at least one).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("tale-io-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only to dequeue; the job
                        // itself (a disk read) runs unlocked.
                        let job = {
                            let rx = rx.lock();
                            rx.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // all senders dropped
                        }
                    })
                    .expect("spawn io worker")
            })
            .collect();
        Arc::new(IoPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.lock().len()
    }

    /// Queues a job. Jobs submitted after shutdown are silently dropped
    /// (prefetches are hints; correctness never depends on them).
    pub fn submit(&self, job: Job) {
        if let Some(tx) = &*self.tx.lock() {
            let _ = tx.send(job);
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        // Closing the channel wakes every worker out of `recv`.
        self.tx.lock().take();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Cumulative [`Prefetcher`] counters (a cheap copyable snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Read jobs handed to the I/O pool.
    pub issued: u64,
    /// Staged pages later consumed by a pool miss ([`Prefetcher::take`]).
    pub used: u64,
    /// Requests skipped: already staged, already resident, or the staging
    /// area was full.
    pub skipped: u64,
    /// Completed reads discarded because the entry had been taken or
    /// invalidated while the read was in flight.
    pub wasted: u64,
    /// Async reads that failed (the demand path will retry and surface
    /// the error if it is real).
    pub errors: u64,
}

impl PrefetchStats {
    /// Element-wise sum — aggregates counters across several page files
    /// (e.g. a B+-tree pool and its sibling blob pool).
    pub fn merged(self, other: PrefetchStats) -> PrefetchStats {
        PrefetchStats {
            issued: self.issued + other.issued,
            used: self.used + other.used,
            skipped: self.skipped + other.skipped,
            wasted: self.wasted + other.wasted,
            errors: self.errors + other.errors,
        }
    }
}

enum Staged {
    /// A worker is reading this page.
    Pending,
    /// The page image is ready to be taken.
    Ready(Page),
}

/// Bounded staging area between the I/O pool and a buffer pool.
///
/// `request` is fire-and-forget; `take` moves a ready image out. Entries
/// are keyed by [`PageId`] within one storage file — each buffer pool
/// owns its own `Prefetcher` (they share the `IoPool`).
pub struct Prefetcher {
    io: Arc<IoPool>,
    backend: Arc<dyn ReadBackend>,
    staged: Arc<Mutex<HashMap<PageId, Staged>>>,
    capacity: usize,
    // Shared with worker jobs, which may outlive a particular borrow.
    counters: Arc<Counters>,
}

#[derive(Default)]
struct Counters {
    issued: AtomicU64,
    used: AtomicU64,
    skipped: AtomicU64,
    wasted: AtomicU64,
    errors: AtomicU64,
}

impl Prefetcher {
    /// Creates a staging area of at most `capacity` pages over `io`.
    pub fn new(io: Arc<IoPool>, backend: Arc<dyn ReadBackend>, capacity: usize) -> Self {
        Prefetcher {
            io,
            backend,
            staged: Arc::new(Mutex::new(HashMap::new())),
            capacity: capacity.max(1),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The worker pool this prefetcher submits reads to.
    pub fn io(&self) -> &Arc<IoPool> {
        &self.io
    }

    /// Staging capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.counters.issued.load(Ordering::Relaxed),
            used: self.counters.used.load(Ordering::Relaxed),
            skipped: self.counters.skipped.load(Ordering::Relaxed),
            wasted: self.counters.wasted.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
        }
    }

    /// Queues async reads for `ids`. Duplicates, already-staged pages and
    /// overflow beyond the staging capacity are skipped — prefetching is
    /// best-effort and never required for correctness.
    pub fn request(&self, ids: &[PageId]) {
        for &id in ids {
            {
                let mut staged = self.staged.lock();
                if staged.contains_key(&id) || staged.len() >= self.capacity {
                    self.counters.skipped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                staged.insert(id, Staged::Pending);
            }
            self.counters.issued.fetch_add(1, Ordering::Relaxed);
            let backend = Arc::clone(&self.backend);
            let staged = Arc::clone(&self.staged);
            let counters = Arc::clone(&self.counters);
            self.io.submit(Box::new(move || {
                let res = backend.read_page(id);
                let mut staged = staged.lock();
                match staged.get(&id) {
                    // Still wanted: publish the image (or withdraw the
                    // entry on error so the demand path retries).
                    Some(Staged::Pending) => match res {
                        Ok(page) => {
                            staged.insert(id, Staged::Ready(page));
                        }
                        Err(_) => {
                            staged.remove(&id);
                            counters.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    // Taken or invalidated while we read: discard.
                    _ => {
                        counters.wasted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
    }

    /// Removes and returns the staged image of `id` if its read has
    /// completed. A `Pending` entry is left alone — the caller reads
    /// synchronously and the worker's late result is discarded.
    pub fn take(&self, id: PageId) -> Option<Page> {
        let mut staged = self.staged.lock();
        match staged.get(&id) {
            Some(Staged::Ready(_)) => {
                let Some(Staged::Ready(page)) = staged.remove(&id) else {
                    unreachable!("checked Ready under the same lock");
                };
                self.counters.used.fetch_add(1, Ordering::Relaxed);
                Some(page)
            }
            _ => None,
        }
    }

    /// Drops any staged or in-flight entry for `id`. Called by the pool
    /// whenever it dirties or rewrites a page, so a stale disk image can
    /// never be served after the page has newer content.
    pub fn invalidate(&self, id: PageId) {
        self.staged.lock().remove(&id);
    }

    /// Drops *every* staged and in-flight entry. Called on a generation
    /// flip: the per-page `invalidate` hook only fires when *this* pool
    /// dirties a page, but a fold (or any external rewrite of the
    /// underlying file) changes page contents without going through the
    /// pool's write path, so whatever the staging area holds may describe
    /// the previous generation. Workers whose reads are still in flight
    /// find their `Pending` entry gone and discard the result, exactly as
    /// with per-page invalidation.
    pub fn invalidate_all(&self) {
        self.staged.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    struct CountingBackend {
        disk: Arc<DiskManager>,
        reads: AtomicUsize,
        delay: Duration,
    }

    impl ReadBackend for CountingBackend {
        fn read_page(&self, id: PageId) -> Result<Page> {
            self.reads.fetch_add(1, Ordering::SeqCst);
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.disk.read_page(id)
        }
    }

    fn setup(pages: u64) -> (tempfile::TempDir, Arc<DiskManager>) {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        for i in 0..pages {
            let id = dm.allocate();
            let mut page = Page::zeroed();
            page.payload_mut()[0] = i as u8;
            dm.write_page(id, &mut page).unwrap();
        }
        (d, dm)
    }

    #[test]
    fn prefetch_then_take() {
        let (_d, dm) = setup(8);
        let io = IoPool::new(2);
        let pf = Prefetcher::new(io, Arc::new(DiskReadBackend::new(dm)), 16);
        let ids: Vec<PageId> = (0..8).map(PageId).collect();
        pf.request(&ids);
        // poll until all reads land
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = 0;
        while got < 8 && std::time::Instant::now() < deadline {
            got += ids.iter().filter(|&&id| pf.take(id).is_some()).count();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(got, 8, "all prefetched pages become takeable");
        let s = pf.stats();
        assert_eq!(s.issued, 8);
        assert_eq!(s.used, 8);
    }

    #[test]
    fn capacity_bounds_staging() {
        let (_d, dm) = setup(8);
        let io = IoPool::new(1);
        let pf = Prefetcher::new(io, Arc::new(DiskReadBackend::new(dm)), 2);
        pf.request(&(0..8).map(PageId).collect::<Vec<_>>());
        let s = pf.stats();
        assert!(s.issued <= 2 + s.used, "staging capacity respected");
        assert!(s.skipped >= 6);
    }

    #[test]
    fn invalidate_discards_inflight() {
        let (_d, dm) = setup(2);
        let io = IoPool::new(1);
        let backend = Arc::new(CountingBackend {
            disk: dm,
            reads: AtomicUsize::new(0),
            delay: Duration::from_millis(50),
        });
        let pf = Prefetcher::new(io, backend, 4);
        pf.request(&[PageId(0)]);
        pf.invalidate(PageId(0)); // while the slow read is in flight
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            pf.take(PageId(0)).is_none(),
            "invalidated entry never served"
        );
    }

    /// A generation flip rewrites page files outside the pool's write
    /// path. `invalidate_all` must drop staged disk images so a reader of
    /// the new generation can never be served bytes of the old one.
    #[test]
    fn invalidate_all_discards_stale_generation_images() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let dm = Arc::new(DiskManager::create(&path).unwrap());
        let id = dm.allocate();
        let mut page = Page::zeroed();
        page.payload_mut()[0] = 0x01; // old-generation content
        dm.write_page(id, &mut page).unwrap();
        dm.sync().unwrap();

        let io = IoPool::new(1);
        let backend = Arc::new(CountingBackend {
            disk: Arc::clone(&dm),
            reads: AtomicUsize::new(0),
            delay: Duration::ZERO,
        });
        let pf = Prefetcher::new(io, Arc::clone(&backend) as Arc<dyn ReadBackend>, 4);

        // Control: a staged image is takeable and carries the old bytes —
        // this is exactly the staleness danger if it survived a fold.
        pf.request(&[id]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let staged = loop {
            if let Some(p) = pf.take(id) {
                break p;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "prefetch never landed"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(staged.payload()[0], 0x01);

        // Stage the old image again and give the worker time to publish.
        pf.request(&[id]);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while backend.reads.load(Ordering::SeqCst) < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "second read never ran"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(50));

        // "Fold commits": rewrite the page through an independent handle —
        // this pool never sees a dirty-page write, so only the
        // generation-flip hook can invalidate the staged image.
        let dm2 = DiskManager::open(&path).unwrap();
        let mut newer = Page::zeroed();
        newer.payload_mut()[0] = 0x02; // new-generation content
        dm2.write_page(id, &mut newer).unwrap();
        dm2.sync().unwrap();

        pf.invalidate_all();
        assert!(
            pf.take(id).is_none(),
            "stale staged image survived invalidate_all"
        );
        // The demand path now reads the new generation's bytes.
        assert_eq!(dm.read_page(id).unwrap().payload()[0], 0x02);
    }

    #[test]
    fn shutdown_joins_workers() {
        let (_d, dm) = setup(4);
        let io = IoPool::new(3);
        let pf = Prefetcher::new(Arc::clone(&io), Arc::new(DiskReadBackend::new(dm)), 8);
        pf.request(&[PageId(0), PageId(1)]);
        drop(pf);
        drop(io); // must not hang
    }
}
