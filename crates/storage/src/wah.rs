//! Word-aligned hybrid (WAH) bitmap compression.
//!
//! The NH-Index's second level is a bitmap index (§IV-C); production
//! bitmap indexes compress their bit columns with run-length schemes, of
//! which WAH (Wu, Otoo & Shoshani) is the classic word-aligned variant.
//! This is the 64-bit flavor: logical bits are grouped into 63-bit
//! chunks; each output word is either
//!
//! * a **literal** (MSB = 0): the next 63 bits verbatim, or
//! * a **fill** (MSB = 1): bit 62 is the fill bit, bits 0..62 count how
//!   many consecutive 63-bit groups are all-zero / all-one.
//!
//! Sparse neighbor-array columns (most labels appear in few
//! neighborhoods) compress to a handful of words. The posting layer uses
//! WAH per column when it wins over the raw layout.

/// Payload bits per WAH word.
pub const GROUP: usize = 63;
const FILL_FLAG: u64 = 1 << 63;
const FILL_BIT: u64 = 1 << 62;
const COUNT_MASK: u64 = (1 << 62) - 1;
const LITERAL_MASK: u64 = !FILL_FLAG;

/// Reads logical bit `i` from a plain bit vector stored as u64 words.
#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// Compresses `nbits` logical bits (LSB-first in `words`) into WAH form.
///
/// ```
/// use tale_storage::wah::{compress, decompress};
/// let sparse = vec![0u64; 100]; // 6400 zero bits
/// let wah = compress(&sparse, 6400);
/// assert_eq!(wah.len(), 1); // a single zero-fill word
/// assert_eq!(decompress(&wah, 6400), sparse);
/// ```
pub fn compress(words: &[u64], nbits: usize) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    let groups = nbits.div_ceil(GROUP);
    for g in 0..groups {
        // gather the next 63 bits into a literal payload
        let mut lit = 0u64;
        let base = g * GROUP;
        let end = (base + GROUP).min(nbits);
        for (j, i) in (base..end).enumerate() {
            if get_bit(words, i) {
                lit |= 1 << j;
            }
        }
        let is_zero = lit == 0;
        // a trailing partial group is all-one only w.r.t. its real bits
        let full = end - base == GROUP;
        let is_one = full && lit == LITERAL_MASK;
        if is_zero || is_one {
            let fill_bit = if is_one { FILL_BIT } else { 0 };
            // extend the previous fill of the same polarity
            if let Some(last) = out.last_mut() {
                if *last & FILL_FLAG != 0
                    && (*last & FILL_BIT) == fill_bit
                    && (*last & COUNT_MASK) < COUNT_MASK
                {
                    *last += 1;
                    continue;
                }
            }
            out.push(FILL_FLAG | fill_bit | 1);
        } else {
            out.push(lit);
        }
    }
    out
}

/// Decompresses WAH words back into a plain bit vector of `nbits` bits.
pub fn decompress(wah: &[u64], nbits: usize) -> Vec<u64> {
    let mut out = vec![0u64; nbits.div_ceil(64)];
    let mut pos = 0usize; // logical bit cursor
    for &w in wah {
        if w & FILL_FLAG != 0 {
            let count = (w & COUNT_MASK) as usize;
            let ones = w & FILL_BIT != 0;
            if ones {
                for i in pos..(pos + count * GROUP).min(nbits) {
                    out[i / 64] |= 1 << (i % 64);
                }
            }
            pos += count * GROUP;
        } else {
            let lit = w & LITERAL_MASK;
            for j in 0..GROUP {
                if lit >> j & 1 == 1 {
                    let i = pos + j;
                    if i < nbits {
                        out[i / 64] |= 1 << (i % 64);
                    }
                }
            }
            pos += GROUP;
        }
    }
    out
}

/// Size in words of the WAH form without materializing it.
pub fn compressed_len(words: &[u64], nbits: usize) -> usize {
    compress(words, nbits).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn roundtrip(bits: &[u64], nbits: usize) {
        let wah = compress(bits, nbits);
        let back = decompress(&wah, nbits);
        // compare only the meaningful bits
        for i in 0..nbits {
            assert_eq!(
                get_bit(bits, i),
                get_bit(&back, i),
                "bit {i} of {nbits} differs"
            );
        }
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[], 0);
        roundtrip(&[0b1], 1);
        roundtrip(&[0b101], 3);
    }

    #[test]
    fn all_zero_compresses_to_one_fill() {
        let bits = vec![0u64; 64]; // 4096 bits
        let wah = compress(&bits, 4096);
        assert_eq!(wah.len(), 1, "{wah:?}");
        assert!(wah[0] & FILL_FLAG != 0);
        roundtrip(&bits, 4096);
    }

    #[test]
    fn all_one_compresses_to_fill_plus_tail() {
        let bits = vec![u64::MAX; 64];
        let nbits = 4096;
        let wah = compress(&bits, nbits);
        // 4096 = 65 full groups of 63 + 1 trailing bit → 1 one-fill + 1 literal
        assert!(wah.len() <= 2, "{}", wah.len());
        roundtrip(&bits, nbits);
    }

    #[test]
    fn sparse_bitmap_small() {
        let mut bits = vec![0u64; 1024]; // 65536 bits
        for i in [5usize, 9000, 30000, 65000] {
            bits[i / 64] |= 1 << (i % 64);
        }
        let wah = compress(&bits, 65536);
        assert!(wah.len() <= 9, "sparse should compress well: {}", wah.len());
        roundtrip(&bits, 65536);
    }

    #[test]
    fn random_roundtrips() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..40 {
            let nbits: usize = rng.gen_range(1..3000);
            let words = nbits.div_ceil(64);
            let density = rng.gen_range(0.0..1.0f64);
            let mut bits = vec![0u64; words];
            for i in 0..nbits {
                if rng.gen_bool(density) {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
            roundtrip(&bits, nbits);
        }
    }

    #[test]
    fn partial_trailing_group_never_one_fill() {
        // 70 bits, all set: one full group (one-fill) + 7-bit literal tail
        let bits = vec![u64::MAX, u64::MAX];
        let wah = compress(&bits, 70);
        roundtrip(&bits, 70);
        // tail must be a literal so decompression can't overrun
        assert!(wah.last().unwrap() & FILL_FLAG == 0);
    }

    #[test]
    fn dense_random_does_not_explode() {
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let nbits: usize = 63 * 100;
        let mut bits = vec![0u64; nbits.div_ceil(64)];
        for i in 0..nbits {
            if rng.gen_bool(0.5) {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        let wah = compress(&bits, nbits);
        assert!(wah.len() <= 100, "incompressible data ≤ 1 word per group");
    }
}
