//! Append-only blob store for the NH-Index second level.
//!
//! Each distinct B+-tree key points at one *posting blob* holding the
//! node-id list and the neighbor-array bitmap (§IV-C: "a relation with two
//! attributes: one that stores the list of database nodes, and the other
//! that stores a bitmap"). Blobs are variable length, written once during
//! index construction, and read in full at probe time.
//!
//! The store owns a dedicated page file (separate from the B+-tree file) so
//! the blob address space is contiguous: a [`BlobRef`] is simply a byte
//! offset + length over the concatenated page payloads. The only mutable
//! state is the append cursor, which the owner persists in its metadata and
//! passes back to [`BlobStore::open`].

use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Usable payload bytes per page.
const PAYLOAD: usize = PAGE_SIZE - crate::page::HEADER_LEN;

/// Reference to a stored blob: logical byte offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobRef {
    /// Byte offset into the blob address space.
    pub offset: u64,
    /// Blob length in bytes.
    pub len: u32,
}

impl BlobRef {
    /// Packs the reference into a `u64` B+-tree value: 40-bit offset,
    /// 24-bit length. Offsets address up to 1 TiB of postings; lengths up
    /// to 16 MiB per key (a posting for 16 M identical-signature nodes —
    /// far beyond the paper's scales).
    pub fn pack(self) -> u64 {
        debug_assert!(self.offset < (1 << 40), "blob offset exceeds 40 bits");
        debug_assert!(self.len < (1 << 24), "blob len exceeds 24 bits");
        (self.offset << 24) | self.len as u64
    }

    /// Reverses [`BlobRef::pack`].
    pub fn unpack(v: u64) -> Self {
        BlobRef {
            offset: v >> 24,
            len: (v & 0xFF_FFFF) as u32,
        }
    }
}

/// The blob store. Appends are serialized by the cursor mutex; reads are
/// concurrent through the buffer pool.
pub struct BlobStore {
    pool: Arc<BufferPool>,
    cursor: Mutex<u64>,
}

impl BlobStore {
    /// Creates an empty store over a fresh page file.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        BlobStore {
            pool,
            cursor: Mutex::new(0),
        }
    }

    /// Reopens a store; `cursor` must be the value returned by
    /// [`BlobStore::cursor`] when the file was last written.
    pub fn open(pool: Arc<BufferPool>, cursor: u64) -> Self {
        BlobStore {
            pool,
            cursor: Mutex::new(cursor),
        }
    }

    /// Current append cursor (persist to reopen).
    pub fn cursor(&self) -> u64 {
        *self.cursor.lock()
    }

    /// Hit/miss counters of the underlying buffer pool.
    pub fn pool_stats(&self) -> crate::buffer::PoolStats {
        self.pool.pool_stats()
    }

    /// The disk manager under the store's buffer pool (the owner attaches
    /// the WAL and takes transaction baselines through this).
    pub fn disk(&self) -> &Arc<crate::disk::DiskManager> {
        self.pool.disk()
    }

    /// The buffer pool itself (the owner attaches prefetchers and reads
    /// readahead counters through this).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Total bytes stored.
    pub fn size_bytes(&self) -> u64 {
        self.cursor()
    }

    /// Appends `data`, returning its reference.
    pub fn put(&self, data: &[u8]) -> Result<BlobRef> {
        let mut cursor = self.cursor.lock();
        let offset = *cursor;
        let mut remaining = data;
        let mut pos = offset;
        while !remaining.is_empty() {
            let page_idx = pos / PAYLOAD as u64;
            let in_page = (pos % PAYLOAD as u64) as usize;
            // Allocate pages lazily as the cursor crosses boundaries.
            while self.pool.disk().page_count() <= page_idx {
                let (_, guard) = self.pool.new_page()?;
                drop(guard);
            }
            let take = remaining.len().min(PAYLOAD - in_page);
            let mut guard = self.pool.fetch_mut(PageId(page_idx))?;
            guard.page_mut().payload_mut()[in_page..in_page + take]
                .copy_from_slice(&remaining[..take]);
            drop(guard);
            remaining = &remaining[take..];
            pos += take as u64;
        }
        *cursor = pos;
        Ok(BlobRef {
            offset,
            len: data.len() as u32,
        })
    }

    /// The pages a blob's bytes live on — computable from the reference
    /// alone, which is what lets probe batches queue posting readahead
    /// before touching any page.
    pub fn pages_of(r: BlobRef) -> impl Iterator<Item = PageId> {
        let first = r.offset / PAYLOAD as u64;
        let last = if r.len == 0 {
            first
        } else {
            (r.offset + r.len as u64 - 1) / PAYLOAD as u64
        };
        (first..=last).map(PageId)
    }

    /// Queues async readahead for every page the given blobs touch (a
    /// no-op without an attached prefetcher; duplicates are deduplicated
    /// here so overlapping refs don't spam the staging area).
    pub fn prefetch(&self, refs: &[BlobRef]) {
        let mut pages: Vec<PageId> = refs.iter().flat_map(|&r| Self::pages_of(r)).collect();
        pages.sort_unstable();
        pages.dedup();
        self.pool.prefetch(&pages);
    }

    /// Reads a blob back in full.
    pub fn get(&self, r: BlobRef) -> Result<Vec<u8>> {
        let end = r.offset + r.len as u64;
        if end > self.cursor() {
            return Err(StorageError::BadBlobRef);
        }
        let mut out = Vec::with_capacity(r.len as usize);
        let mut pos = r.offset;
        while pos < end {
            let page_idx = pos / PAYLOAD as u64;
            let in_page = (pos % PAYLOAD as u64) as usize;
            let take = ((end - pos) as usize).min(PAYLOAD - in_page);
            let guard = self.pool.fetch(PageId(page_idx))?;
            out.extend_from_slice(&guard.page().payload()[in_page..in_page + take]);
            pos += take as u64;
        }
        Ok(out)
    }

    /// Flushes dirty pages to disk.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }

    /// Flushes and fsyncs the backing file.
    pub fn sync(&self) -> Result<()> {
        self.pool.flush_all()?;
        self.pool.disk().sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn store(frames: usize) -> (tempfile::TempDir, BlobStore) {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("blobs.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, frames));
        (d, BlobStore::create(pool))
    }

    #[test]
    fn small_blob_roundtrip() {
        let (_d, s) = store(4);
        let r = s.put(b"hello postings").unwrap();
        assert_eq!(s.get(r).unwrap(), b"hello postings");
    }

    #[test]
    fn empty_blob() {
        let (_d, s) = store(4);
        let r = s.put(b"").unwrap();
        assert_eq!(r.len, 0);
        assert_eq!(s.get(r).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn page_spanning_blob() {
        let (_d, s) = store(4);
        let big: Vec<u8> = (0..PAYLOAD * 3 + 1234).map(|i| (i % 251) as u8).collect();
        let r0 = s.put(b"prefix").unwrap();
        let r1 = s.put(&big).unwrap();
        let r2 = s.put(b"suffix").unwrap();
        assert_eq!(s.get(r1).unwrap(), big);
        assert_eq!(s.get(r0).unwrap(), b"prefix");
        assert_eq!(s.get(r2).unwrap(), b"suffix");
    }

    #[test]
    fn many_blobs_tiny_pool() {
        let (_d, s) = store(2);
        let refs: Vec<(BlobRef, Vec<u8>)> = (0..200usize)
            .map(|i| {
                let data: Vec<u8> = (0..(i * 37) % 500 + 1)
                    .map(|j| ((i + j) % 251) as u8)
                    .collect();
                (s.put(&data).unwrap(), data)
            })
            .collect();
        for (r, data) in &refs {
            assert_eq!(&s.get(*r).unwrap(), data);
        }
    }

    #[test]
    fn bad_ref_rejected() {
        let (_d, s) = store(4);
        s.put(b"x").unwrap();
        let bogus = BlobRef {
            offset: 100,
            len: 50,
        };
        assert!(matches!(s.get(bogus), Err(StorageError::BadBlobRef)));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for r in [
            BlobRef { offset: 0, len: 0 },
            BlobRef { offset: 1, len: 1 },
            BlobRef {
                offset: (1 << 40) - 1,
                len: (1 << 24) - 1,
            },
            BlobRef {
                offset: 123_456_789,
                len: 54_321,
            },
        ] {
            assert_eq!(BlobRef::unpack(r.pack()), r);
        }
    }

    #[test]
    fn reopen_with_cursor() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("blobs.db");
        let (r, cursor);
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = Arc::new(BufferPool::new(dm, 4));
            let s = BlobStore::create(pool);
            r = s.put(b"persisted").unwrap();
            cursor = s.cursor();
            s.flush().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 4));
        let s = BlobStore::open(pool, cursor);
        assert_eq!(s.get(r).unwrap(), b"persisted");
        // appends continue after the persisted data
        let r2 = s.put(b"more").unwrap();
        assert_eq!(s.get(r2).unwrap(), b"more");
        assert_eq!(s.get(r).unwrap(), b"persisted");
    }
}
