//! Atomic whole-file persistence.
//!
//! Every manifest-style file in the system (`nh.meta.json`, `shards.json`,
//! `graphs.json`, BENCH reports) is replaced with the classic
//! write-temp + fsync + rename + fsync-parent sequence, so readers only
//! ever observe the complete old or complete new contents — a rename is
//! the commit point. Truncate-in-place (`std::fs::write`) would leave a
//! half-written file after a crash.

use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// The data is written to a `.tmp` sibling, fsynced, renamed over `path`,
/// and the parent directory is fsynced (on Unix) so the rename itself is
/// durable. A crash at any point leaves either the old file or the new
/// one, never a mix; at worst a stale `.tmp` sibling survives and is
/// overwritten by the next call.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_owned(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("not a file path: {}", path.display())))?;
    let tmp = parent.join(format!("{}.tmp", name.to_string_lossy()));
    crate::fault_check("atomic.write")?;
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    crate::fault_check("atomic.rename")?;
    std::fs::rename(&tmp, path)?;
    sync_dir(&parent)
}

/// Fsyncs a directory so a rename/unlink inside it is durable. No-op on
/// platforms where directories cannot be opened for sync.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_contents_and_leaves_no_tmp() {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("m.json");
        write_atomic(&p, b"one").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"one");
        write_atomic(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        assert!(!d.path().join("m.json.tmp").exists());
    }
}
