//! Buffer pool: a bounded set of in-memory page frames over a
//! [`DiskManager`], with pin counts and LRU eviction.
//!
//! This is what makes the NH-Index genuinely disk-based (§IV-C, §VI-B.2):
//! index structures larger than the pool stream through a fixed memory
//! budget instead of requiring residency, which is the property the paper
//! contrasts with the memory-only C-Tree. The paper's experiments give
//! PostgreSQL a 512 MB buffer pool; [`BufferPool::new`] takes the frame
//! count so benchmarks can sweep it.
//!
//! Locking protocol: the pool's internal mutex is always acquired before a
//! frame's RwLock; guard drops touch atomics plus the (separate) pin-ledger
//! mutex. Pinned frames are never evicted. When every frame is pinned the
//! outcome depends on *who* holds the pins, tracked in a per-thread pin
//! ledger:
//!
//! * all pins belong to the calling thread → [`StorageError::PoolExhausted`]
//!   immediately (waiting would deadlock on our own guards);
//! * some pins belong to other threads → the caller parks on a condition
//!   variable until a guard drops, so concurrent readers sharing a small
//!   pool see latency, not error storms. A generous deadline keeps a
//!   genuinely wedged pool from hanging forever.
//!
//! Eviction is contention-aware: among unpinned frames, clean frames are
//! preferred (LRU within each class) so read-heavy probe traffic does not
//! pay write-back latency while dirty build pages age out.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::{Result, StorageError};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Condvar, Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// How long a fetch will wait for *other* threads to unpin before giving
/// up. Purely a wedge-breaker; normal guard lifetimes are microseconds.
const PIN_WAIT_DEADLINE: Duration = Duration::from_secs(2);
/// One parking interval; bounds the cost of a missed notification.
const PIN_WAIT_SLICE: Duration = Duration::from_millis(10);

/// Cumulative page-access counters of a pool: frames served from memory
/// (`hits`) vs. read from disk (`misses`). Snapshots are cheap; consumers
/// diff two snapshots to attribute I/O to a span of work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page fetches served from a resident frame.
    pub hits: u64,
    /// Page fetches that had to read from disk.
    pub misses: u64,
}

impl PoolStats {
    /// Fetches counted in this snapshot.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]`; zero accesses count as rate 0.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Component-wise sum (e.g. B+-tree pool + blob pool).
    pub fn merged(self, other: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same pool(s).
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

struct FrameCell {
    page: Arc<RwLock<Page>>,
    pins: AtomicU32,
}

/// Per-thread outstanding-pin counts plus the "a pin was released"
/// condition variable. Lives in an `Arc` so page guards can update it on
/// drop without holding the pool borrow.
struct PinLedger {
    counts: Mutex<HashMap<ThreadId, u32>>,
    freed: Condvar,
}

impl PinLedger {
    fn new() -> Self {
        PinLedger {
            counts: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// Records one more pin held by the current thread.
    fn acquire(&self) -> ThreadId {
        let me = std::thread::current().id();
        *self.counts.lock().entry(me).or_insert(0) += 1;
        me
    }

    /// Releases one pin held by `owner` and wakes any waiters.
    fn release(&self, owner: ThreadId) {
        let mut counts = self.counts.lock();
        if let Some(n) = counts.get_mut(&owner) {
            *n -= 1;
            if *n == 0 {
                counts.remove(&owner);
            }
        }
        drop(counts);
        self.freed.notify_all();
    }

    /// `(pins held by the current thread, pins held in total)`.
    fn split_counts(&self) -> (u32, u32) {
        let counts = self.counts.lock();
        let me = std::thread::current().id();
        let mine = counts.get(&me).copied().unwrap_or(0);
        let total = counts.values().sum();
        (mine, total)
    }

    /// Parks until some guard drops (or the slice elapses).
    fn wait_for_release(&self) {
        let mut counts = self.counts.lock();
        if counts.values().sum::<u32>() == 0 {
            return; // released between the caller's check and our lock
        }
        let _ = self.freed.wait_for(&mut counts, PIN_WAIT_SLICE);
    }
}

struct FrameMeta {
    page_id: Option<PageId>,
    dirty: bool,
    last_used: u64,
}

struct PoolInner {
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Shared read access to a pinned page. Unpins on drop.
pub struct PageGuard {
    cell: Arc<FrameCell>,
    guard: Option<ArcRwLockReadGuard<RawRwLock, Page>>,
    ledger: Arc<PinLedger>,
    owner: ThreadId,
}

impl PageGuard {
    /// The page contents.
    #[inline]
    pub fn page(&self) -> &Page {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.guard.take();
        self.cell.pins.fetch_sub(1, Ordering::Release);
        self.ledger.release(self.owner);
    }
}

/// Exclusive write access to a pinned page. Unpins on drop; the frame is
/// marked dirty at fetch time so eviction writes it back.
pub struct PageGuardMut {
    cell: Arc<FrameCell>,
    guard: Option<ArcRwLockWriteGuard<RawRwLock, Page>>,
    ledger: Arc<PinLedger>,
    owner: ThreadId,
}

impl PageGuardMut {
    /// The page contents.
    #[inline]
    pub fn page(&self) -> &Page {
        self.guard.as_ref().expect("guard present until drop")
    }

    /// Mutable page contents.
    #[inline]
    pub fn page_mut(&mut self) -> &mut Page {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl Drop for PageGuardMut {
    fn drop(&mut self) {
        self.guard.take();
        self.cell.pins.fetch_sub(1, Ordering::Release);
        self.ledger.release(self.owner);
    }
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    frames: Vec<Arc<FrameCell>>,
    inner: Mutex<PoolInner>,
    ledger: Arc<PinLedger>,
}

impl BufferPool {
    /// Creates a pool with `frame_count` page frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, frame_count: usize) -> Self {
        let frame_count = frame_count.max(1);
        let frames = (0..frame_count)
            .map(|_| {
                Arc::new(FrameCell {
                    page: Arc::new(RwLock::new(Page::zeroed())),
                    pins: AtomicU32::new(0),
                })
            })
            .collect();
        let meta = (0..frame_count)
            .map(|_| FrameMeta {
                page_id: None,
                dirty: false,
                last_used: 0,
            })
            .collect();
        BufferPool {
            disk,
            frames,
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                meta,
                tick: 0,
                hits: 0,
                misses: 0,
            }),
            ledger: Arc::new(PinLedger::new()),
        }
    }

    /// The disk manager underneath.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// [`BufferPool::stats`] as a [`PoolStats`] snapshot.
    pub fn pool_stats(&self) -> PoolStats {
        let (hits, misses) = self.stats();
        PoolStats { hits, misses }
    }

    /// Fetches a page for reading.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard> {
        let (cell, owner) = self.pin_frame(id, false)?;
        let guard = RwLock::read_arc(&cell.page);
        Ok(PageGuard {
            cell,
            guard: Some(guard),
            ledger: Arc::clone(&self.ledger),
            owner,
        })
    }

    /// Fetches a page for writing; the frame is marked dirty.
    pub fn fetch_mut(&self, id: PageId) -> Result<PageGuardMut> {
        let (cell, owner) = self.pin_frame(id, true)?;
        let guard = RwLock::write_arc(&cell.page);
        Ok(PageGuardMut {
            cell,
            guard: Some(guard),
            ledger: Arc::clone(&self.ledger),
            owner,
        })
    }

    /// Allocates a fresh zeroed page and returns it pinned for writing.
    pub fn new_page(&self) -> Result<(PageId, PageGuardMut)> {
        let id = self.disk.allocate();
        let deadline = Instant::now() + PIN_WAIT_DEADLINE;
        let mut inner = self.inner.lock();
        let frame = loop {
            match self.find_victim(&mut inner) {
                Ok(f) => break f,
                Err(e) => inner = self.wait_for_unpin(inner, deadline, e)?,
            }
        };
        self.install(&mut inner, frame, id, true, /* load */ false)?;
        // Pin (and enter the ledger) while still holding the pool lock so
        // no concurrent fetch can evict the freshly installed frame.
        self.frames[frame].pins.fetch_add(1, Ordering::Acquire);
        let owner = self.ledger.acquire();
        drop(inner);
        let cell = Arc::clone(&self.frames[frame]);
        let mut guard = RwLock::write_arc(&cell.page);
        *guard = Page::zeroed();
        Ok((
            id,
            PageGuardMut {
                cell,
                guard: Some(guard),
                ledger: Arc::clone(&self.ledger),
                owner,
            },
        ))
    }

    /// Writes all dirty frames back to disk.
    ///
    /// When a WAL is attached, the before-images of every dirty page are
    /// logged first in one pass, so the write-ahead barrier inside the
    /// first `write_page` syncs them all with a single fsync (group
    /// fsync) instead of one per page.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for i in 0..self.frames.len() {
            if inner.meta[i].dirty {
                let id = inner.meta[i].page_id.expect("dirty frame has a page");
                self.disk.prelog_for_wal(id)?;
            }
        }
        for i in 0..self.frames.len() {
            if inner.meta[i].dirty {
                let id = inner.meta[i].page_id.expect("dirty frame has a page");
                let mut page = self.frames[i].page.write();
                self.disk.write_page(id, &mut page)?;
                inner.meta[i].dirty = false;
            }
        }
        Ok(())
    }

    fn pin_frame(&self, id: PageId, dirty: bool) -> Result<(Arc<FrameCell>, ThreadId)> {
        let deadline = Instant::now() + PIN_WAIT_DEADLINE;
        let mut inner = self.inner.lock();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            // Re-checked on every retry: while we waited, another thread
            // may have loaded this very page.
            if let Some(&f) = inner.map.get(&id) {
                inner.hits += 1;
                inner.meta[f].last_used = tick;
                inner.meta[f].dirty |= dirty;
                self.frames[f].pins.fetch_add(1, Ordering::Acquire);
                let owner = self.ledger.acquire();
                return Ok((Arc::clone(&self.frames[f]), owner));
            }
            let frame = match self.find_victim(&mut inner) {
                Ok(f) => f,
                Err(e) => {
                    inner = self.wait_for_unpin(inner, deadline, e)?;
                    continue;
                }
            };
            inner.misses += 1;
            self.install(&mut inner, frame, id, dirty, /* load */ true)?;
            self.frames[frame].pins.fetch_add(1, Ordering::Acquire);
            let owner = self.ledger.acquire();
            return Ok((Arc::clone(&self.frames[frame]), owner));
        }
    }

    /// Handles an all-frames-pinned victim search. If every outstanding pin
    /// belongs to the calling thread (or the deadline has passed), the
    /// error propagates — waiting on our own guards would deadlock.
    /// Otherwise the pool lock is released and the caller parks until some
    /// guard drops, then retries with the lock re-acquired.
    fn wait_for_unpin<'a>(
        &'a self,
        inner: parking_lot::MutexGuard<'a, PoolInner>,
        deadline: Instant,
        err: StorageError,
    ) -> Result<parking_lot::MutexGuard<'a, PoolInner>> {
        let (mine, total) = self.ledger.split_counts();
        if (mine > 0 && mine == total) || Instant::now() >= deadline {
            return Err(err);
        }
        drop(inner);
        self.ledger.wait_for_release();
        Ok(self.inner.lock())
    }

    /// Picks an eviction victim among unpinned frames: clean frames first
    /// (no write-back on the fetch path), LRU within each class. Caller
    /// holds the inner lock.
    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize> {
        let mut victim = None;
        let mut best = (true, u64::MAX); // (dirty?, last_used) — clean sorts first
        for (i, m) in inner.meta.iter().enumerate() {
            let key = (m.dirty, m.last_used);
            if self.frames[i].pins.load(Ordering::Acquire) == 0 && key < best {
                best = key;
                victim = Some(i);
            }
        }
        let v = victim.ok_or(StorageError::PoolExhausted)?;
        if inner.meta[v].dirty {
            let old = inner.meta[v].page_id.expect("dirty frame has a page");
            let mut page = self.frames[v].page.write();
            self.disk.write_page(old, &mut page)?;
            inner.meta[v].dirty = false;
        }
        if let Some(old) = inner.meta[v].page_id.take() {
            inner.map.remove(&old);
        }
        Ok(v)
    }

    /// Binds `frame` to `id`, optionally loading the page from disk.
    /// Caller holds the inner lock and guarantees the frame is unpinned.
    fn install(
        &self,
        inner: &mut PoolInner,
        frame: usize,
        id: PageId,
        dirty: bool,
        load: bool,
    ) -> Result<()> {
        if load {
            let page = self.disk.read_page(id)?;
            *self.frames[frame].page.write() = page;
        }
        inner.meta[frame].page_id = Some(id);
        inner.meta[frame].dirty = dirty;
        inner.tick += 1;
        inner.meta[frame].last_used = inner.tick;
        inner.map.insert(id, frame);
        Ok(())
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort flush so read-only reopen sees complete data even if
        // the user forgot an explicit flush; errors are ignored here (the
        // explicit flush path reports them).
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> (tempfile::TempDir, BufferPool) {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        (d, BufferPool::new(dm, frames))
    }

    fn write_marker(pool: &BufferPool, marker: u8) -> PageId {
        let (id, mut g) = pool.new_page().unwrap();
        g.page_mut().payload_mut()[0] = marker;
        id
    }

    #[test]
    fn new_page_then_fetch() {
        let (_d, pool) = pool(4);
        let id = write_marker(&pool, 7);
        let g = pool.fetch(id).unwrap();
        assert_eq!(g.page().payload()[0], 7);
    }

    #[test]
    fn eviction_roundtrips_through_disk() {
        let (_d, pool) = pool(2);
        let ids: Vec<PageId> = (0..10).map(|i| write_marker(&pool, i as u8)).collect();
        // all but the last two were evicted; refetch everything
        for (i, id) in ids.iter().enumerate() {
            let g = pool.fetch(*id).unwrap();
            assert_eq!(g.page().payload()[0], i as u8, "page {i}");
        }
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let (_d, pool) = pool(2);
        let a = write_marker(&pool, 1);
        let b = write_marker(&pool, 2);
        let _ga = pool.fetch(a).unwrap();
        let _gb = pool.fetch(b).unwrap();
        let c = pool.disk().allocate();
        let _ = c;
        match pool.new_page() {
            Err(StorageError::PoolExhausted) => {}
            other => panic!("expected PoolExhausted, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn unpin_allows_reuse() {
        let (_d, pool) = pool(1);
        let a = write_marker(&pool, 1);
        {
            let _g = pool.fetch(a).unwrap();
        } // dropped => unpinned
        let b = write_marker(&pool, 2);
        let g = pool.fetch(b).unwrap();
        assert_eq!(g.page().payload()[0], 2);
        drop(g);
        let g = pool.fetch(a).unwrap();
        assert_eq!(g.page().payload()[0], 1);
    }

    #[test]
    fn flush_persists_for_reopen() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let id;
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(dm, 4);
            id = write_marker(&pool, 99);
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(dm, 4);
        let g = pool.fetch(id).unwrap();
        assert_eq!(g.page().payload()[0], 99);
    }

    #[test]
    fn hit_miss_stats() {
        let (_d, pool) = pool(4);
        let a = write_marker(&pool, 1);
        let (h0, _m0) = pool.stats();
        pool.fetch(a).unwrap();
        pool.fetch(a).unwrap();
        let (h1, _m1) = pool.stats();
        assert_eq!(h1 - h0, 2);
    }

    #[test]
    fn many_pages_tiny_pool_stress() {
        let (_d, pool) = pool(3);
        let ids: Vec<PageId> = (0..100)
            .map(|i| write_marker(&pool, (i % 251) as u8))
            .collect();
        for round in 0..3 {
            for (i, id) in ids.iter().enumerate() {
                let g = pool.fetch(*id).unwrap();
                assert_eq!(
                    g.page().payload()[0],
                    (i % 251) as u8,
                    "round {round} page {i}"
                );
            }
        }
        let (hits, misses) = pool.stats();
        assert!(misses > 0 && hits + misses >= 300);
    }

    #[test]
    fn fetch_storm_tiny_pool_no_exhaustion() {
        // 8 threads hammer a 2-frame pool, each holding one guard at a
        // time. All-frames-pinned moments are common, but the pins always
        // belong to other threads, so every fetch must wait and succeed —
        // never PoolExhausted.
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 2));
        let ids: Vec<PageId> = (0..16).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let i = (t * 5 + round * 11) % ids.len();
                    let g = pool
                        .fetch(ids[i])
                        .expect("waiters must outlast other threads' pins");
                    assert_eq!(g.page().payload()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn waiter_succeeds_when_other_thread_unpins() {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 1));
        let a = write_marker(&pool, 1);
        let b = write_marker(&pool, 2);
        pool.flush_all().unwrap();
        let ga = pool.fetch(a).unwrap(); // pin the only frame
        let child = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.fetch(b).map(|g| g.page().payload()[0]))
        };
        // Let the child reach the all-pinned path and park.
        std::thread::sleep(Duration::from_millis(50));
        drop(ga); // unpin: the parked fetch must wake and complete
        assert_eq!(child.join().unwrap().unwrap(), 2);
    }

    #[test]
    fn two_pools_interleaved_pins_from_shared_thread_set() {
        // The sharded-index access pattern: every shard owns its own
        // DiskManager + BufferPool, and one set of worker threads pins
        // pages from several pools at once — often holding a guard on
        // pool A while fetching from pool B, in either order. Pin
        // ledgers and waiter wakeups are strictly per-pool, so
        // cross-pool holds must not leak pins and each pool's stats must
        // only count its own traffic. Each pool gets one frame per
        // worker (the sizing invariant the sharded database's per-shard
        // `buffer_frames` budget upholds): a thread never holds more
        // than one pin per pool, so mixed A→B / B→A hold orders cannot
        // exhaust a pool and deadlock — with fewer frames than workers
        // that ABBA pattern genuinely can, in any pool design.
        const WORKERS: usize = 6;
        let d = tempfile::tempdir().unwrap();
        let dm_a = Arc::new(DiskManager::create(&d.path().join("a.db")).unwrap());
        let dm_b = Arc::new(DiskManager::create(&d.path().join("b.db")).unwrap());
        let pool_a = Arc::new(BufferPool::new(dm_a, WORKERS));
        let pool_b = Arc::new(BufferPool::new(dm_b, WORKERS));
        let ids_a: Vec<PageId> = (0..12).map(|i| write_marker(&pool_a, i as u8)).collect();
        let ids_b: Vec<PageId> = (0..12)
            .map(|i| write_marker(&pool_b, 100 + i as u8))
            .collect();
        pool_a.flush_all().unwrap();
        pool_b.flush_all().unwrap();
        let base_a = pool_a.pool_stats();
        let base_b = pool_b.pool_stats();

        let mut handles = Vec::new();
        for t in 0..WORKERS {
            let (pool_a, pool_b) = (Arc::clone(&pool_a), Arc::clone(&pool_b));
            let (ids_a, ids_b) = (ids_a.clone(), ids_b.clone());
            handles.push(std::thread::spawn(move || {
                for round in 0..150 {
                    let i = (t * 5 + round * 7) % ids_a.len();
                    let j = (t * 3 + round * 11) % ids_b.len();
                    // hold a pin in A across the whole B fetch (and vice
                    // versa on odd rounds) — the cross-pool hold pattern
                    if round % 2 == 0 {
                        let ga = pool_a.fetch(ids_a[i]).expect("pool A fetch");
                        let gb = pool_b.fetch(ids_b[j]).expect("pool B fetch under A pin");
                        assert_eq!(ga.page().payload()[0], i as u8);
                        assert_eq!(gb.page().payload()[0], 100 + j as u8);
                    } else {
                        let gb = pool_b.fetch(ids_b[j]).expect("pool B fetch");
                        let ga = pool_a.fetch(ids_a[i]).expect("pool A fetch under B pin");
                        assert_eq!(gb.page().payload()[0], 100 + j as u8);
                        assert_eq!(ga.page().payload()[0], i as u8);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // all pins released: both pools can still turn over every frame
        for (i, id) in ids_a.iter().enumerate() {
            assert_eq!(pool_a.fetch(*id).unwrap().page().payload()[0], i as u8);
        }
        for (j, id) in ids_b.iter().enumerate() {
            assert_eq!(
                pool_b.fetch(*id).unwrap().page().payload()[0],
                100 + j as u8
            );
        }
        // stats stayed per-pool: each saw exactly its own WORKERS*150
        // + 12 fetches
        let sa = pool_a.pool_stats().since(base_a);
        let sb = pool_b.pool_stats().since(base_b);
        assert_eq!(sa.accesses(), WORKERS as u64 * 150 + 12, "pool A accesses");
        assert_eq!(sb.accesses(), WORKERS as u64 * 150 + 12, "pool B accesses");
    }

    #[test]
    fn concurrent_readers() {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 8));
        let ids: Vec<PageId> = (0..32).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let i = (t * 7 + round * 3) % ids.len();
                    let g = pool.fetch(ids[i]).unwrap();
                    assert_eq!(g.page().payload()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
