//! Buffer pool: a bounded set of in-memory page frames over a
//! [`DiskManager`], with pin counts, LRU eviction, and a per-frame load
//! state machine that keeps every disk access outside the pool mutex.
//!
//! This is what makes the NH-Index genuinely disk-based (§IV-C, §VI-B.2):
//! index structures larger than the pool stream through a fixed memory
//! budget instead of requiring residency, which is the property the paper
//! contrasts with the memory-only C-Tree. The paper's experiments give
//! PostgreSQL a 512 MB buffer pool; [`BufferPool::new`] takes the frame
//! count so benchmarks can sweep it.
//!
//! # No I/O under the pool mutex
//!
//! Each frame is `Empty`, `Loading`, or `Resident` (`FrameState`). A
//! miss claims a victim under the mutex, binds it to the wanted page in
//! the `Loading` state, *releases the mutex*, performs the read, then
//! re-locks briefly to publish `Resident`. Concurrent fetches of the
//! in-flight page park on that frame's condition variable instead of
//! redoing the read; fetches of other pages proceed untouched — one slow
//! cold read never serializes the pool. Dirty-victim write-back and
//! [`BufferPool::flush_all`] follow the same discipline: claim under the
//! lock, write outside it. [`DiskManager`] enforces the invariant with a
//! debug assertion on every read/write.
//!
//! Loading frames always carry the loader's pin, so the victim search
//! (which only considers unpinned frames) can never evict a frame whose
//! read is in flight.
//!
//! # Locking protocol
//!
//! The pool's internal mutex is always acquired before a frame's RwLock;
//! guard drops touch atomics plus the (separate) pin-ledger mutex. Pinned
//! frames are never evicted. When every frame is pinned the outcome
//! depends on *who* holds the pins, tracked in a per-thread pin ledger:
//!
//! * all pins belong to the calling thread → [`StorageError::PoolExhausted`]
//!   immediately (waiting would deadlock on our own guards);
//! * some pins belong to other threads → the caller parks on a condition
//!   variable until a guard drops, so concurrent readers sharing a small
//!   pool see latency, not error storms. A generous deadline keeps a
//!   genuinely wedged pool from hanging forever.
//!
//! Eviction is contention-aware: among unpinned frames, clean frames are
//! preferred (LRU within each class) so read-heavy probe traffic does not
//! pay write-back latency while dirty build pages age out.
//!
//! # Prefetch
//!
//! [`BufferPool::attach_prefetcher`] wires in an async staging area (see
//! [`crate::readpath`]); [`BufferPool::prefetch`] then queues readahead
//! for non-resident pages, and a later miss takes the staged image
//! instead of reading synchronously. The pool invalidates staged entries
//! whenever it dirties or rewrites a page, so a stale disk image is never
//! served.

use crate::disk::DiskManager;
use crate::page::{Page, PageId};
use crate::readpath::{DiskReadBackend, IoPool, PrefetchStats, Prefetcher, ReadBackend};
use crate::{Result, StorageError};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Condvar, Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::{Duration, Instant};

/// How long a fetch will wait for *other* threads to unpin before giving
/// up. Purely a wedge-breaker; normal guard lifetimes are microseconds.
const PIN_WAIT_DEADLINE: Duration = Duration::from_secs(2);
/// One parking interval; bounds the cost of a missed notification.
const PIN_WAIT_SLICE: Duration = Duration::from_millis(10);
/// Re-check interval while parked on an in-flight page load. Loads may
/// legitimately be slow (cold storage, fault injection), so there is no
/// deadline — the slice only bounds the cost of a missed notification.
const LOAD_WAIT_SLICE: Duration = Duration::from_millis(50);

/// Debug-only tracking of whether the current thread holds a pool mutex,
/// consulted by [`DiskManager`]'s I/O entry points to assert the
/// no-I/O-under-lock invariant. Compiled out of release builds.
#[cfg(debug_assertions)]
pub(crate) mod lockcheck {
    use std::cell::Cell;
    thread_local! {
        static DEPTH: Cell<u32> = const { Cell::new(0) };
    }
    pub(crate) fn enter() {
        DEPTH.with(|d| d.set(d.get() + 1));
    }
    pub(crate) fn exit() {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
    /// True while the current thread holds any [`super::BufferPool`]
    /// inner mutex.
    pub(crate) fn held() -> bool {
        DEPTH.with(|d| d.get() > 0)
    }
}

/// Cumulative page-access counters of a pool. Every fetch is counted in
/// exactly one bucket, so [`PoolStats::accesses`] equals the number of
/// fetches and the buckets form a trustworthy taxonomy:
///
/// * `hits` — the page was resident when the fetch arrived;
/// * `coalesced` — the page was mid-load by another fetch; this one
///   parked on the frame and shared the single read;
/// * `misses` — this fetch performed the synchronous disk read itself;
/// * `prefetched` — the image came from the async readahead staging
///   area, so no synchronous read was needed.
///
/// `misses` is therefore the exact count of demand reads the pool issued
/// (matching the [`DiskManager`] read counter up to prefetch traffic),
/// fixing the old accounting where a fetch that lost an install race was
/// double-counted and a retried fetch counted a spurious hit. Snapshots
/// are cheap; consumers diff two snapshots to attribute I/O to a span of
/// work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Page fetches served from a resident frame.
    pub hits: u64,
    /// Page fetches that parked on another fetch's in-flight load.
    pub coalesced: u64,
    /// Page fetches that read from disk synchronously.
    pub misses: u64,
    /// Page fetches served from the prefetch staging area.
    pub prefetched: u64,
}

impl PoolStats {
    /// Fetches counted in this snapshot.
    pub fn accesses(&self) -> u64 {
        self.hits + self.coalesced + self.misses + self.prefetched
    }

    /// Fraction of fetches that found the page already in (or entering)
    /// the pool, in `[0, 1]`; zero accesses count as rate 0. `misses +
    /// prefetched` is the complementary count of pages brought in from
    /// disk.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / self.accesses() as f64
        }
    }

    /// Component-wise sum (e.g. B+-tree pool + blob pool).
    pub fn merged(self, other: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            coalesced: self.coalesced + other.coalesced,
            misses: self.misses + other.misses,
            prefetched: self.prefetched + other.prefetched,
        }
    }

    /// Counter deltas since an `earlier` snapshot of the same pool(s).
    pub fn since(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            coalesced: self.coalesced.saturating_sub(earlier.coalesced),
            misses: self.misses.saturating_sub(earlier.misses),
            prefetched: self.prefetched.saturating_sub(earlier.prefetched),
        }
    }
}

struct FrameCell {
    page: Arc<RwLock<Page>>,
    pins: AtomicU32,
}

/// Per-thread outstanding-pin counts plus the "a pin was released"
/// condition variable. Lives in an `Arc` so page guards can update it on
/// drop without holding the pool borrow.
struct PinLedger {
    counts: Mutex<HashMap<ThreadId, u32>>,
    freed: Condvar,
}

impl PinLedger {
    fn new() -> Self {
        PinLedger {
            counts: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
        }
    }

    /// Records one more pin held by the current thread.
    fn acquire(&self) -> ThreadId {
        let me = std::thread::current().id();
        *self.counts.lock().entry(me).or_insert(0) += 1;
        me
    }

    /// Releases one pin held by `owner` and wakes any waiters.
    fn release(&self, owner: ThreadId) {
        let mut counts = self.counts.lock();
        if let Some(n) = counts.get_mut(&owner) {
            *n -= 1;
            if *n == 0 {
                counts.remove(&owner);
            }
        }
        drop(counts);
        self.freed.notify_all();
    }

    /// `(pins held by the current thread, pins held in total)`.
    fn split_counts(&self) -> (u32, u32) {
        let counts = self.counts.lock();
        let me = std::thread::current().id();
        let mine = counts.get(&me).copied().unwrap_or(0);
        let total = counts.values().sum();
        (mine, total)
    }

    /// Parks until some guard drops (or the slice elapses).
    fn wait_for_release(&self) {
        let mut counts = self.counts.lock();
        if counts.values().sum::<u32>() == 0 {
            return; // released between the caller's check and our lock
        }
        let _ = self.freed.wait_for(&mut counts, PIN_WAIT_SLICE);
    }
}

/// Load state of one frame. `Loading` frames are always pinned by their
/// loader, so the victim search can never reclaim them mid-read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameState {
    /// Not bound to any page.
    Empty,
    /// Bound to a page whose read (or zero-fill) is in flight; fetches
    /// park on the frame's condition variable.
    Loading,
    /// Bound with valid contents.
    Resident,
}

struct FrameMeta {
    page_id: Option<PageId>,
    dirty: bool,
    state: FrameState,
    last_used: u64,
}

struct PoolInner {
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    tick: u64,
    hits: u64,
    coalesced: u64,
    misses: u64,
    prefetched: u64,
}

/// RAII wrapper over the pool mutex guard that maintains the debug-only
/// thread-local lock depth for the no-I/O-under-lock assertion.
struct InnerGuard<'a> {
    g: parking_lot::MutexGuard<'a, PoolInner>,
}

impl std::ops::Deref for InnerGuard<'_> {
    type Target = PoolInner;
    fn deref(&self) -> &PoolInner {
        &self.g
    }
}

impl std::ops::DerefMut for InnerGuard<'_> {
    fn deref_mut(&mut self) -> &mut PoolInner {
        &mut self.g
    }
}

impl Drop for InnerGuard<'_> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        lockcheck::exit();
    }
}

/// Shared read access to a pinned page. Unpins on drop.
pub struct PageGuard {
    cell: Arc<FrameCell>,
    guard: Option<ArcRwLockReadGuard<RawRwLock, Page>>,
    ledger: Arc<PinLedger>,
    owner: ThreadId,
}

impl PageGuard {
    /// The page contents.
    #[inline]
    pub fn page(&self) -> &Page {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.guard.take();
        self.cell.pins.fetch_sub(1, Ordering::Release);
        self.ledger.release(self.owner);
    }
}

/// Exclusive write access to a pinned page. Unpins on drop; the frame is
/// marked dirty at fetch time so eviction writes it back.
pub struct PageGuardMut {
    cell: Arc<FrameCell>,
    guard: Option<ArcRwLockWriteGuard<RawRwLock, Page>>,
    ledger: Arc<PinLedger>,
    owner: ThreadId,
}

impl PageGuardMut {
    /// The page contents.
    #[inline]
    pub fn page(&self) -> &Page {
        self.guard.as_ref().expect("guard present until drop")
    }

    /// Mutable page contents.
    #[inline]
    pub fn page_mut(&mut self) -> &mut Page {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl Drop for PageGuardMut {
    fn drop(&mut self) {
        self.guard.take();
        self.cell.pins.fetch_sub(1, Ordering::Release);
        self.ledger.release(self.owner);
    }
}

/// The buffer pool.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    frames: Vec<Arc<FrameCell>>,
    /// One condition variable per frame (paired with the inner mutex):
    /// fetches of an in-flight page park here until the loader publishes.
    frame_cvs: Vec<Condvar>,
    inner: Mutex<PoolInner>,
    ledger: Arc<PinLedger>,
    /// Where demand reads come from. Swappable so tests can inject
    /// latency/faults; the default reads through `disk`.
    backend: RwLock<Arc<dyn ReadBackend>>,
    /// Async readahead staging, when attached.
    prefetcher: RwLock<Option<Arc<Prefetcher>>>,
}

impl BufferPool {
    /// Creates a pool with `frame_count` page frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, frame_count: usize) -> Self {
        let frame_count = frame_count.max(1);
        let frames = (0..frame_count)
            .map(|_| {
                Arc::new(FrameCell {
                    page: Arc::new(RwLock::new(Page::zeroed())),
                    pins: AtomicU32::new(0),
                })
            })
            .collect();
        let frame_cvs = (0..frame_count).map(|_| Condvar::new()).collect();
        let meta = (0..frame_count)
            .map(|_| FrameMeta {
                page_id: None,
                dirty: false,
                state: FrameState::Empty,
                last_used: 0,
            })
            .collect();
        let backend: Arc<dyn ReadBackend> = Arc::new(DiskReadBackend::new(Arc::clone(&disk)));
        BufferPool {
            disk,
            frames,
            frame_cvs,
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                meta,
                tick: 0,
                hits: 0,
                coalesced: 0,
                misses: 0,
                prefetched: 0,
            }),
            ledger: Arc::new(PinLedger::new()),
            backend: RwLock::new(backend),
            prefetcher: RwLock::new(None),
        }
    }

    /// The disk manager underneath.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames currently pinned by outstanding guards. Test
    /// observability: after every guard has dropped this must be zero —
    /// a leaked pin would wedge victim search forever on a small pool.
    pub fn pinned_frames(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.pins.load(Ordering::Acquire) > 0)
            .count()
    }

    /// Replaces the demand-read backend (tests inject latency or faults
    /// here). Call before [`BufferPool::attach_prefetcher`] — the
    /// prefetcher captures the backend current at attach time.
    pub fn set_read_backend(&self, backend: Arc<dyn ReadBackend>) {
        *self.backend.write() = backend;
    }

    /// Wires an async readahead staging area of `capacity` pages over the
    /// shared I/O worker pool. Replaces any previous prefetcher.
    pub fn attach_prefetcher(&self, io: Arc<IoPool>, capacity: usize) {
        let backend = Arc::clone(&*self.backend.read());
        *self.prefetcher.write() = Some(Arc::new(Prefetcher::new(io, backend, capacity)));
    }

    /// Wraps the current read backend — and the attached prefetcher's
    /// capture of it, if any — with a fixed per-read delay (see
    /// [`crate::readpath::LatencyBackend`]). Benchmark-only: models a
    /// device with seek latency on page-cache-hot test files. Resets
    /// prefetch counters (the prefetcher is re-attached).
    pub fn simulate_read_latency(&self, delay: Duration) {
        let wrapped: Arc<dyn ReadBackend> = Arc::new(crate::readpath::LatencyBackend::new(
            self.read_backend(),
            delay,
        ));
        self.set_read_backend(wrapped);
        let reattach = self
            .prefetcher
            .read()
            .as_ref()
            .map(|p| (Arc::clone(p.io()), p.capacity()));
        if let Some((io, cap)) = reattach {
            self.attach_prefetcher(io, cap);
        }
    }

    /// Queues async readahead for the non-resident pages of `ids`. A
    /// no-op without an attached prefetcher; always a hint, never
    /// required for correctness.
    pub fn prefetch(&self, ids: &[PageId]) {
        let pf = match &*self.prefetcher.read() {
            Some(pf) => Arc::clone(pf),
            None => return,
        };
        let wanted: Vec<PageId> = {
            let inner = self.lock_inner();
            ids.iter()
                .copied()
                .filter(|id| !inner.map.contains_key(id))
                .collect()
        };
        if !wanted.is_empty() {
            pf.request(&wanted);
        }
    }

    /// Drops every staged and in-flight prefetched page image. Call on a
    /// generation flip: the per-page invalidation hooks only cover writes
    /// issued through *this* pool, while a fold rewrites the underlying
    /// file wholesale — anything the staging area holds may belong to the
    /// previous generation. A no-op without an attached prefetcher.
    pub fn invalidate_prefetched(&self) {
        if let Some(pf) = &*self.prefetcher.read() {
            pf.invalidate_all();
        }
    }

    /// Readahead counters (zeros without an attached prefetcher).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher
            .read()
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// `(hits, misses)` since creation (see [`PoolStats`] for the full
    /// taxonomy).
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock_inner();
        (inner.hits, inner.misses)
    }

    /// Full counter snapshot.
    pub fn pool_stats(&self) -> PoolStats {
        let inner = self.lock_inner();
        PoolStats {
            hits: inner.hits,
            coalesced: inner.coalesced,
            misses: inner.misses,
            prefetched: inner.prefetched,
        }
    }

    /// Fetches a page for reading.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard> {
        let (cell, owner) = self.pin_frame(id, false)?;
        let guard = RwLock::read_arc(&cell.page);
        Ok(PageGuard {
            cell,
            guard: Some(guard),
            ledger: Arc::clone(&self.ledger),
            owner,
        })
    }

    /// Fetches a page for writing; the frame is marked dirty.
    pub fn fetch_mut(&self, id: PageId) -> Result<PageGuardMut> {
        let (cell, owner) = self.pin_frame(id, true)?;
        let guard = RwLock::write_arc(&cell.page);
        Ok(PageGuardMut {
            cell,
            guard: Some(guard),
            ledger: Arc::clone(&self.ledger),
            owner,
        })
    }

    /// Allocates a fresh zeroed page and returns it pinned for writing.
    ///
    /// The frame recycles some victim's memory, so it passes through
    /// `Loading` while the old bytes are zeroed: a concurrent fetch of
    /// the new page id parks until the zero-fill is published and then
    /// blocks on the page RwLock until the returned guard drops — stale
    /// prior-page bytes are never observable.
    pub fn new_page(&self) -> Result<(PageId, PageGuardMut)> {
        let id = self.disk.allocate();
        let deadline = Instant::now() + PIN_WAIT_DEADLINE;
        let mut inner = self.lock_inner();
        let frame = loop {
            let (guard, res) = self.claim_victim(inner);
            inner = guard;
            match res {
                Ok(f) => break f,
                Err(e @ StorageError::PoolExhausted) => {
                    inner = self.wait_for_unpin(inner, deadline, e)?;
                }
                Err(e) => return Err(e),
            }
        };
        if let Some(old) = inner.meta[frame].page_id.take() {
            inner.map.remove(&old);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.meta[frame] = FrameMeta {
            page_id: Some(id),
            dirty: true,
            state: FrameState::Loading,
            last_used: tick,
        };
        inner.map.insert(id, frame);
        self.frames[frame].pins.fetch_add(1, Ordering::Acquire);
        let owner = self.ledger.acquire();
        drop(inner);
        self.invalidate_staged(id);
        let cell = Arc::clone(&self.frames[frame]);
        let mut guard = RwLock::write_arc(&cell.page);
        *guard = Page::zeroed();
        // Publish while still holding the page write guard: waiters wake,
        // pin, then block on the page lock until the caller is done.
        {
            let mut inner = self.lock_inner();
            inner.meta[frame].state = FrameState::Resident;
            self.frame_cvs[frame].notify_all();
        }
        Ok((
            id,
            PageGuardMut {
                cell,
                guard: Some(guard),
                ledger: Arc::clone(&self.ledger),
                owner,
            },
        ))
    }

    /// Writes all dirty frames back to disk, performing every write
    /// outside the pool mutex so concurrent fetches keep flowing during a
    /// checkpoint.
    ///
    /// When a WAL is attached, the before-images of every dirty page are
    /// logged first in one pass, so the write-ahead barrier inside the
    /// first `write_page` syncs them all with a single fsync (group
    /// fsync) instead of one per page. The prelog pass happens outside
    /// the lock too; images are idempotent (first-image-wins), so a frame
    /// that gets evicted or re-dirtied between snapshot and write-back
    /// stays crash-consistent.
    pub fn flush_all(&self) -> Result<()> {
        let dirty: Vec<(usize, PageId)> = {
            let inner = self.lock_inner();
            (0..self.frames.len())
                // A `Loading` frame can already be dirty (a `fetch_mut`
                // miss binds it dirty before its read lands), but its
                // cell still holds the previous occupant's bytes —
                // flushing it would write those bytes to the new id.
                // Only `Resident` content is flushable.
                .filter(|&i| inner.meta[i].dirty && inner.meta[i].state == FrameState::Resident)
                .map(|i| (i, inner.meta[i].page_id.expect("dirty frame has a page")))
                .collect()
        };
        for (_, id) in &dirty {
            self.disk.prelog_for_wal(*id)?;
        }
        for (f, id) in dirty {
            let mut inner = self.lock_inner();
            // Revalidate: the frame may have been evicted (write-back
            // already done) or rebound — possibly to the *same* id and
            // now mid-reload — while we were unlocked.
            if inner.meta[f].page_id != Some(id)
                || !inner.meta[f].dirty
                || inner.meta[f].state != FrameState::Resident
            {
                continue;
            }
            // Claim: clear dirty optimistically and pin so the frame
            // cannot be evicted mid-write. A concurrent `fetch_mut` will
            // re-set dirty under this same mutex and serialize its
            // mutation against our disk write on the page RwLock, so no
            // update can be lost.
            inner.meta[f].dirty = false;
            self.frames[f].pins.fetch_add(1, Ordering::Acquire);
            let owner = self.ledger.acquire();
            drop(inner);
            let res = {
                let mut page = self.frames[f].page.write();
                self.disk.write_page(id, &mut page)
            };
            self.invalidate_staged(id);
            self.frames[f].pins.fetch_sub(1, Ordering::Release);
            self.ledger.release(owner);
            if let Err(e) = res {
                let mut inner = self.lock_inner();
                if inner.meta[f].page_id == Some(id) && inner.meta[f].state == FrameState::Resident
                {
                    inner.meta[f].dirty = true; // contents still in memory
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Locks the pool mutex, maintaining the debug lock-depth used by the
    /// no-I/O-under-lock assertion.
    fn lock_inner(&self) -> InnerGuard<'_> {
        let g = self.inner.lock();
        #[cfg(debug_assertions)]
        lockcheck::enter();
        InnerGuard { g }
    }

    fn read_backend(&self) -> Arc<dyn ReadBackend> {
        Arc::clone(&*self.backend.read())
    }

    fn take_staged(&self, id: PageId) -> Option<Page> {
        self.prefetcher.read().as_ref()?.take(id)
    }

    fn invalidate_staged(&self, id: PageId) {
        if let Some(pf) = &*self.prefetcher.read() {
            pf.invalidate(id);
        }
    }

    fn pin_frame(&self, id: PageId, dirty: bool) -> Result<(Arc<FrameCell>, ThreadId)> {
        let deadline = Instant::now() + PIN_WAIT_DEADLINE;
        // True once this fetch has parked on an in-flight load of `id`;
        // decides hit vs. coalesced when the page turns out resident.
        let mut waited_inflight = false;
        let mut inner = self.lock_inner();
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            // Re-checked on every retry: while we waited, another thread
            // may have loaded (or begun loading) this very page.
            if let Some(&f) = inner.map.get(&id) {
                match inner.meta[f].state {
                    FrameState::Resident => {
                        if waited_inflight {
                            inner.coalesced += 1;
                        } else {
                            inner.hits += 1;
                        }
                        inner.meta[f].last_used = tick;
                        if dirty && !inner.meta[f].dirty {
                            inner.meta[f].dirty = true;
                            // The disk image is about to go stale; a
                            // staged copy of it must not be served later.
                            let pf = self.prefetcher.read().as_ref().map(Arc::clone);
                            if let Some(pf) = pf {
                                pf.invalidate(id);
                            }
                        }
                        self.frames[f].pins.fetch_add(1, Ordering::Acquire);
                        let owner = self.ledger.acquire();
                        return Ok((Arc::clone(&self.frames[f]), owner));
                    }
                    FrameState::Loading => {
                        // Another fetch is reading this page; park on the
                        // frame until it publishes (or fails and unbinds).
                        waited_inflight = true;
                        let _ = self.frame_cvs[f].wait_for(&mut inner.g, LOAD_WAIT_SLICE);
                        continue;
                    }
                    FrameState::Empty => {
                        unreachable!("mapped frame cannot be Empty");
                    }
                }
            }
            // Miss: claim a victim, bind it Loading, and read unlocked.
            let frame = {
                let (guard, res) = self.claim_victim(inner);
                inner = guard;
                match res {
                    Ok(f) => f,
                    Err(e @ StorageError::PoolExhausted) => {
                        inner = self.wait_for_unpin(inner, deadline, e)?;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };
            if let Some(old) = inner.meta[frame].page_id.take() {
                inner.map.remove(&old);
            }
            inner.meta[frame].page_id = Some(id);
            inner.meta[frame].dirty = dirty;
            inner.meta[frame].state = FrameState::Loading;
            inner.meta[frame].last_used = tick;
            inner.map.insert(id, frame);
            // The loader pin keeps the Loading frame off the victim list.
            self.frames[frame].pins.fetch_add(1, Ordering::Acquire);
            let owner = self.ledger.acquire();
            drop(inner);
            if dirty {
                self.invalidate_staged(id);
            }
            // --- the read: no pool mutex held ---
            let staged = if dirty { None } else { self.take_staged(id) };
            let from_prefetch = staged.is_some();
            let loaded = match staged {
                Some(page) => Ok(page),
                None => self.read_backend().read_page(id),
            };
            match loaded {
                Ok(page) => {
                    *self.frames[frame].page.write() = page;
                    let mut inner = self.lock_inner();
                    inner.meta[frame].state = FrameState::Resident;
                    if from_prefetch {
                        inner.prefetched += 1;
                    } else {
                        inner.misses += 1;
                    }
                    self.frame_cvs[frame].notify_all();
                    drop(inner);
                    return Ok((Arc::clone(&self.frames[frame]), owner));
                }
                Err(e) => {
                    // Unbind so parked waiters retry (and surface the
                    // same error if it is persistent).
                    let mut inner = self.lock_inner();
                    inner.meta[frame].page_id = None;
                    inner.meta[frame].dirty = false;
                    inner.meta[frame].state = FrameState::Empty;
                    inner.map.remove(&id);
                    self.frame_cvs[frame].notify_all();
                    drop(inner);
                    self.frames[frame].pins.fetch_sub(1, Ordering::Release);
                    self.ledger.release(owner);
                    return Err(e);
                }
            }
        }
    }

    /// Handles an all-frames-pinned victim search. If every outstanding pin
    /// belongs to the calling thread (or the deadline has passed), the
    /// error propagates — waiting on our own guards would deadlock.
    /// Otherwise the pool lock is released and the caller parks until some
    /// guard drops, then retries with the lock re-acquired.
    fn wait_for_unpin<'a>(
        &'a self,
        inner: InnerGuard<'a>,
        deadline: Instant,
        err: StorageError,
    ) -> Result<InnerGuard<'a>> {
        let (mine, total) = self.ledger.split_counts();
        if (mine > 0 && mine == total) || Instant::now() >= deadline {
            return Err(err);
        }
        drop(inner);
        self.ledger.wait_for_release();
        Ok(self.lock_inner())
    }

    /// Picks an eviction victim among unpinned frames: clean frames first
    /// (no write-back on the fetch path), LRU within each class. A dirty
    /// victim is written back with the pool mutex *released* (claimed via
    /// a pin so it cannot be evicted or reused meanwhile), then the
    /// search retries; the returned frame is always clean or empty.
    ///
    /// Clearing the dirty bit before the unlocked write is safe: a
    /// concurrent `fetch_mut` re-sets it under this mutex, and its
    /// mutation serializes against our disk write on the page RwLock —
    /// whichever order they land in, dirty stays `true` for any content
    /// not yet on disk.
    fn claim_victim<'a>(&'a self, mut inner: InnerGuard<'a>) -> (InnerGuard<'a>, Result<usize>) {
        loop {
            let mut victim = None;
            let mut best = (true, u64::MAX); // (dirty?, last_used) — clean sorts first
            for (i, m) in inner.meta.iter().enumerate() {
                let key = (m.dirty, m.last_used);
                if self.frames[i].pins.load(Ordering::Acquire) == 0 && key < best {
                    best = key;
                    victim = Some(i);
                }
            }
            let Some(v) = victim else {
                return (inner, Err(StorageError::PoolExhausted));
            };
            if !inner.meta[v].dirty {
                return (inner, Ok(v));
            }
            let old = inner.meta[v].page_id.expect("dirty frame has a page");
            // pins == 0 rules out `Loading` (a loading frame always
            // carries its loader's pin), so the cell's bytes are `old`'s.
            debug_assert_eq!(inner.meta[v].state, FrameState::Resident);
            inner.meta[v].dirty = false;
            self.frames[v].pins.fetch_add(1, Ordering::Acquire);
            let owner = self.ledger.acquire();
            drop(inner);
            let res = {
                let mut page = self.frames[v].page.write();
                self.disk.write_page(old, &mut page)
            };
            self.invalidate_staged(old);
            inner = self.lock_inner();
            self.frames[v].pins.fetch_sub(1, Ordering::Release);
            self.ledger.release(owner);
            if let Err(e) = res {
                inner.meta[v].dirty = true; // restore; contents still in memory
                return (inner, Err(e));
            }
            // Retry the search: while unlocked the frame may have been
            // pinned or re-dirtied; if it is now clean and unpinned the
            // next iteration claims it for free.
        }
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Best-effort flush so read-only reopen sees complete data even if
        // the user forgot an explicit flush; errors are ignored here (the
        // explicit flush path reports them).
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> (tempfile::TempDir, BufferPool) {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        (d, BufferPool::new(dm, frames))
    }

    fn write_marker(pool: &BufferPool, marker: u8) -> PageId {
        let (id, mut g) = pool.new_page().unwrap();
        g.page_mut().payload_mut()[0] = marker;
        id
    }

    #[test]
    fn new_page_then_fetch() {
        let (_d, pool) = pool(4);
        let id = write_marker(&pool, 7);
        let g = pool.fetch(id).unwrap();
        assert_eq!(g.page().payload()[0], 7);
    }

    #[test]
    fn eviction_roundtrips_through_disk() {
        let (_d, pool) = pool(2);
        let ids: Vec<PageId> = (0..10).map(|i| write_marker(&pool, i as u8)).collect();
        // all but the last two were evicted; refetch everything
        for (i, id) in ids.iter().enumerate() {
            let g = pool.fetch(*id).unwrap();
            assert_eq!(g.page().payload()[0], i as u8, "page {i}");
        }
    }

    #[test]
    fn pool_exhausted_when_all_pinned() {
        let (_d, pool) = pool(2);
        let a = write_marker(&pool, 1);
        let b = write_marker(&pool, 2);
        let _ga = pool.fetch(a).unwrap();
        let _gb = pool.fetch(b).unwrap();
        let c = pool.disk().allocate();
        let _ = c;
        match pool.new_page() {
            Err(StorageError::PoolExhausted) => {}
            other => panic!("expected PoolExhausted, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn unpin_allows_reuse() {
        let (_d, pool) = pool(1);
        let a = write_marker(&pool, 1);
        {
            let _g = pool.fetch(a).unwrap();
        } // dropped => unpinned
        let b = write_marker(&pool, 2);
        let g = pool.fetch(b).unwrap();
        assert_eq!(g.page().payload()[0], 2);
        drop(g);
        let g = pool.fetch(a).unwrap();
        assert_eq!(g.page().payload()[0], 1);
    }

    #[test]
    fn flush_persists_for_reopen() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let id;
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(dm, 4);
            id = write_marker(&pool, 99);
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(dm, 4);
        let g = pool.fetch(id).unwrap();
        assert_eq!(g.page().payload()[0], 99);
    }

    #[test]
    fn hit_miss_stats() {
        let (_d, pool) = pool(4);
        let a = write_marker(&pool, 1);
        let (h0, _m0) = pool.stats();
        pool.fetch(a).unwrap();
        pool.fetch(a).unwrap();
        let (h1, _m1) = pool.stats();
        assert_eq!(h1 - h0, 2);
    }

    #[test]
    fn misses_count_actual_disk_reads() {
        // `misses` must equal the DiskManager's verified-read counter:
        // every demand read counted exactly once, no double count on
        // races, no phantom hit on retries.
        let (_d, pool) = pool(2);
        let ids: Vec<PageId> = (0..12).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let (reads0, _) = pool.disk().io_counts();
        let base = pool.pool_stats();
        for _ in 0..3 {
            for id in &ids {
                pool.fetch(*id).unwrap();
            }
        }
        let s = pool.pool_stats().since(base);
        let (reads1, _) = pool.disk().io_counts();
        assert_eq!(s.accesses(), 36, "every fetch counted exactly once");
        assert_eq!(
            s.misses,
            reads1 - reads0,
            "misses == synchronous disk reads"
        );
        assert_eq!(s.prefetched, 0);
    }

    #[test]
    fn many_pages_tiny_pool_stress() {
        let (_d, pool) = pool(3);
        let ids: Vec<PageId> = (0..100)
            .map(|i| write_marker(&pool, (i % 251) as u8))
            .collect();
        for round in 0..3 {
            for (i, id) in ids.iter().enumerate() {
                let g = pool.fetch(*id).unwrap();
                assert_eq!(
                    g.page().payload()[0],
                    (i % 251) as u8,
                    "round {round} page {i}"
                );
            }
        }
        let (hits, misses) = pool.stats();
        assert!(misses > 0 && hits + misses >= 300);
    }

    #[test]
    fn fetch_storm_tiny_pool_no_exhaustion() {
        // 8 threads hammer a 2-frame pool, each holding one guard at a
        // time. All-frames-pinned moments are common, but the pins always
        // belong to other threads, so every fetch must wait and succeed —
        // never PoolExhausted.
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 2));
        let ids: Vec<PageId> = (0..16).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let i = (t * 5 + round * 11) % ids.len();
                    let g = pool
                        .fetch(ids[i])
                        .expect("waiters must outlast other threads' pins");
                    assert_eq!(g.page().payload()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fetch_taxonomy_accounts_for_every_access() {
        // Frame-state-machine ledger test: under a concurrent storm over
        // a tiny pool, every fetch lands in exactly one stats bucket and
        // all pins drain afterwards.
        const THREADS: usize = 6;
        const ROUNDS: usize = 300;
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 3));
        let ids: Vec<PageId> = (0..24).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let base = pool.pool_stats();
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let i = (t * 7 + round * 13) % ids.len();
                    let g = pool.fetch(ids[i]).expect("storm fetch");
                    assert_eq!(g.page().payload()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.pool_stats().since(base);
        assert_eq!(
            s.accesses(),
            (THREADS * ROUNDS) as u64,
            "each fetch counted exactly once across {s:?}"
        );
        // all pins drained: the tiny pool can still turn over every frame
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.fetch(*id).unwrap().page().payload()[0], i as u8);
        }
    }

    #[test]
    fn waiter_succeeds_when_other_thread_unpins() {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 1));
        let a = write_marker(&pool, 1);
        let b = write_marker(&pool, 2);
        pool.flush_all().unwrap();
        let ga = pool.fetch(a).unwrap(); // pin the only frame
        let child = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.fetch(b).map(|g| g.page().payload()[0]))
        };
        // Let the child reach the all-pinned path and park.
        std::thread::sleep(Duration::from_millis(50));
        drop(ga); // unpin: the parked fetch must wake and complete
        assert_eq!(child.join().unwrap().unwrap(), 2);
    }

    #[test]
    fn two_pools_interleaved_pins_from_shared_thread_set() {
        // The sharded-index access pattern: every shard owns its own
        // DiskManager + BufferPool, and one set of worker threads pins
        // pages from several pools at once — often holding a guard on
        // pool A while fetching from pool B, in either order. Pin
        // ledgers and waiter wakeups are strictly per-pool, so
        // cross-pool holds must not leak pins and each pool's stats must
        // only count its own traffic. Each pool gets one frame per
        // worker (the sizing invariant the sharded database's per-shard
        // `buffer_frames` budget upholds): a thread never holds more
        // than one pin per pool, so mixed A→B / B→A hold orders cannot
        // exhaust a pool and deadlock — with fewer frames than workers
        // that ABBA pattern genuinely can, in any pool design.
        const WORKERS: usize = 6;
        let d = tempfile::tempdir().unwrap();
        let dm_a = Arc::new(DiskManager::create(&d.path().join("a.db")).unwrap());
        let dm_b = Arc::new(DiskManager::create(&d.path().join("b.db")).unwrap());
        let pool_a = Arc::new(BufferPool::new(dm_a, WORKERS));
        let pool_b = Arc::new(BufferPool::new(dm_b, WORKERS));
        let ids_a: Vec<PageId> = (0..12).map(|i| write_marker(&pool_a, i as u8)).collect();
        let ids_b: Vec<PageId> = (0..12)
            .map(|i| write_marker(&pool_b, 100 + i as u8))
            .collect();
        pool_a.flush_all().unwrap();
        pool_b.flush_all().unwrap();
        let base_a = pool_a.pool_stats();
        let base_b = pool_b.pool_stats();

        let mut handles = Vec::new();
        for t in 0..WORKERS {
            let (pool_a, pool_b) = (Arc::clone(&pool_a), Arc::clone(&pool_b));
            let (ids_a, ids_b) = (ids_a.clone(), ids_b.clone());
            handles.push(std::thread::spawn(move || {
                for round in 0..150 {
                    let i = (t * 5 + round * 7) % ids_a.len();
                    let j = (t * 3 + round * 11) % ids_b.len();
                    // hold a pin in A across the whole B fetch (and vice
                    // versa on odd rounds) — the cross-pool hold pattern
                    if round % 2 == 0 {
                        let ga = pool_a.fetch(ids_a[i]).expect("pool A fetch");
                        let gb = pool_b.fetch(ids_b[j]).expect("pool B fetch under A pin");
                        assert_eq!(ga.page().payload()[0], i as u8);
                        assert_eq!(gb.page().payload()[0], 100 + j as u8);
                    } else {
                        let gb = pool_b.fetch(ids_b[j]).expect("pool B fetch");
                        let ga = pool_a.fetch(ids_a[i]).expect("pool A fetch under B pin");
                        assert_eq!(gb.page().payload()[0], 100 + j as u8);
                        assert_eq!(ga.page().payload()[0], i as u8);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // all pins released: both pools can still turn over every frame
        for (i, id) in ids_a.iter().enumerate() {
            assert_eq!(pool_a.fetch(*id).unwrap().page().payload()[0], i as u8);
        }
        for (j, id) in ids_b.iter().enumerate() {
            assert_eq!(
                pool_b.fetch(*id).unwrap().page().payload()[0],
                100 + j as u8
            );
        }
        // stats stayed per-pool: each saw exactly its own WORKERS*150
        // + 12 fetches
        let sa = pool_a.pool_stats().since(base_a);
        let sb = pool_b.pool_stats().since(base_b);
        assert_eq!(sa.accesses(), WORKERS as u64 * 150 + 12, "pool A accesses");
        assert_eq!(sb.accesses(), WORKERS as u64 * 150 + 12, "pool B accesses");
    }

    #[test]
    fn concurrent_readers() {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 8));
        let ids: Vec<PageId> = (0..32).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let i = (t * 7 + round * 3) % ids.len();
                    let g = pool.fetch(ids[i]).unwrap();
                    assert_eq!(g.page().payload()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A backend that sleeps on designated pages — simulates one slow
    /// cold read so tests can prove it doesn't serialize the pool.
    struct SlowPageBackend {
        disk: Arc<DiskManager>,
        slow: PageId,
        delay: Duration,
    }

    impl ReadBackend for SlowPageBackend {
        fn read_page(&self, id: PageId) -> Result<Page> {
            if id == self.slow {
                std::thread::sleep(self.delay);
            }
            self.disk.read_page(id)
        }
    }

    #[test]
    fn slow_cold_read_does_not_block_resident_fetches() {
        // Acceptance check for the tentpole: with the read happening
        // outside the pool mutex, a 300 ms cold read of one page must not
        // delay fetches of already-resident pages.
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let ids: Vec<PageId>;
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(dm, 8);
            ids = (0..8).map(|i| write_marker(&pool, i as u8)).collect();
            pool.flush_all().unwrap();
        }
        let slow = ids[0];
        let delay = Duration::from_millis(300);
        // Fresh pool: everything cold. Warm ids[1..], leave ids[0] cold.
        let pool = Arc::new(BufferPool::new(
            Arc::new(DiskManager::open(&path).unwrap()),
            8,
        ));
        let dm = Arc::clone(pool.disk());
        pool.set_read_backend(Arc::new(SlowPageBackend {
            disk: dm,
            slow,
            delay,
        }));
        for id in &ids[1..] {
            pool.fetch(*id).unwrap(); // resident
        }
        let loader = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.fetch(slow).map(|g| g.page().payload()[0]))
        };
        std::thread::sleep(Duration::from_millis(30)); // loader is mid-read
        let t0 = Instant::now();
        for round in 0..20 {
            let id = ids[1 + round % 7];
            pool.fetch(id).unwrap();
        }
        let resident_elapsed = t0.elapsed();
        assert!(
            resident_elapsed < Duration::from_millis(150),
            "resident fetches stalled behind a cold read: {resident_elapsed:?}"
        );
        assert_eq!(loader.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn concurrent_cold_fetches_coalesce_on_one_read() {
        // N threads demand the same cold page while its read is slow:
        // exactly one performs the read (miss), the rest park on the
        // frame and are counted as coalesced.
        const WAITERS: usize = 4;
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let target;
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(dm, 4);
            target = write_marker(&pool, 42);
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::clone(&dm), 4));
        pool.set_read_backend(Arc::new(SlowPageBackend {
            disk: dm,
            slow: target,
            delay: Duration::from_millis(200),
        }));
        let base = pool.pool_stats();
        let barrier = Arc::new(std::sync::Barrier::new(WAITERS + 1));
        let mut handles = Vec::new();
        for _ in 0..WAITERS {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                // arrive while the leader's 200 ms read is in flight
                std::thread::sleep(Duration::from_millis(40));
                pool.fetch(target).map(|g| g.page().payload()[0])
            }));
        }
        let leader = {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                pool.fetch(target).map(|g| g.page().payload()[0])
            })
        };
        assert_eq!(leader.join().unwrap().unwrap(), 42);
        for h in handles {
            assert_eq!(h.join().unwrap().unwrap(), 42);
        }
        let s = pool.pool_stats().since(base);
        assert_eq!(s.misses, 1, "exactly one disk read for the shared page");
        assert_eq!(
            s.misses + s.coalesced + s.hits,
            (WAITERS + 1) as u64,
            "every fetch counted once: {s:?}"
        );
        assert!(s.coalesced >= 1, "waiters parked on the in-flight frame");
    }

    #[test]
    fn new_page_recycled_frame_never_exposes_stale_bytes() {
        // Regression for the zero-after-install race: `new_page` recycles
        // a frame whose memory still holds the prior page's bytes. A
        // concurrent fetch of the *new* page id must observe either the
        // zeroed page or the caller's final content — never byte 0xAA
        // from the victim page. (This is the BlobStore allocation
        // pattern: `put` spins on `page_count` and fetches pages another
        // thread is still creating.)
        for _round in 0..30 {
            let d = tempfile::tempdir().unwrap();
            let dm = Arc::new(DiskManager::create(&d.path().join("p.db")).unwrap());
            let pool = Arc::new(BufferPool::new(dm, 1)); // 1 frame => always recycles
            let stale = write_marker(&pool, 0xAA);
            pool.flush_all().unwrap();
            // re-fill the single frame with the stale marker
            pool.fetch(stale).unwrap();
            let creator = {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let (id, mut g) = pool.new_page().unwrap();
                    g.page_mut().payload_mut()[0] = 0xBB;
                    id
                })
            };
            let racer = {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    // Poll for the id the creator will allocate, like
                    // BlobStore::put's lazy-allocation loop does.
                    let next = PageId(pool.disk().page_count().saturating_sub(1).max(1));
                    for _ in 0..50 {
                        if let Ok(g) = pool.fetch(next) {
                            let b = g.page().payload()[0];
                            assert!(
                                b == 0 || b == 0xBB,
                                "observed stale victim bytes 0x{b:02X} in a recycled frame"
                            );
                        }
                    }
                })
            };
            creator.join().unwrap();
            racer.join().unwrap();
        }
    }

    #[test]
    fn prefetched_pages_are_served_from_staging() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let ids: Vec<PageId>;
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = BufferPool::new(dm, 4);
            ids = (0..16).map(|i| write_marker(&pool, i as u8)).collect();
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(dm, 8);
        let io = IoPool::new(2);
        pool.attach_prefetcher(io, 32);
        pool.prefetch(&ids);
        // give the workers time to land the reads in staging; the fetch
        // loop below is correct either way (a pending entry just means a
        // demand read), we only need *some* staged pages for the assert
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.disk().io_counts().0 < ids.len() as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        for (i, id) in ids.iter().enumerate() {
            let g = pool.fetch(*id).unwrap();
            assert_eq!(g.page().payload()[0], i as u8);
        }
        let s = pool.pool_stats();
        let pf = pool.prefetch_stats();
        assert!(
            s.prefetched > 0,
            "staged pages must satisfy misses: {s:?} / {pf:?}"
        );
        assert_eq!(s.prefetched + s.misses, 16, "every cold fetch accounted");
        assert_eq!(pf.used, s.prefetched);
    }

    #[test]
    fn flush_all_races_with_fetches() {
        // Checkpoint while a storm of readers and writers runs: no lost
        // updates, no deadlock, and the final flush lands every marker.
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("p.db");
        let dm = Arc::new(DiskManager::create(&path).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 4));
        let ids: Vec<PageId> = (0..12).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let stop = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for t in 0..3 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut round = 0usize;
                while stop.load(Ordering::Relaxed) == 0 {
                    let i = (t * 5 + round * 7) % ids.len();
                    if round % 3 == 0 {
                        let mut g = pool.fetch_mut(ids[i]).unwrap();
                        g.page_mut().payload_mut()[1] = (round % 251) as u8;
                    } else {
                        let g = pool.fetch(ids[i]).unwrap();
                        assert_eq!(g.page().payload()[0], i as u8, "marker byte stable");
                    }
                    round += 1;
                }
            }));
        }
        for _ in 0..20 {
            pool.flush_all().unwrap();
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        pool.flush_all().unwrap();
        drop(pool);
        // every marker byte survived the concurrent checkpoints
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(dm, 4);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(pool.fetch(*id).unwrap().page().payload()[0], i as u8);
        }
    }

    /// A read backend that tallies every page it serves, so tests can
    /// audit the stats taxonomy against actual disk traffic.
    struct CountingBackend {
        inner: Arc<dyn ReadBackend>,
        reads: Arc<std::sync::atomic::AtomicU64>,
    }

    impl ReadBackend for CountingBackend {
        fn read_page(&self, id: PageId) -> crate::Result<Page> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_page(id)
        }
    }

    /// The accounting ledger under stress: every `misses` tick is exactly
    /// one demand disk read, every `issued` tick exactly one async read,
    /// and nothing else ever touches the disk. Run without a prefetcher
    /// the audit is an equality on `misses` alone; with one attached (and
    /// `flush_all` churning underneath) it is `misses + issued`. Either
    /// way every pin must be returned — a leaked pin on a 3-frame pool
    /// would wedge the victim search.
    #[test]
    fn stress_accounting_matches_actual_disk_reads() {
        let (_d, pool) = pool(3);
        let ids: Vec<PageId> = (0..24).map(|i| write_marker(&pool, i as u8)).collect();
        pool.flush_all().unwrap();
        let reads = Arc::new(std::sync::atomic::AtomicU64::new(0));
        pool.set_read_backend(Arc::new(CountingBackend {
            inner: Arc::new(DiskReadBackend::new(Arc::clone(pool.disk()))),
            reads: Arc::clone(&reads),
        }));
        let pool = Arc::new(pool);

        // Phase 1 — no prefetcher: demand misses are the only reads.
        let base = pool.pool_stats();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let k = ((t * 131 + i * 7) % ids.len() as u64) as usize;
                    let g = pool.fetch(ids[k]).unwrap();
                    assert_eq!(g.page().payload()[0], k as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let d = pool.pool_stats().since(base);
        assert_eq!(pool.pinned_frames(), 0, "phase 1 leaked a pin");
        assert_eq!(
            d.hits + d.coalesced + d.misses,
            4 * 300,
            "every fetch counted"
        );
        assert_eq!(d.prefetched, 0, "no prefetcher attached yet");
        assert_eq!(
            d.misses,
            reads.load(Ordering::Relaxed),
            "misses == demand reads"
        );

        // Phase 2 — prefetcher attached (capturing the counting backend)
        // plus fetch_mut and flush_all churn.
        let io = IoPool::new(2);
        pool.attach_prefetcher(io, 8);
        let base = pool.pool_stats();
        let reads_base = reads.load(Ordering::Relaxed);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = ((t * 37 + i * 11) % ids.len() as u64) as usize;
                    match (t + i) % 5 {
                        0 => {
                            // idempotent write: same byte every time
                            let mut g = pool.fetch_mut(ids[k]).unwrap();
                            g.page_mut().payload_mut()[0] = k as u8;
                        }
                        1 => pool.prefetch(&[ids[k], ids[(k + 5) % 24], ids[(k + 11) % 24]]),
                        2 => pool.flush_all().unwrap(),
                        _ => {
                            let g = pool.fetch(ids[k]).unwrap();
                            assert_eq!(g.page().payload()[0], k as u8);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Issued prefetch jobs may still be in flight on the I/O workers;
        // wait for the ledger to balance before asserting equality.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let d = pool.pool_stats().since(base);
            let pf = pool.prefetch_stats();
            let audited = reads.load(Ordering::Relaxed) - reads_base;
            if d.misses + pf.issued == audited {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "disk reads never reconciled: misses {} + issued {} != reads {audited}",
                d.misses,
                pf.issued
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.pinned_frames(), 0, "phase 2 leaked a pin");
        let d = pool.pool_stats().since(base);
        assert!(d.misses > 0, "a 3-frame pool over 24 pages must miss");
    }
}
