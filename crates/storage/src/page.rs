//! Fixed-size pages with integrity checksums.
//!
//! Every on-disk structure in this crate is built from [`PAGE_SIZE`] pages.
//! The first [`HEADER_LEN`] bytes of each page hold a checksum over the
//! page's id and payload so torn or corrupted writes are detected on read
//! (the disk manager verifies on every read, [`Page::verify_for`]).
//! Keying the checksum by page id additionally catches *misdirected*
//! writes — a perfectly intact page persisted at the wrong offset fails
//! verification too. The payload area is free-form; higher layers
//! (B+-tree nodes, blob segments) impose their own layout on it.

/// Page size in bytes. 8 KiB matches PostgreSQL's default page size — the
/// DBMS the paper hosted the NH-Index in.
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the start of every page for the checksum.
pub const HEADER_LEN: usize = 8;

/// Usable payload bytes per page.
pub const PAYLOAD_LEN: usize = PAGE_SIZE - HEADER_LEN;

/// Identifier of a page within one storage file (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in the file.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// An in-memory page image.
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page. The checksum is stamped by [`Page::seal_for`] when
    /// the page is written to its disk slot.
    pub fn zeroed() -> Self {
        Page {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Payload bytes (read).
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.buf[HEADER_LEN..]
    }

    /// Payload bytes (write). Call [`Page::seal_for`] before flushing to disk.
    #[inline]
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf[HEADER_LEN..]
    }

    /// Full raw page image.
    #[inline]
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Builds a page from a raw disk image without verifying.
    pub fn from_raw(raw: Box<[u8; PAGE_SIZE]>) -> Self {
        Page { buf: raw }
    }

    /// Recomputes and stores the checksum for this page living at slot
    /// `id`. Must be called immediately before the page image goes to
    /// disk.
    pub fn seal_for(&mut self, id: PageId) {
        let sum = checksum(id.0, &self.buf[HEADER_LEN..]);
        self.buf[..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
    }

    /// True when the stored checksum matches the payload *and* slot `id` —
    /// a valid page read from the wrong offset fails too.
    pub fn verify_for(&self, id: PageId) -> bool {
        let stored = u64::from_le_bytes(self.buf[..HEADER_LEN].try_into().unwrap());
        stored == checksum(id.0, &self.buf[HEADER_LEN..])
    }
}

/// FNV-1a 64-bit over the page id followed by the payload. Fast, good
/// enough for torn-write detection (we are not defending against
/// adversarial corruption; the WAL uses CRC-32 for its records).
pub fn checksum(page_id: u64, data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    h ^= page_id;
    h = h.wrapping_mul(PRIME);
    // process 8 bytes at a time for speed; FNV quality is unaffected for
    // our integrity-check purpose.
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_zeroed_page_verifies() {
        let mut p = Page::zeroed();
        p.seal_for(PageId(0));
        assert!(p.verify_for(PageId(0)));
    }

    #[test]
    fn seal_then_verify() {
        let mut p = Page::zeroed();
        p.payload_mut()[0] = 0xAB;
        p.payload_mut()[PAYLOAD_LEN - 1] = 0xCD;
        assert!(!p.verify_for(PageId(7))); // dirty, not yet sealed
        p.seal_for(PageId(7));
        assert!(p.verify_for(PageId(7)));
    }

    #[test]
    fn corruption_detected() {
        let mut p = Page::zeroed();
        p.payload_mut()[100] = 1;
        p.seal_for(PageId(0));
        let mut raw = *p.raw();
        raw[HEADER_LEN + 100] = 2; // flip payload byte after sealing
        let p2 = Page::from_raw(Box::new(raw));
        assert!(!p2.verify_for(PageId(0)));
    }

    #[test]
    fn misdirected_write_detected() {
        // a perfectly intact page fails verification at any other slot
        let mut p = Page::zeroed();
        p.payload_mut()[0] = 5;
        p.seal_for(PageId(3));
        assert!(p.verify_for(PageId(3)));
        assert!(!p.verify_for(PageId(4)));
    }

    #[test]
    fn checksum_differs_on_single_bit() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[63] = 1;
        assert_ne!(checksum(0, &a), checksum(0, &b));
        assert_ne!(checksum(0, &a), checksum(1, &a));
    }

    #[test]
    fn page_id_offset() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * 8192);
    }
}
