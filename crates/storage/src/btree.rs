//! Disk-resident B+-tree over composite `(label, degree, nbConnection)`
//! keys — the first level of the paper's hybrid NH-Index (§IV-C, Fig. 2).
//!
//! The tree supports the exact access paths the index probe needs:
//! equality on the label plus range scans on degree and neighbor
//! connection (conditions IV.1, IV.2 and IV.4), via [`BTree::get`] and
//! [`BTree::range`]. Values are opaque `u64`s; the NH-Index stores
//! [`crate::BlobRef`]s to second-level postings there.
//!
//! Keys are unique (inserting an existing key replaces its value), which
//! matches the index's one-posting-per-distinct-key layout. Read-mostly
//! usage is expected, so [`BTree::bulk_load`] packs leaves at 100% fill;
//! incremental [`BTree::insert`] with node splits is also provided for
//! growing databases.

use crate::buffer::BufferPool;
use crate::page::{PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use std::sync::Arc;

/// In-payload header bytes: type(1) pad(1) count(2) pad(4) next(8).
const HDR: usize = 16;
/// Payload bytes available per page.
const PAYLOAD: usize = PAGE_SIZE - crate::page::HEADER_LEN;
/// Bytes per leaf entry: 12-byte key + 8-byte value.
const LEAF_ENTRY: usize = 20;
/// Bytes per internal entry: 12-byte key + 8-byte child pointer.
const INT_ENTRY: usize = 20;
/// Internal nodes also store one leftmost child pointer after the header.
const INT_HDR: usize = HDR + 8;

/// Max entries per leaf page.
pub const LEAF_CAP: usize = (PAYLOAD - HDR) / LEAF_ENTRY;
/// Max separator keys per internal page.
pub const INT_CAP: usize = (PAYLOAD - INT_HDR) / INT_ENTRY;

const NO_NEXT: u64 = u64::MAX;

/// The NH-Index first-level key: `(label, degree, neighbor connection)`,
/// compared lexicographically — so all entries for one label are
/// contiguous, ordered by degree then neighbor connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompositeKey {
    /// Effective node label (group label under §IV-E).
    pub label: u32,
    /// Node degree.
    pub degree: u32,
    /// Neighbor connection (edges among neighbors).
    pub nb_connection: u32,
}

impl CompositeKey {
    /// Builds a key.
    pub fn new(label: u32, degree: u32, nb_connection: u32) -> Self {
        CompositeKey {
            label,
            degree,
            nb_connection,
        }
    }

    /// Smallest possible key.
    pub const MIN: CompositeKey = CompositeKey {
        label: 0,
        degree: 0,
        nb_connection: 0,
    };

    /// Largest possible key.
    pub const MAX: CompositeKey = CompositeKey {
        label: u32::MAX,
        degree: u32::MAX,
        nb_connection: u32::MAX,
    };

    fn write(self, buf: &mut [u8]) {
        buf[0..4].copy_from_slice(&self.label.to_le_bytes());
        buf[4..8].copy_from_slice(&self.degree.to_le_bytes());
        buf[8..12].copy_from_slice(&self.nb_connection.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Self {
        CompositeKey {
            label: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            degree: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            nb_connection: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
        }
    }
}

enum Node {
    Leaf {
        entries: Vec<(CompositeKey, u64)>,
        next: Option<PageId>,
    },
    Internal {
        leftmost: PageId,
        entries: Vec<(CompositeKey, PageId)>,
    },
}

impl Node {
    fn decode(payload: &[u8]) -> Result<Node> {
        let count = u16::from_le_bytes(payload[2..4].try_into().unwrap()) as usize;
        match payload[0] {
            0 => {
                if count > LEAF_CAP {
                    return Err(StorageError::TreeInvariant("leaf count over capacity"));
                }
                let next_raw = u64::from_le_bytes(payload[8..16].try_into().unwrap());
                let next = (next_raw != NO_NEXT).then_some(PageId(next_raw));
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let off = HDR + i * LEAF_ENTRY;
                    let key = CompositeKey::read(&payload[off..off + 12]);
                    let val = u64::from_le_bytes(payload[off + 12..off + 20].try_into().unwrap());
                    entries.push((key, val));
                }
                Ok(Node::Leaf { entries, next })
            }
            1 => {
                if count > INT_CAP {
                    return Err(StorageError::TreeInvariant("internal count over capacity"));
                }
                let leftmost = PageId(u64::from_le_bytes(
                    payload[HDR..HDR + 8].try_into().unwrap(),
                ));
                let mut entries = Vec::with_capacity(count);
                for i in 0..count {
                    let off = INT_HDR + i * INT_ENTRY;
                    let key = CompositeKey::read(&payload[off..off + 12]);
                    let child = PageId(u64::from_le_bytes(
                        payload[off + 12..off + 20].try_into().unwrap(),
                    ));
                    entries.push((key, child));
                }
                Ok(Node::Internal { leftmost, entries })
            }
            _ => Err(StorageError::TreeInvariant("unknown node type byte")),
        }
    }

    fn encode(&self, payload: &mut [u8]) {
        payload[..HDR].fill(0);
        match self {
            Node::Leaf { entries, next } => {
                payload[0] = 0;
                payload[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                let next_raw = next.map_or(NO_NEXT, |p| p.0);
                payload[8..16].copy_from_slice(&next_raw.to_le_bytes());
                for (i, (k, v)) in entries.iter().enumerate() {
                    let off = HDR + i * LEAF_ENTRY;
                    k.write(&mut payload[off..off + 12]);
                    payload[off + 12..off + 20].copy_from_slice(&v.to_le_bytes());
                }
            }
            Node::Internal { leftmost, entries } => {
                payload[0] = 1;
                payload[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                payload[HDR..HDR + 8].copy_from_slice(&leftmost.0.to_le_bytes());
                for (i, (k, c)) in entries.iter().enumerate() {
                    let off = INT_HDR + i * INT_ENTRY;
                    k.write(&mut payload[off..off + 12]);
                    payload[off + 12..off + 20].copy_from_slice(&c.0.to_le_bytes());
                }
            }
        }
    }
}

/// A disk B+-tree.
///
/// ```
/// use std::sync::Arc;
/// use tale_storage::{BTree, BufferPool, CompositeKey, DiskManager};
///
/// let dir = std::env::temp_dir().join(format!("bt-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let dm = Arc::new(DiskManager::create(&dir.join("t.db")).unwrap());
/// let pool = Arc::new(BufferPool::new(dm, 64));
/// let mut tree = BTree::create(pool).unwrap();
/// tree.insert(CompositeKey::new(1, 4, 2), 99).unwrap();
/// assert_eq!(tree.get(CompositeKey::new(1, 4, 2)).unwrap(), Some(99));
/// // range scan: every entry for label 1 with degree >= 4
/// let hits = tree
///     .range(CompositeKey::new(1, 4, 0), CompositeKey::new(1, u32::MAX, u32::MAX))
///     .unwrap();
/// assert_eq!(hits.len(), 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    height: u32,
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let (root, mut guard) = pool.new_page()?;
        Node::Leaf {
            entries: Vec::new(),
            next: None,
        }
        .encode(guard.page_mut().payload_mut());
        drop(guard);
        Ok(BTree {
            pool,
            root,
            height: 1,
        })
    }

    /// Reopens a tree whose root/height were persisted by the caller.
    pub fn open(pool: Arc<BufferPool>, root: PageId, height: u32) -> Self {
        BTree { pool, root, height }
    }

    /// Root page id — persist this (with [`BTree::height`]) to reopen.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    fn read_node(&self, id: PageId) -> Result<Node> {
        let guard = self.pool.fetch(id)?;
        Node::decode(guard.page().payload())
    }

    fn write_node(&self, id: PageId, node: &Node) -> Result<()> {
        let mut guard = self.pool.fetch_mut(id)?;
        node.encode(guard.page_mut().payload_mut());
        Ok(())
    }

    /// Exact lookup.
    pub fn get(&self, key: CompositeKey) -> Result<Option<u64>> {
        let mut id = self.root;
        loop {
            match self.read_node(id)? {
                Node::Internal { leftmost, entries } => {
                    id = Self::child_for(&entries, leftmost, key);
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by_key(&key, |&(k, _)| k)
                        .ok()
                        .map(|i| entries[i].1));
                }
            }
        }
    }

    fn child_for(
        entries: &[(CompositeKey, PageId)],
        leftmost: PageId,
        key: CompositeKey,
    ) -> PageId {
        // descend into the last child whose separator <= key
        let idx = entries.partition_point(|&(k, _)| k <= key);
        if idx == 0 {
            leftmost
        } else {
            entries[idx - 1].1
        }
    }

    /// Inserts `key → value`, replacing any existing value for `key`.
    pub fn insert(&mut self, key: CompositeKey, value: u64) -> Result<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, key, value)? {
            // root split: grow a new root
            let (new_root, mut guard) = self.pool.new_page()?;
            Node::Internal {
                leftmost: self.root,
                entries: vec![(sep, right)],
            }
            .encode(guard.page_mut().payload_mut());
            drop(guard);
            self.root = new_root;
            self.height += 1;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        id: PageId,
        key: CompositeKey,
        value: u64,
    ) -> Result<Option<(CompositeKey, PageId)>> {
        match self.read_node(id)? {
            Node::Leaf { mut entries, next } => {
                match entries.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(i) => entries[i].1 = value,
                    Err(i) => entries.insert(i, (key, value)),
                }
                if entries.len() <= LEAF_CAP {
                    self.write_node(id, &Node::Leaf { entries, next })?;
                    return Ok(None);
                }
                // split
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let (right_id, mut rg) = self.pool.new_page()?;
                Node::Leaf {
                    entries: right_entries,
                    next,
                }
                .encode(rg.page_mut().payload_mut());
                drop(rg);
                self.write_node(
                    id,
                    &Node::Leaf {
                        entries,
                        next: Some(right_id),
                    },
                )?;
                Ok(Some((sep, right_id)))
            }
            Node::Internal {
                leftmost,
                mut entries,
            } => {
                let child = Self::child_for(&entries, leftmost, key);
                let Some((sep, right)) = self.insert_rec(child, key, value)? else {
                    return Ok(None);
                };
                let idx = entries.partition_point(|&(k, _)| k <= sep);
                entries.insert(idx, (sep, right));
                if entries.len() <= INT_CAP {
                    self.write_node(id, &Node::Internal { leftmost, entries })?;
                    return Ok(None);
                }
                // split internal: middle key moves up
                let mid = entries.len() / 2;
                let mut right_entries = entries.split_off(mid);
                let (up_key, right_leftmost) = right_entries.remove(0);
                let (right_id, mut rg) = self.pool.new_page()?;
                Node::Internal {
                    leftmost: right_leftmost,
                    entries: right_entries,
                }
                .encode(rg.page_mut().payload_mut());
                drop(rg);
                self.write_node(id, &Node::Internal { leftmost, entries })?;
                Ok(Some((up_key, right_id)))
            }
        }
    }

    /// Collects all `(key, value)` pairs with `lo <= key <= hi`, in key
    /// order. Uses leaf sibling pointers, so the scan is sequential.
    pub fn range(&self, lo: CompositeKey, hi: CompositeKey) -> Result<Vec<(CompositeKey, u64)>> {
        let mut out = Vec::new();
        self.range_with(lo, hi, |k, v| {
            out.push((k, v));
            true
        })?;
        Ok(out)
    }

    /// Streaming range scan; `f` returns `false` to stop early.
    pub fn range_with(
        &self,
        lo: CompositeKey,
        hi: CompositeKey,
        mut f: impl FnMut(CompositeKey, u64) -> bool,
    ) -> Result<()> {
        if lo > hi {
            return Ok(());
        }
        // descend to the leaf that may contain lo
        let mut id = self.root;
        loop {
            match self.read_node(id)? {
                Node::Internal { leftmost, entries } => {
                    id = Self::child_for(&entries, leftmost, lo);
                }
                Node::Leaf { entries, next } => {
                    // One-ahead readahead down the leaf chain: queue the
                    // sibling while this leaf's entries are processed (a
                    // no-op without an attached prefetcher).
                    if let Some(nid) = next {
                        self.pool.prefetch(&[nid]);
                    }
                    let start = entries.partition_point(|&(k, _)| k < lo);
                    for &(k, v) in &entries[start..] {
                        if k > hi {
                            return Ok(());
                        }
                        if !f(k, v) {
                            return Ok(());
                        }
                    }
                    let mut cursor = next;
                    while let Some(nid) = cursor {
                        match self.read_node(nid)? {
                            Node::Leaf { entries, next } => {
                                if let Some(nid) = next {
                                    self.pool.prefetch(&[nid]);
                                }
                                for &(k, v) in &entries {
                                    if k > hi {
                                        return Ok(());
                                    }
                                    if !f(k, v) {
                                        return Ok(());
                                    }
                                }
                                cursor = next;
                            }
                            Node::Internal { .. } => {
                                return Err(StorageError::TreeInvariant(
                                    "leaf next pointer reached an internal node",
                                ))
                            }
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Total entries (walks the leaf chain).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        self.range_with(CompositeKey::MIN, CompositeKey::MAX, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        let mut any = false;
        self.range_with(CompositeKey::MIN, CompositeKey::MAX, |_, _| {
            any = true;
            false
        })?;
        Ok(!any)
    }

    /// Bulk-loads a tree from `pairs`, which must be sorted by key with no
    /// duplicates. Leaves are packed full (read-optimized); internal levels
    /// are built bottom-up. Much faster than repeated [`BTree::insert`].
    pub fn bulk_load(pool: Arc<BufferPool>, pairs: &[(CompositeKey, u64)]) -> Result<Self> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted unique input"
        );
        if pairs.is_empty() {
            return Self::create(pool);
        }
        // level 0: leaves
        let mut level: Vec<(CompositeKey, PageId)> = Vec::new();
        let chunks: Vec<&[(CompositeKey, u64)]> = pairs.chunks(LEAF_CAP).collect();
        let mut ids: Vec<PageId> = Vec::with_capacity(chunks.len());
        for _ in 0..chunks.len() {
            let (id, guard) = pool.new_page()?;
            drop(guard);
            ids.push(id);
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let next = ids.get(i + 1).copied();
            let node = Node::Leaf {
                entries: chunk.to_vec(),
                next,
            };
            let mut guard = pool.fetch_mut(ids[i])?;
            node.encode(guard.page_mut().payload_mut());
            level.push((chunk[0].0, ids[i]));
        }
        // upper levels
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for group in level.chunks(INT_CAP + 1) {
                let (id, mut guard) = pool.new_page()?;
                let node = Node::Internal {
                    leftmost: group[0].1,
                    entries: group[1..].to_vec(),
                };
                node.encode(guard.page_mut().payload_mut());
                drop(guard);
                next_level.push((group[0].0, id));
            }
            level = next_level;
        }
        Ok(BTree {
            pool,
            root: level[0].1,
            height,
        })
    }

    /// Walks the whole tree checking structural invariants: node types
    /// match their level, per-node capacity and strict key ordering hold,
    /// child subtrees respect their separator bounds, every leaf sits at
    /// `height`, and the leaf chain enumerates exactly the tree's entries
    /// in strictly ascending order. Reads go through the pool, so page
    /// checksums are verified along the way. Returns a summary; any
    /// violation surfaces as an error.
    pub fn verify(&self) -> Result<TreeCheck> {
        let mut check = TreeCheck {
            pages: 0,
            entries: 0,
            height: self.height,
        };
        let mut leftmost_leaf = None;
        self.verify_node(self.root, 1, None, None, &mut check, &mut leftmost_leaf)?;
        // leaf-chain pass: strictly ascending keys, entry count consistent
        // with the recursive walk
        let mut chain_entries: u64 = 0;
        let mut prev: Option<CompositeKey> = None;
        let mut at = leftmost_leaf;
        while let Some(id) = at {
            match self.read_node(id)? {
                Node::Leaf { entries, next } => {
                    for (k, _) in &entries {
                        if let Some(p) = prev {
                            if *k <= p {
                                return Err(StorageError::TreeInvariant(
                                    "leaf chain keys not strictly ascending",
                                ));
                            }
                        }
                        prev = Some(*k);
                    }
                    chain_entries += entries.len() as u64;
                    at = next;
                }
                Node::Internal { .. } => {
                    return Err(StorageError::TreeInvariant(
                        "leaf next pointer reached an internal node",
                    ));
                }
            }
        }
        if chain_entries != check.entries {
            return Err(StorageError::TreeInvariant(
                "leaf chain disagrees with tree walk on entry count",
            ));
        }
        Ok(check)
    }

    fn verify_node(
        &self,
        id: PageId,
        depth: u32,
        lo: Option<CompositeKey>,
        hi: Option<CompositeKey>,
        check: &mut TreeCheck,
        leftmost_leaf: &mut Option<PageId>,
    ) -> Result<()> {
        if depth > self.height {
            return Err(StorageError::TreeInvariant("node below leaf level"));
        }
        check.pages += 1;
        let in_bounds = |k: CompositeKey| !lo.is_some_and(|l| k < l) && !hi.is_some_and(|h| k >= h);
        match self.read_node(id)? {
            Node::Leaf { entries, .. } => {
                if depth != self.height {
                    return Err(StorageError::TreeInvariant("leaf above leaf level"));
                }
                if leftmost_leaf.is_none() {
                    *leftmost_leaf = Some(id);
                }
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(StorageError::TreeInvariant("leaf keys not ascending"));
                    }
                }
                if entries.iter().any(|(k, _)| !in_bounds(*k)) {
                    return Err(StorageError::TreeInvariant(
                        "leaf key outside parent bounds",
                    ));
                }
                check.entries += entries.len() as u64;
            }
            Node::Internal { leftmost, entries } => {
                if depth == self.height {
                    return Err(StorageError::TreeInvariant("internal node at leaf level"));
                }
                if entries.is_empty() {
                    return Err(StorageError::TreeInvariant(
                        "internal node with no separator",
                    ));
                }
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(StorageError::TreeInvariant("separators not ascending"));
                    }
                }
                if entries.iter().any(|(k, _)| !in_bounds(*k)) {
                    return Err(StorageError::TreeInvariant(
                        "separator outside parent bounds",
                    ));
                }
                self.verify_node(
                    leftmost,
                    depth + 1,
                    lo,
                    Some(entries[0].0),
                    check,
                    leftmost_leaf,
                )?;
                for (i, (k, child)) in entries.iter().enumerate() {
                    let child_hi = entries.get(i + 1).map(|(nk, _)| *nk).or(hi);
                    self.verify_node(*child, depth + 1, Some(*k), child_hi, check, leftmost_leaf)?;
                }
            }
        }
        Ok(())
    }
}

/// Summary returned by [`BTree::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeCheck {
    /// Pages visited in the recursive walk (the whole tree).
    pub pages: u64,
    /// Entries counted in the recursive walk (== leaf-chain count).
    pub entries: u64,
    /// Tree height as recorded by the handle.
    pub height: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::DiskManager;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn make_pool(frames: usize) -> (tempfile::TempDir, Arc<BufferPool>) {
        let d = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&d.path().join("bt.db")).unwrap());
        (d, Arc::new(BufferPool::new(dm, frames)))
    }

    fn key(i: u32) -> CompositeKey {
        CompositeKey::new(i / 100, (i / 10) % 10, i % 10)
    }

    #[test]
    fn verify_accepts_built_trees_and_counts_entries() {
        let (_d, pool) = make_pool(64);
        let pairs: Vec<(CompositeKey, u64)> = (0..5000u32).map(|i| (key(i), i as u64)).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        sorted.dedup_by_key(|p| p.0);
        let t = BTree::bulk_load(Arc::clone(&pool), &sorted).unwrap();
        let c = t.verify().unwrap();
        assert_eq!(c.entries as usize, sorted.len());
        assert!(c.pages > 1);
        assert_eq!(c.height, t.height());

        // verify also holds for insert-built trees
        let (_d2, pool2) = make_pool(64);
        let mut t2 = BTree::create(pool2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut shuffled = sorted.clone();
        shuffled.shuffle(&mut rng);
        for (k, v) in &shuffled {
            t2.insert(*k, *v).unwrap();
        }
        let c2 = t2.verify().unwrap();
        assert_eq!(c2.entries as usize, sorted.len());
    }

    #[test]
    fn verify_rejects_wrong_height() {
        let (_d, pool) = make_pool(64);
        let sorted: Vec<(CompositeKey, u64)> = (0..5000u32)
            .map(|i| (CompositeKey::new(i, 0, 0), i as u64))
            .collect();
        let t = BTree::bulk_load(Arc::clone(&pool), &sorted).unwrap();
        assert!(t.height() > 1);
        // a handle opened with a bogus height must not silently verify
        let t_bad = BTree::open(pool, t.root(), t.height() - 1);
        assert!(t_bad.verify().is_err());
    }

    #[test]
    fn empty_tree_behaves() {
        let (_d, pool) = make_pool(16);
        let t = BTree::create(pool).unwrap();
        assert!(t.is_empty().unwrap());
        assert_eq!(t.get(key(5)).unwrap(), None);
        assert!(t
            .range(CompositeKey::MIN, CompositeKey::MAX)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn insert_get_small() {
        let (_d, pool) = make_pool(16);
        let mut t = BTree::create(pool).unwrap();
        for i in 0..100u32 {
            t.insert(key(i), i as u64).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(t.get(key(i)).unwrap(), Some(i as u64), "key {i}");
        }
        assert_eq!(t.get(key(100)).unwrap(), None);
        assert_eq!(t.len().unwrap(), 100);
    }

    #[test]
    fn insert_replaces_existing() {
        let (_d, pool) = make_pool(16);
        let mut t = BTree::create(pool).unwrap();
        t.insert(key(1), 10).unwrap();
        t.insert(key(1), 20).unwrap();
        assert_eq!(t.get(key(1)).unwrap(), Some(20));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn insert_many_splits_random_order() {
        let (_d, pool) = make_pool(64);
        let mut t = BTree::create(pool).unwrap();
        let n = 5000u32;
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(1));
        for &i in &order {
            t.insert(key(i), i as u64 * 3).unwrap();
        }
        assert!(t.height() > 1, "tree should have split");
        for i in (0..n).step_by(37) {
            assert_eq!(t.get(key(i)).unwrap(), Some(i as u64 * 3));
        }
        assert_eq!(t.len().unwrap(), n as usize);
        // range returns sorted keys
        let all = t.range(CompositeKey::MIN, CompositeKey::MAX).unwrap();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_scan_bounds() {
        let (_d, pool) = make_pool(32);
        let mut t = BTree::create(pool).unwrap();
        for label in 0..5u32 {
            for deg in 0..20u32 {
                t.insert(
                    CompositeKey::new(label, deg, deg / 2),
                    (label * 100 + deg) as u64,
                )
                .unwrap();
            }
        }
        // all entries for label 2 with degree >= 15
        let lo = CompositeKey::new(2, 15, 0);
        let hi = CompositeKey::new(2, u32::MAX, u32::MAX);
        let got = t.range(lo, hi).unwrap();
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|(k, _)| k.label == 2 && k.degree >= 15));
        // inverted bounds: empty
        assert!(t.range(hi, lo).unwrap().is_empty());
    }

    #[test]
    fn range_with_early_stop() {
        let (_d, pool) = make_pool(32);
        let mut t = BTree::create(pool).unwrap();
        for i in 0..1000u32 {
            t.insert(key(i), i as u64).unwrap();
        }
        let mut seen = 0;
        t.range_with(CompositeKey::MIN, CompositeKey::MAX, |_, _| {
            seen += 1;
            seen < 10
        })
        .unwrap();
        assert_eq!(seen, 10);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let (_d, pool) = make_pool(64);
        let pairs: Vec<(CompositeKey, u64)> = (0..3000u32).map(|i| (key(i), i as u64)).collect();
        let t = BTree::bulk_load(Arc::clone(&pool), &pairs).unwrap();
        assert_eq!(t.len().unwrap(), 3000);
        for i in (0..3000u32).step_by(61) {
            assert_eq!(t.get(key(i)).unwrap(), Some(i as u64));
        }
        let got = t.range(key(500), key(520)).unwrap();
        assert_eq!(got.len(), 21);
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let (_d, pool) = make_pool(8);
        let t = BTree::bulk_load(Arc::clone(&pool), &[]).unwrap();
        assert!(t.is_empty().unwrap());
        let t = BTree::bulk_load(pool, &[(key(3), 9)]).unwrap();
        assert_eq!(t.get(key(3)).unwrap(), Some(9));
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn insert_after_bulk_load() {
        let (_d, pool) = make_pool(64);
        let pairs: Vec<(CompositeKey, u64)> =
            (0..1000u32).map(|i| (key(i * 2), i as u64)).collect();
        let mut t = BTree::bulk_load(pool, &pairs).unwrap();
        for i in 0..1000u32 {
            t.insert(key(i * 2 + 1), 7777 + i as u64).unwrap();
        }
        assert_eq!(t.len().unwrap(), 2000);
        assert_eq!(t.get(key(3)).unwrap(), Some(7778));
    }

    #[test]
    fn reopen_via_root_pointer() {
        let d = tempfile::tempdir().unwrap();
        let path = d.path().join("bt.db");
        let (root, height);
        {
            let dm = Arc::new(DiskManager::create(&path).unwrap());
            let pool = Arc::new(BufferPool::new(dm, 32));
            let mut t = BTree::create(Arc::clone(&pool)).unwrap();
            for i in 0..2000u32 {
                t.insert(key(i), i as u64).unwrap();
            }
            root = t.root();
            height = t.height();
            pool.flush_all().unwrap();
        }
        let dm = Arc::new(DiskManager::open(&path).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 32));
        let t = BTree::open(pool, root, height);
        assert_eq!(t.get(key(1234)).unwrap(), Some(1234));
        assert_eq!(t.len().unwrap(), 2000);
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // 4 frames force constant eviction during splits: exercises
        // write-back correctness under memory pressure.
        let (_d, pool) = make_pool(4);
        let mut t = BTree::create(pool).unwrap();
        for i in 0..2000u32 {
            t.insert(key(i), i as u64).unwrap();
        }
        for i in (0..2000u32).step_by(97) {
            assert_eq!(t.get(key(i)).unwrap(), Some(i as u64));
        }
    }
}
