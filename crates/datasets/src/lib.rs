//! Synthetic equivalents of the paper's evaluation datasets.
//!
//! The paper evaluates on three licensed biological resources we cannot
//! ship: BIND protein-interaction networks (Table I–III, Fig. 6), ASTRAL
//! protein-domain contact graphs (Fig. 5, 7–9) and KEGG pathways (the
//! effectiveness metrics of Table II). Each generator here reproduces the
//! *published statistics* and the *structural properties the algorithms
//! exercise* — power-law PINs with ortholog groups and conserved modules,
//! locally clustered 20-label contact graphs organized into families —
//! so every experiment runs the same code paths on data of the same shape
//! and scale. See DESIGN.md §4 for the substitution rationale.
//!
//! * [`pin`] — BIND-like PINs: cross-species families derived from a
//!   common ancestor network, with planted conserved pathways.
//! * [`contact`] — ASTRAL-like contact graphs in structural families.
//! * [`kegg`] — KEGG-like directed metabolic pathways in homologous
//!   families (the third dataset §VI-A mentions and omits for space).
//! * [`metrics`] — KEGG hit / coverage (Table II) and precision/recall
//!   (Fig. 5) evaluation.

pub mod contact;
pub mod kegg;
pub mod metrics;
pub mod pin;

pub use contact::{ContactDataset, ContactSpec};
pub use kegg::{KeggDataset, KeggSpec};
pub use metrics::{kegg_metrics, precision_recall_curve, KeggReport};
pub use pin::{PinCorpus, PinSpec, SpeciesPins};
