//! ASTRAL-like protein-domain contact graphs (§VI-A).
//!
//! The paper converts domain 3D structures to contact graphs with the 7Å
//! threshold: "nodes represent amino acids (… 20 distinct node labels) and
//! edges indicate that the corresponding amino acids physically interact".
//! ASTRAL 1.71 has 75 626 domains in 7275 families; the Fig. 5 subset is
//! 1300 families × 10 domains with average 186.6 nodes and 734.2 edges.
//!
//! Our generator reproduces that shape: a *family seed* is a backbone
//! chain with distance-decaying contacts ([`tale_graph::generate::contact_graph`]);
//! family members are mild mutations of the seed, so intra-family
//! structural similarity far exceeds inter-family similarity — the
//! property Fig. 5's precision/recall evaluation measures.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale_graph::generate::{contact_graph, mutate, MutationRates};
use tale_graph::{GraphDb, GraphId};

/// Number of amino-acid labels.
pub const AMINO_ACIDS: u32 = 20;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct ContactSpec {
    /// Number of structural families.
    pub families: usize,
    /// Domains per family.
    pub domains_per_family: usize,
    /// Mean node count (paper subset: 186.6).
    pub mean_nodes: f64,
    /// Mean edge count (paper subset: 734.2).
    pub mean_edges: f64,
}

impl Default for ContactSpec {
    fn default() -> Self {
        ContactSpec {
            families: 1300,
            domains_per_family: 10,
            mean_nodes: 186.6,
            mean_edges: 734.2,
        }
    }
}

impl ContactSpec {
    /// A scaled-down spec for quick experiments: `scale` shrinks the
    /// family count; graph sizes are kept (they define the workload).
    pub fn scaled(self, scale: f64) -> ContactSpec {
        ContactSpec {
            families: ((self.families as f64 * scale).round() as usize).max(1),
            ..self
        }
    }
}

/// A generated dataset: the graph database plus family ground truth.
pub struct ContactDataset {
    /// One graph per domain; labels are the 20 amino acids ("aa00".."aa19").
    pub db: GraphDb,
    /// `family_of[graph.idx()]` = family id.
    pub family_of: Vec<u32>,
}

impl ContactDataset {
    /// Generates the dataset.
    pub fn generate(seed: u64, spec: &ContactSpec) -> ContactDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = GraphDb::new();
        for a in 0..AMINO_ACIDS {
            db.intern_node_label(&format!("aa{a:02}"));
        }
        let mut family_of = Vec::with_capacity(spec.families * spec.domains_per_family);
        // Member divergence tuned so that intra-family similarity clearly
        // exceeds inter-family similarity yet retrieval is not trivial —
        // Fig. 5's precision decays once recall passes the easy members.
        let rates = MutationRates {
            node_delete: 0.12,
            node_insert: 0.12,
            edge_delete: 0.18,
            edge_insert: 0.18,
            relabel: 0.10,
        };
        for fam in 0..spec.families {
            // family sizes vary ±30% around the means
            let jitter = 0.7 + rng.gen_range(0.0..0.6);
            let n = ((spec.mean_nodes * jitter).round() as usize).max(20);
            let e = ((spec.mean_edges * jitter).round() as usize).max(n);
            let seed_graph = contact_graph(&mut rng, n, e, AMINO_ACIDS);
            for d in 0..spec.domains_per_family {
                let member = if d == 0 {
                    seed_graph.clone()
                } else {
                    mutate(&mut rng, &seed_graph, &rates, AMINO_ACIDS).0
                };
                db.insert(format!("d{fam:04}.{d}"), member);
                family_of.push(fam as u32);
            }
        }
        ContactDataset { db, family_of }
    }

    /// Family of a graph.
    pub fn family(&self, g: GraphId) -> u32 {
        self.family_of[g.idx()]
    }

    /// Picks `k` query graphs, one per distinct family, spread over the
    /// dataset (deterministic for a given seed).
    pub fn pick_queries(&self, seed: u64, k: usize) -> Vec<GraphId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut fams_seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(k);
        let n = self.db.len();
        let mut guard = 0;
        while out.len() < k && guard < n * 4 {
            guard += 1;
            let g = GraphId(rng.gen_range(0..n as u32));
            if fams_seen.insert(self.family(g)) {
                out.push(g);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ContactSpec {
        ContactSpec {
            families: 12,
            domains_per_family: 5,
            mean_nodes: 60.0,
            mean_edges: 220.0,
        }
    }

    #[test]
    fn sizes_and_labels() {
        let ds = ContactDataset::generate(7, &small_spec());
        assert_eq!(ds.db.len(), 60);
        assert_eq!(ds.family_of.len(), 60);
        assert_eq!(ds.db.node_vocab().len(), AMINO_ACIDS as usize);
        let (mut nodes, mut edges) = (0usize, 0usize);
        for (_, _, g) in ds.db.iter() {
            nodes += g.node_count();
            edges += g.edge_count();
            for n in g.nodes() {
                assert!(g.label(n).0 < AMINO_ACIDS);
            }
        }
        let avg_n = nodes as f64 / 60.0;
        assert!((40.0..=80.0).contains(&avg_n), "avg nodes {avg_n}");
        assert!(edges > nodes, "contact graphs should be dense-ish");
    }

    #[test]
    fn families_are_complete() {
        let ds = ContactDataset::generate(8, &small_spec());
        for fam in 0..12u32 {
            let members = ds.family_of.iter().filter(|&&f| f == fam).count();
            assert_eq!(members, 5);
        }
    }

    /// Greedy label-only matcher: enough signal to compare structural
    /// similarity between graphs without depending on the baselines crate.
    fn greedy_sim(q: &tale_graph::Graph, t: &tale_graph::Graph) -> f64 {
        use std::collections::HashMap;
        use tale_graph::NodeId;
        let mut tq = vec![false; t.node_count()];
        let mut map: Vec<Option<NodeId>> = vec![None; q.node_count()];
        let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for n in t.nodes() {
            by_label.entry(t.label(n).0).or_default().push(n);
        }
        let mut matched = 0;
        for n in q.nodes() {
            if let Some(c) = by_label.get(&q.label(n).0) {
                if let Some(&tn) = c.iter().find(|x| !tq[x.idx()]) {
                    tq[tn.idx()] = true;
                    map[n.idx()] = Some(tn);
                    matched += 1;
                }
            }
        }
        let me = q
            .edges()
            .filter(|&(u, v, _)| {
                matches!((map[u.idx()], map[v.idx()]), (Some(a), Some(b)) if t.has_edge(a, b))
            })
            .count();
        2.0 * (matched + me) as f64
            / (q.node_count() + q.edge_count() + t.node_count() + t.edge_count()) as f64
    }

    #[test]
    fn intra_family_more_similar_than_inter() {
        let ds = ContactDataset::generate(9, &small_spec());
        let base = ds.db.graph(GraphId(0));
        let sibling = ds.db.graph(GraphId(1)); // same family (block of 5)
        let stranger = ds.db.graph(GraphId(30)); // family 6
        assert_eq!(ds.family(GraphId(0)), ds.family(GraphId(1)));
        assert_ne!(ds.family(GraphId(0)), ds.family(GraphId(30)));
        let s_sib = greedy_sim(base, sibling);
        let s_str = greedy_sim(base, stranger);
        assert!(s_sib > s_str, "sibling {s_sib:.3} vs stranger {s_str:.3}");
    }

    #[test]
    fn pick_queries_distinct_families() {
        let ds = ContactDataset::generate(10, &small_spec());
        let qs = ds.pick_queries(1, 8);
        assert_eq!(qs.len(), 8);
        let fams: std::collections::HashSet<u32> = qs.iter().map(|&g| ds.family(g)).collect();
        assert_eq!(fams.len(), 8);
        // deterministic
        assert_eq!(qs, ds.pick_queries(1, 8));
    }

    #[test]
    fn scaled_spec() {
        let s = ContactSpec::default().scaled(0.01);
        assert_eq!(s.families, 13);
        assert_eq!(s.domains_per_family, 10);
    }
}
