//! Evaluation metrics from the paper.
//!
//! * **KEGG hit / coverage** (Table II, footnotes 1–2): "The number of
//!   KEGGs hit is the number of pathways … aligned between 2 species. A
//!   KEGG pathway is considered as a hit if at least 3 proteins in the
//!   pathway are aligned to their counterparts in the pathway of the
//!   other species. KEGG coverage is the fraction of proteins aligned
//!   within a pathway."
//! * **Precision / recall** (Fig. 5): graded result lists against family
//!   ground truth, averaged over queries.

use crate::pin::Pathway;
use std::collections::HashSet;
use tale_graph::NodeId;

/// Table II row: pathway-level effectiveness of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeggReport {
    /// Pathways with ≥ 3 aligned counterpart pairs.
    pub hits: usize,
    /// Pathways evaluated (present with ≥ 3 members in both species).
    pub evaluated: usize,
    /// Mean fraction of pathway proteins aligned to a counterpart in the
    /// same pathway (averaged over evaluated pathways).
    pub avg_coverage: f64,
}

/// Scores a pairwise alignment (`pairs`: nodes of `species_a` mapped to
/// nodes of `species_b`) against the planted pathways.
///
/// A pair counts for a pathway when the `species_a` endpoint is a member
/// and its image is a member of the same pathway in `species_b` — the
/// paper's "aligned to their counterparts in the pathway of the other
/// species".
pub fn kegg_metrics(
    pathways: &[Pathway],
    species_a: &str,
    species_b: &str,
    pairs: &[(NodeId, NodeId)],
) -> KeggReport {
    let mut hits = 0;
    let mut evaluated = 0;
    let mut coverage_sum = 0.0;
    for pw in pathways {
        let (Some(ma), Some(mb)) = (pw.members.get(species_a), pw.members.get(species_b)) else {
            continue;
        };
        if ma.len() < 3 || mb.len() < 3 {
            continue;
        }
        evaluated += 1;
        let a_set: HashSet<NodeId> = ma.iter().copied().collect();
        let b_set: HashSet<NodeId> = mb.iter().copied().collect();
        let aligned = pairs
            .iter()
            .filter(|(a, b)| a_set.contains(a) && b_set.contains(b))
            .count();
        if aligned >= 3 {
            hits += 1;
        }
        coverage_sum += aligned as f64 / ma.len() as f64;
    }
    KeggReport {
        hits,
        evaluated,
        avg_coverage: if evaluated == 0 {
            0.0
        } else {
            coverage_sum / evaluated as f64
        },
    }
}

/// One point on a Fig. 5-style ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Results returned so far (the sweep variable).
    pub k: usize,
    /// Mean precision at `k` over all queries.
    pub precision: f64,
    /// Mean recall at `k` over all queries.
    pub recall: f64,
}

/// Computes the mean precision/recall curve for ranked retrieval.
///
/// `results[q]` is query `q`'s ranked list of `(item, relevant)` flags;
/// `relevant_total[q]` is the ground-truth relevant count (e.g. family
/// size − 1). The curve sweeps `k = 1..=max_k`.
pub fn precision_recall_curve(
    results: &[Vec<bool>],
    relevant_total: &[usize],
    max_k: usize,
) -> Vec<PrPoint> {
    assert_eq!(results.len(), relevant_total.len());
    let nq = results.len().max(1);
    (1..=max_k)
        .map(|k| {
            let mut p_sum = 0.0;
            let mut r_sum = 0.0;
            for (ranked, &total) in results.iter().zip(relevant_total.iter()) {
                let upto = k.min(ranked.len());
                let rel = ranked[..upto].iter().filter(|&&r| r).count();
                if upto > 0 {
                    p_sum += rel as f64 / upto as f64;
                }
                if total > 0 {
                    r_sum += rel as f64 / total as f64;
                }
            }
            PrPoint {
                k,
                precision: p_sum / nq as f64,
                recall: r_sum / nq as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn pathway(name: &str, a: &[u32], b: &[u32]) -> Pathway {
        let mut members = HashMap::new();
        members.insert("a".to_owned(), a.iter().map(|&i| NodeId(i)).collect());
        members.insert("b".to_owned(), b.iter().map(|&i| NodeId(i)).collect());
        Pathway {
            name: name.to_owned(),
            groups: Vec::new(),
            members,
        }
    }

    #[test]
    fn kegg_hit_requires_three_counterparts() {
        let pws = vec![pathway("p", &[0, 1, 2, 3], &[10, 11, 12, 13])];
        // two aligned pairs: no hit
        let two = vec![(NodeId(0), NodeId(10)), (NodeId(1), NodeId(11))];
        let r = kegg_metrics(&pws, "a", "b", &two);
        assert_eq!(r.hits, 0);
        assert_eq!(r.evaluated, 1);
        assert!((r.avg_coverage - 0.5).abs() < 1e-12);
        // three aligned pairs: hit
        let three = vec![
            (NodeId(0), NodeId(10)),
            (NodeId(1), NodeId(11)),
            (NodeId(2), NodeId(12)),
        ];
        let r = kegg_metrics(&pws, "a", "b", &three);
        assert_eq!(r.hits, 1);
        assert!((r.avg_coverage - 0.75).abs() < 1e-12);
    }

    #[test]
    fn alignment_outside_pathway_does_not_count() {
        let pws = vec![pathway("p", &[0, 1, 2], &[10, 11, 12])];
        // aligned, but images are not pathway members in b
        let pairs = vec![
            (NodeId(0), NodeId(99)),
            (NodeId(1), NodeId(98)),
            (NodeId(2), NodeId(97)),
        ];
        let r = kegg_metrics(&pws, "a", "b", &pairs);
        assert_eq!(r.hits, 0);
        assert_eq!(r.avg_coverage, 0.0);
    }

    #[test]
    fn small_pathways_not_evaluated() {
        let pws = vec![pathway("tiny", &[0, 1], &[10, 11])];
        let r = kegg_metrics(&pws, "a", "b", &[(NodeId(0), NodeId(10))]);
        assert_eq!(r.evaluated, 0);
        assert_eq!(r.hits, 0);
        assert_eq!(r.avg_coverage, 0.0);
    }

    #[test]
    fn missing_species_skipped() {
        let mut pw = pathway("p", &[0, 1, 2], &[9, 8, 7]);
        pw.members.remove("b");
        let r = kegg_metrics(&[pw], "a", "b", &[]);
        assert_eq!(r.evaluated, 0);
    }

    #[test]
    fn pr_curve_perfect_ranking() {
        // 1 query, 3 relevant of 5 returned, relevant first
        let results = vec![vec![true, true, true, false, false]];
        let curve = precision_recall_curve(&results, &[3], 5);
        assert!((curve[0].precision - 1.0).abs() < 1e-12);
        assert!((curve[2].precision - 1.0).abs() < 1e-12);
        assert!((curve[2].recall - 1.0).abs() < 1e-12);
        assert!((curve[4].precision - 0.6).abs() < 1e-12);
        assert!((curve[4].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_averages_queries() {
        let results = vec![vec![true, false], vec![false, true]];
        let curve = precision_recall_curve(&results, &[1, 1], 2);
        assert!((curve[0].precision - 0.5).abs() < 1e-12);
        assert!((curve[0].recall - 0.5).abs() < 1e-12);
        assert!((curve[1].precision - 0.5).abs() < 1e-12);
        assert!((curve[1].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_short_result_lists() {
        // query returned only 1 result; k beyond list length reuses it
        let results = vec![vec![true]];
        let curve = precision_recall_curve(&results, &[2], 3);
        assert!((curve[2].precision - 1.0).abs() < 1e-12);
        assert!((curve[2].recall - 0.5).abs() < 1e-12);
    }
}
