//! BIND-like protein interaction networks (§VI-A, Table I).
//!
//! Real PINs are power-law graphs: a few hub proteins with many
//! interactions, a long tail of peripheral ones — the exact structure
//! TALE's importance-first matching exploits. Cross-species comparison
//! works through *ortholog groups* (§IV-E): proteins of different species
//! in the same group are allowed to match.
//!
//! Generation model: a **common ancestor network** is grown by
//! preferential attachment; each ancestor protein defines one ortholog
//! group. A species' PIN is a noisy subsample: a subset of ancestor
//! proteins (species-specific label names, group = ancestor id), the
//! induced interactions thinned by edge loss, plus spurious edges — the
//! paper's "noisy and incomplete" data (§I). *Pathways* are planted as
//! random-walk modules in the ancestor, with boosted edge retention so
//! they stay conserved across species, standing in for KEGG.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};
use tale_graph::generate::preferential_attachment;
use tale_graph::graph::{Graph, NodeId};
use tale_graph::{GraphDb, GraphId};

/// Target size of one species' PIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinSpec {
    /// Species name tag used in protein label names.
    pub name: &'static str,
    /// Node count (Table I).
    pub nodes: usize,
    /// Edge count (Table I).
    pub edges: usize,
}

/// The paper's Table I species.
pub const HUMAN: PinSpec = PinSpec {
    name: "human",
    nodes: 8470,
    edges: 11260,
};
/// Mouse PIN spec (Table I).
pub const MOUSE: PinSpec = PinSpec {
    name: "mouse",
    nodes: 2991,
    edges: 3347,
};
/// Rat PIN spec (Table I).
pub const RAT: PinSpec = PinSpec {
    name: "rat",
    nodes: 830,
    edges: 942,
};

/// A planted conserved module (the KEGG-pathway stand-in).
#[derive(Debug, Clone)]
pub struct Pathway {
    /// Pathway name.
    pub name: String,
    /// Ancestor proteins forming the module (ancestor node ids).
    pub groups: Vec<u32>,
    /// Member nodes per species graph: `members[species][i]` are the
    /// node ids of this pathway present in that species.
    pub members: HashMap<String, Vec<NodeId>>,
}

/// A family of species PINs over one ancestor network.
pub struct SpeciesPins {
    /// The database: one graph per species, ortholog-group map installed.
    pub db: GraphDb,
    /// Graph id per species name.
    pub species: HashMap<String, GraphId>,
    /// The planted pathways.
    pub pathways: Vec<Pathway>,
    /// Ortholog group of every node, per species graph.
    pub group_of_node: HashMap<String, Vec<u32>>,
}

impl SpeciesPins {
    /// Generates PINs for `specs` (largest first recommended) sharing one
    /// ancestor, with `n_pathways` planted modules of `pathway_size`
    /// groups each.
    pub fn generate(
        seed: u64,
        specs: &[PinSpec],
        n_pathways: usize,
        pathway_size: usize,
    ) -> SpeciesPins {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // The ancestor is larger than any species: real BIND networks for
        // different species cover substantially different protein sets, so
        // only part of a query PIN has counterparts in the target — which
        // is why the paper's matches are small fractions of the graphs.
        let ancestor_nodes = specs.iter().map(|s| s.nodes).max().unwrap_or(100) * 8 / 5;
        let ancestor_edges = specs.iter().map(|s| s.edges).max().unwrap_or(150) * 8 / 5;
        // Ancestor labels are irrelevant (groups are node ids); grow with
        // one label then relabel by node id below.
        let m = ((ancestor_edges as f64 / ancestor_nodes as f64).ceil() as usize).max(1) + 1;
        let factor = ancestor_edges as f64 / (ancestor_nodes as f64 * m as f64);
        let ancestor = preferential_attachment(&mut rng, ancestor_nodes, m, factor.min(1.0), 1);

        // Ortholog groups contain paralogs: ~PARALOG_FACTOR ancestor
        // proteins share each group. This ambiguity is what makes anchor
        // selection matter (§VI-D): a low-degree query node cannot tell
        // paralogous candidates apart, a hub's neighborhood can.
        let n_groups = (ancestor_nodes / PARALOG_FACTOR).max(1);
        let mut shuffled: Vec<u32> = (0..ancestor_nodes as u32).collect();
        shuffled.shuffle(&mut rng);
        let mut group_of_ancestor = vec![0u32; ancestor_nodes];
        for (rank, anc) in shuffled.into_iter().enumerate() {
            group_of_ancestor[anc as usize] = (rank % n_groups) as u32;
        }

        // plant pathways as random walks on the ancestor
        let mut pathways: Vec<Pathway> = Vec::with_capacity(n_pathways);
        let mut in_pathway: HashSet<u32> = HashSet::new();
        for p in 0..n_pathways {
            let mut walk: Vec<u32> = Vec::with_capacity(pathway_size);
            let mut cur = NodeId(rng.gen_range(0..ancestor.node_count() as u32));
            let mut seen = HashSet::new();
            for _ in 0..pathway_size * 4 {
                if walk.len() >= pathway_size {
                    break;
                }
                if seen.insert(cur) {
                    walk.push(cur.0);
                }
                let nbs: Vec<NodeId> = ancestor.neighbors(cur).collect();
                if nbs.is_empty() {
                    cur = NodeId(rng.gen_range(0..ancestor.node_count() as u32));
                } else {
                    cur = nbs[rng.gen_range(0..nbs.len())];
                }
            }
            in_pathway.extend(walk.iter().copied());
            pathways.push(Pathway {
                name: format!("pathway{p:03}"),
                groups: walk,
                members: HashMap::new(),
            });
        }

        // materialize each species
        let mut db = GraphDb::new();
        let mut species = HashMap::new();
        let mut group_of_node = HashMap::new();
        let mut group_pairs: Vec<(String, String)> = Vec::new();
        for spec in specs {
            let (g, kept, labels) = sample_species(
                &mut rng,
                &ancestor,
                spec,
                &in_pathway,
                &group_of_ancestor,
                &mut db,
            );
            for (label_name, group) in labels {
                group_pairs.push((label_name, format!("og{group}")));
            }
            let gid = db.insert(spec.name, g);
            species.insert(spec.name.to_owned(), gid);
            // record pathway membership (by ancestor protein, not group —
            // paralogs outside the module are not members)
            let mut node_of_ancestor: HashMap<u32, NodeId> = HashMap::new();
            for (node, ancestor_id, _) in kept.iter() {
                node_of_ancestor.insert(*ancestor_id, *node);
            }
            for pw in pathways.iter_mut() {
                let members: Vec<NodeId> = pw
                    .groups
                    .iter()
                    .filter_map(|a| node_of_ancestor.get(a).copied())
                    .collect();
                pw.members.insert(spec.name.to_owned(), members);
            }
            group_of_node.insert(spec.name.to_owned(), {
                let graph = db.graph(gid);
                let mut v = vec![0u32; graph.node_count()];
                for (node, _, group) in kept {
                    v[node.idx()] = group;
                }
                v
            });
        }
        db.set_group_by_names(&group_pairs)
            .expect("all species labels interned");
        SpeciesPins {
            db,
            species,
            pathways,
            group_of_node,
        }
    }

    /// Table I generation preset: human, mouse, rat with 60 pathways.
    pub fn mammals(seed: u64) -> SpeciesPins {
        Self::generate(seed, &[HUMAN, MOUSE, RAT], 60, 12)
    }
}

/// Expected paralogs per ortholog group in the ancestor.
const PARALOG_FACTOR: usize = 6;

/// Per-node assignment produced by [`sample_species`]: which species node
/// came from which ancestor protein, and its ortholog group.
type KeptNodes = Vec<(NodeId, u32, u32)>;
/// `(label name, group id)` vocabulary additions for the group map.
type LabelGroups = Vec<(String, u32)>;

/// Samples one species from the ancestor. Returns the graph, the
/// `(node, ancestor id, group)` assignment, and the `(label name, group)`
/// vocabulary additions.
fn sample_species(
    rng: &mut ChaCha8Rng,
    ancestor: &Graph,
    spec: &PinSpec,
    in_pathway: &HashSet<u32>,
    group_of_ancestor: &[u32],
    db: &mut GraphDb,
) -> (Graph, KeptNodes, LabelGroups) {
    let n_anc = ancestor.node_count();
    let keep_n = spec.nodes.min(n_anc);
    // Coverage of a real PIN is *patchy but locally dense*: studies map
    // whole complexes, so kept proteins cluster. Sampling: (1) pathway
    // nodes survive with probability 0.6 (conserved modules are studied
    // more, but coverage stays incomplete); (2) BFS patches around random
    // seeds fill most of the budget, keeping induced interactions dense;
    // (3) uniform leftovers model scattered single-protein studies.
    let mut taken = vec![false; n_anc];
    let mut selected: Vec<u32> = Vec::with_capacity(keep_n);
    let mut pathway_nodes: Vec<u32> = in_pathway.iter().copied().collect();
    pathway_nodes.sort_unstable();
    pathway_nodes.shuffle(rng);
    // Scattered pathway-node survivals take at most ~30% of the budget so
    // small networks still consist mostly of coherent patches.
    let pathway_cap = (keep_n * 3 / 10).max(1);
    for id in pathway_nodes {
        if selected.len() >= pathway_cap {
            break;
        }
        if rng.gen_bool(0.6) && !taken[id as usize] {
            taken[id as usize] = true;
            selected.push(id);
        }
    }
    let patch_budget = keep_n * 9 / 10;
    let mut guard = 0;
    while selected.len() < patch_budget && guard < keep_n * 4 {
        guard += 1;
        let start = rng.gen_range(0..n_anc as u32);
        if taken[start as usize] {
            continue;
        }
        let patch_size = rng.gen_range(20..=120).min(keep_n - selected.len());
        let mut queue = std::collections::VecDeque::from([NodeId(start)]);
        let mut grabbed = 0;
        while let Some(u) = queue.pop_front() {
            if grabbed >= patch_size {
                break;
            }
            if taken[u.idx()] {
                continue;
            }
            taken[u.idx()] = true;
            selected.push(u.0);
            grabbed += 1;
            for v in ancestor.neighbors(u) {
                if !taken[v.idx()] {
                    queue.push_back(v);
                }
            }
        }
    }
    while selected.len() < keep_n {
        let id = rng.gen_range(0..n_anc as u32);
        if !taken[id as usize] {
            taken[id as usize] = true;
            selected.push(id);
        }
    }
    let kept_ancestors = selected;
    let kept_set: HashMap<u32, usize> = kept_ancestors
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i))
        .collect();

    let mut g = Graph::new_undirected();
    let mut kept = Vec::with_capacity(keep_n);
    let mut labels = Vec::with_capacity(keep_n);
    for (i, &ancestor_id) in kept_ancestors.iter().enumerate() {
        let group = group_of_ancestor[ancestor_id as usize];
        let label_name = format!("{}:p{ancestor_id}", spec.name);
        let label = db.intern_node_label(&label_name);
        let node = g.add_node(label);
        debug_assert_eq!(node.idx(), i);
        kept.push((node, ancestor_id, group));
        labels.push((label_name, group));
    }
    // project ancestor edges with retention probability targeting the edge
    // budget; pathway-internal edges retained preferentially.
    let mut candidate_edges: Vec<(usize, usize, bool)> = Vec::new();
    for (u, v, _) in ancestor.edges() {
        if let (Some(&iu), Some(&iv)) = (kept_set.get(&u.0), kept_set.get(&v.0)) {
            let conserved = in_pathway.contains(&u.0) && in_pathway.contains(&v.0);
            candidate_edges.push((iu, iv, conserved));
        }
    }
    let target = spec.edges;
    // Conserved (pathway-internal) edges get a retention boost but are not
    // guaranteed; detection noise hits them too.
    candidate_edges.shuffle(rng);
    let mut scored: Vec<(bool, (usize, usize))> = candidate_edges
        .iter()
        .map(|&(iu, iv, c)| (c && rng.gen_bool(0.75), (iu, iv)))
        .collect();
    scored.sort_by_key(|&(p, _)| !p);
    // ~90% of the edge budget comes from true ancestor interactions; the
    // rest are spurious (the paper's false-positive rate, §I/§VI-A)
    let projected = (target * 9) / 10;
    for &(_, (iu, iv)) in scored.iter().take(projected) {
        let (u, v) = (NodeId(iu as u32), NodeId(iv as u32));
        if !g.has_edge(u, v) {
            g.add_edge(u, v).expect("simple by construction");
        }
    }
    // top up with spurious edges (false positives) to reach the budget
    let mut guard = 0;
    while g.edge_count() < target && guard < target * 30 {
        guard += 1;
        let u = NodeId(rng.gen_range(0..g.node_count() as u32));
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("checked");
        }
    }
    (g, kept, labels)
}

/// The Table III / Fig. 6 scalability corpus: `n` PINs with sizes spread
/// from tens to thousands of nodes (largest = Table I human scale),
/// packaged as nested datasets D1 ⊂ D2 ⊂ D3 ⊂ D4 per the paper's
/// footnote 3.
pub struct PinCorpus {
    /// All graphs, one label vocabulary (groups = ortholog ids).
    pub db: GraphDb,
    /// Graph ids of each nested dataset: `datasets[0]` = D1 … `[3]` = D4.
    pub datasets: Vec<Vec<GraphId>>,
}

impl PinCorpus {
    /// Generates the 40-PIN corpus. `scale` in (0, 1] shrinks every graph
    /// proportionally (for quick runs); 1.0 = the paper's sizes.
    pub fn generate(seed: u64, n_graphs: usize, scale: f64) -> PinCorpus {
        assert!(n_graphs >= 4, "need at least one graph per dataset");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = GraphDb::new();
        // size ladder: smallest 45/105 nodes/edges to largest 8470/11260,
        // geometric interpolation, matching the paper's reported spread.
        let mut sizes: Vec<(usize, usize)> = (0..n_graphs)
            .map(|i| {
                let t = i as f64 / (n_graphs - 1).max(1) as f64;
                let nodes = 45.0 * (8470.0f64 / 45.0).powf(t);
                let edges = 105.0 * (11260.0f64 / 105.0).powf(t);
                (
                    ((nodes * scale).round() as usize).max(10),
                    ((edges * scale).round() as usize).max(12),
                )
            })
            .collect();
        sizes.shuffle(&mut rng);

        // All PINs descend from one ancestor network (as BIND's species
        // PINs overlap through orthologs), so a D1 query finds partial
        // matches across the corpus — giving Fig. 6 its result-cardinality
        // effects rather than each graph matching only itself.
        let anc_nodes = ((8470.0 * scale).round() as usize).max(60);
        let anc_edges = ((11260.0 * scale).round() as usize).max(90);
        let m = (anc_edges as f64 / anc_nodes as f64).ceil() as usize + 1;
        let factor = anc_edges as f64 / (anc_nodes as f64 * m as f64);
        let ancestor = preferential_attachment(&mut rng, anc_nodes, m, factor.min(1.0), 1);

        let mut ids: Vec<GraphId> = Vec::with_capacity(n_graphs);
        for (i, (nodes, edges)) in sizes.iter().enumerate() {
            let name = format!("pin{i:02}");
            let g = sample_patch_network(&mut rng, &ancestor, *nodes, *edges, &name, &mut db);
            ids.push(db.insert(name, g));
        }

        // split into 4 balanced groups of n/4, then nest them (footnote 3)
        let mut order: Vec<GraphId> = ids.clone();
        order.sort_by_key(|&g| std::cmp::Reverse(db.graph(g).node_count()));
        let mut groups: Vec<Vec<GraphId>> = vec![Vec::new(); 4];
        // snake distribution balances total node counts
        for (i, gid) in order.into_iter().enumerate() {
            let slot = match (i / 4) % 2 {
                0 => i % 4,
                _ => 3 - (i % 4),
            };
            groups[slot].push(gid);
        }
        let mut datasets: Vec<Vec<GraphId>> = Vec::with_capacity(4);
        let mut acc: Vec<GraphId> = Vec::new();
        for g in groups {
            acc.extend(g);
            datasets.push(acc.clone());
        }
        PinCorpus { db, datasets }
    }

    /// The query workload of Fig. 6: the graphs of D1, smallest first.
    /// The paper's ten queries span 63..3059 nodes — the giant human-scale
    /// PIN sits in the database but is never queried — so `max_nodes`
    /// (e.g. `3100 × scale`) drops D1 members above that size.
    pub fn queries(&self, max_nodes: Option<usize>) -> Vec<GraphId> {
        let mut q: Vec<GraphId> = self.datasets[0]
            .iter()
            .copied()
            .filter(|&g| !max_nodes.is_some_and(|m| self.db.graph(g).node_count() > m))
            .collect();
        q.sort_by_key(|&g| self.db.graph(g).node_count());
        q
    }
}

/// Fraction of a corpus PIN's proteins that keep their shared ortholog
/// label; the rest are species-specific. Real cross-species PINs overlap
/// only through conserved orthologs, so queries produce *partial* matches
/// of varying cardinality (the Fig. 6 discussion) rather than containing
/// every other graph outright.
const SHARED_ORTHOLOG_FRACTION: f64 = 0.5;

/// Samples one corpus PIN from the ancestor: BFS patches of kept nodes,
/// induced ancestor interactions up to ~90% of the edge budget, spurious
/// top-up for the rest. A [`SHARED_ORTHOLOG_FRACTION`] of nodes keep the
/// shared `og<ancestor-id>` label; the rest get `<name>:p<id>` labels
/// private to this graph.
fn sample_patch_network(
    rng: &mut ChaCha8Rng,
    ancestor: &Graph,
    nodes: usize,
    edges: usize,
    name: &str,
    db: &mut GraphDb,
) -> Graph {
    let n_anc = ancestor.node_count();
    let keep_n = nodes.min(n_anc);
    let mut taken = vec![false; n_anc];
    let mut selected: Vec<u32> = Vec::with_capacity(keep_n);
    let mut guard = 0;
    while selected.len() < keep_n * 9 / 10 && guard < keep_n * 4 {
        guard += 1;
        let start = rng.gen_range(0..n_anc as u32);
        if taken[start as usize] {
            continue;
        }
        let patch = rng.gen_range(15..=100).min(keep_n - selected.len());
        let mut queue = std::collections::VecDeque::from([NodeId(start)]);
        let mut grabbed = 0;
        while let Some(u) = queue.pop_front() {
            if grabbed >= patch {
                break;
            }
            if taken[u.idx()] {
                continue;
            }
            taken[u.idx()] = true;
            selected.push(u.0);
            grabbed += 1;
            for v in ancestor.neighbors(u) {
                if !taken[v.idx()] {
                    queue.push_back(v);
                }
            }
        }
    }
    while selected.len() < keep_n {
        let id = rng.gen_range(0..n_anc as u32);
        if !taken[id as usize] {
            taken[id as usize] = true;
            selected.push(id);
        }
    }

    let mut g = Graph::new_undirected();
    let mut index_of: HashMap<u32, NodeId> = HashMap::with_capacity(keep_n);
    for &anc in &selected {
        let label_name = if rng.gen_bool(SHARED_ORTHOLOG_FRACTION) {
            format!("og{anc}")
        } else {
            format!("{name}:p{anc}")
        };
        let label = db.intern_node_label(&label_name);
        index_of.insert(anc, g.add_node(label));
    }
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for (u, v, _) in ancestor.edges() {
        if let (Some(&nu), Some(&nv)) = (index_of.get(&u.0), index_of.get(&v.0)) {
            candidates.push((nu, nv));
        }
    }
    candidates.shuffle(rng);
    for &(u, v) in candidates.iter().take(edges * 9 / 10) {
        if !g.has_edge(u, v) {
            g.add_edge(u, v).expect("simple");
        }
    }
    let mut guard = 0;
    while g.edge_count() < edges && guard < edges * 30 && g.node_count() >= 2 {
        guard += 1;
        let u = NodeId(rng.gen_range(0..g.node_count() as u32));
        let v = NodeId(rng.gen_range(0..g.node_count() as u32));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("checked");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mammal_pins_match_table1_sizes() {
        let pins = SpeciesPins::generate(1, &[RAT, MOUSE], 10, 8);
        let rat = pins.db.graph(pins.species["rat"]);
        assert_eq!(rat.node_count(), RAT.nodes);
        // edge budget approached within a few percent
        assert!(
            (rat.edge_count() as f64 - RAT.edges as f64).abs() / RAT.edges as f64 <= 0.05,
            "rat edges {}",
            rat.edge_count()
        );
    }

    #[test]
    fn groups_connect_species() {
        let pins = SpeciesPins::generate(2, &[MOUSE, RAT], 10, 8);
        assert!(pins.db.has_groups());
        // every rat node shares its group with the co-numbered mouse node
        // when both kept the same ancestor protein
        let rat_groups = &pins.group_of_node["rat"];
        let mouse_groups = &pins.group_of_node["mouse"];
        let rat_gid = pins.species["rat"];
        let mouse_gid = pins.species["mouse"];
        let mut shared = 0;
        for (ri, rg) in rat_groups.iter().enumerate() {
            if let Some(mi) = mouse_groups.iter().position(|mg| mg == rg) {
                shared += 1;
                assert_eq!(
                    pins.db.effective_label(rat_gid, NodeId(ri as u32)),
                    pins.db.effective_label(mouse_gid, NodeId(mi as u32)),
                    "group labels disagree"
                );
            }
        }
        assert!(shared > RAT.nodes / 2, "too few shared orthologs: {shared}");
    }

    #[test]
    fn pathways_have_members_in_all_species() {
        let pins = SpeciesPins::generate(3, &[MOUSE, RAT], 20, 10);
        let with_both = pins
            .pathways
            .iter()
            .filter(|p| p.members["mouse"].len() >= 3 && p.members["rat"].len() >= 3)
            .count();
        assert!(with_both >= 15, "only {with_both} pathways present in both");
    }

    #[test]
    fn pin_degree_distribution_is_skewed() {
        let pins = SpeciesPins::generate(4, &[MOUSE], 10, 8);
        let g = pins.db.graph(pins.species["mouse"]);
        let mut degs: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(degs[0] >= 10, "expected hubs, max degree {}", degs[0]);
        let median = degs[degs.len() / 2];
        assert!(degs[0] >= 5 * median.max(1));
    }

    #[test]
    fn corpus_nested_and_balanced() {
        let c = PinCorpus::generate(5, 16, 0.05);
        assert_eq!(c.datasets.len(), 4);
        for w in c.datasets.windows(2) {
            assert!(w[0].len() < w[1].len());
            assert!(w[0].iter().all(|g| w[1].contains(g)), "not nested");
        }
        assert_eq!(c.datasets[3].len(), 16);
        // queries ascend in size
        let q = c.queries(None);
        let sizes: Vec<usize> = q.iter().map(|&g| c.db.graph(g).node_count()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn corpus_scale_shrinks() {
        let small = PinCorpus::generate(6, 8, 0.02);
        let max_nodes = small
            .db
            .iter()
            .map(|(_, _, g)| g.node_count())
            .max()
            .unwrap();
        assert!(max_nodes < 400, "scale ignored: {max_nodes}");
    }
}
