//! KEGG-like metabolic pathway graphs (§VI-A: "We also evaluated TALE on
//! the biological pathways from the KEGG database. The results … are
//! similar to the other two datasets and omitted in the interest
//! of space." — reproduced here instead of omitted).
//!
//! A metabolic pathway is naturally a **directed** graph alternating
//! compounds and reactions: substrates point into a reaction node, the
//! reaction points at its products. Pathways are small-to-medium graphs
//! (tens to a couple hundred nodes) organized in homologous families
//! across species — the same retrieval structure as ASTRAL's families,
//! over directed graphs with a larger label alphabet.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct KeggSpec {
    /// Pathway families (homologous pathways across species).
    pub families: usize,
    /// Species variants per family.
    pub variants_per_family: usize,
    /// Mean compound count per pathway.
    pub mean_compounds: usize,
    /// Distinct compound labels (KEGG compound ids are a large alphabet).
    pub compound_alphabet: u32,
    /// Distinct reaction-class labels (EC-number-like).
    pub reaction_alphabet: u32,
}

impl Default for KeggSpec {
    fn default() -> Self {
        KeggSpec {
            families: 150,
            variants_per_family: 8,
            mean_compounds: 40,
            compound_alphabet: 600,
            reaction_alphabet: 80,
        }
    }
}

/// Generated dataset: directed pathway graphs plus family ground truth.
pub struct KeggDataset {
    /// One directed graph per pathway variant.
    pub db: GraphDb,
    /// `family_of[graph.idx()]` = family id.
    pub family_of: Vec<u32>,
}

/// Builds one seed pathway: a backbone chain
/// `compound → reaction → compound → …` with branch reactions and a few
/// cycle-closing edges (cofactor regeneration).
fn seed_pathway(
    rng: &mut ChaCha8Rng,
    spec: &KeggSpec,
    compound_label: &mut dyn FnMut(&mut ChaCha8Rng) -> u32,
    reaction_label: &mut dyn FnMut(&mut ChaCha8Rng) -> u32,
) -> (Graph, Vec<bool>) {
    // returns (graph, is_reaction flags)
    let n_compounds = (spec.mean_compounds as f64 * (0.7 + rng.gen_range(0.0..0.6))) as usize;
    let n_compounds = n_compounds.max(4);
    let mut g = Graph::new_directed();
    let mut is_reaction = Vec::new();
    let mut compounds: Vec<NodeId> = Vec::new();

    // backbone chain
    let mut prev = {
        let c = g.add_node(tale_graph::NodeLabel(compound_label(rng)));
        is_reaction.push(false);
        compounds.push(c);
        c
    };
    while compounds.len() < n_compounds {
        let r = g.add_node(tale_graph::NodeLabel(reaction_label(rng)));
        is_reaction.push(true);
        let c = g.add_node(tale_graph::NodeLabel(compound_label(rng)));
        is_reaction.push(false);
        g.add_edge(prev, r).unwrap();
        g.add_edge(r, c).unwrap();
        compounds.push(c);
        prev = c;
    }
    // branches: extra substrates/products on random reactions
    let reactions: Vec<NodeId> = g.nodes().filter(|n| is_reaction[n.idx()]).collect();
    let branches = reactions.len() / 2;
    for _ in 0..branches {
        let r = reactions[rng.gen_range(0..reactions.len())];
        let c = g.add_node(tale_graph::NodeLabel(compound_label(rng)));
        is_reaction.push(false);
        if rng.gen_bool(0.5) {
            g.add_edge(c, r).unwrap(); // extra substrate
        } else {
            g.add_edge(r, c).unwrap(); // extra product
        }
        compounds.push(c);
    }
    // a couple of regeneration cycles: product feeds an earlier reaction
    for _ in 0..2 {
        let r = reactions[rng.gen_range(0..reactions.len())];
        let c = compounds[rng.gen_range(0..compounds.len())];
        let _ = g.add_edge(c, r); // may duplicate; ignore
    }
    (g, is_reaction)
}

impl KeggDataset {
    /// Generates the dataset.
    pub fn generate(seed: u64, spec: &KeggSpec) -> KeggDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut db = GraphDb::new();
        // intern the vocabularies up front so ids are stable
        for c in 0..spec.compound_alphabet {
            db.intern_node_label(&format!("C{c:05}"));
        }
        for r in 0..spec.reaction_alphabet {
            db.intern_node_label(&format!("EC{r:03}"));
        }
        let compound_base = 0u32;
        let reaction_base = spec.compound_alphabet;

        let mut family_of = Vec::new();
        for fam in 0..spec.families {
            let mut compound_label =
                |rng: &mut ChaCha8Rng| compound_base + rng.gen_range(0..spec.compound_alphabet);
            let mut reaction_label =
                |rng: &mut ChaCha8Rng| reaction_base + rng.gen_range(0..spec.reaction_alphabet);
            let (seed_graph, _) =
                seed_pathway(&mut rng, spec, &mut compound_label, &mut reaction_label);
            for v in 0..spec.variants_per_family {
                let variant = if v == 0 {
                    seed_graph.clone()
                } else {
                    // species variation: enzymes swapped, side compounds
                    // gained/lost — modeled with the standard mutator
                    tale_graph::generate::mutate(
                        &mut rng,
                        &seed_graph,
                        &tale_graph::generate::MutationRates {
                            node_delete: 0.08,
                            node_insert: 0.08,
                            edge_delete: 0.10,
                            edge_insert: 0.06,
                            relabel: 0.06,
                        },
                        spec.compound_alphabet + spec.reaction_alphabet,
                    )
                    .0
                };
                db.insert(format!("path{fam:03}.{v}"), variant);
                family_of.push(fam as u32);
            }
        }
        KeggDataset { db, family_of }
    }

    /// Family of a graph.
    pub fn family(&self, g: GraphId) -> u32 {
        self.family_of[g.idx()]
    }

    /// Picks `k` queries from distinct families (deterministic per seed).
    pub fn pick_queries(&self, seed: u64, k: usize) -> Vec<GraphId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut fams = std::collections::HashSet::new();
        let mut out = Vec::new();
        let n = self.db.len();
        let mut guard = 0;
        while out.len() < k && guard < n * 4 {
            guard += 1;
            let g = GraphId(rng.gen_range(0..n as u32));
            if fams.insert(self.family(g)) {
                out.push(g);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KeggSpec {
        KeggSpec {
            families: 10,
            variants_per_family: 5,
            mean_compounds: 25,
            compound_alphabet: 120,
            reaction_alphabet: 20,
        }
    }

    #[test]
    fn generates_directed_pathways() {
        let ds = KeggDataset::generate(3, &small());
        assert_eq!(ds.db.len(), 50);
        for (_, _, g) in ds.db.iter() {
            assert!(g.is_directed());
            assert!(g.node_count() >= 8, "pathway too small: {}", g.node_count());
            assert!(
                g.edge_count() * 10 >= g.node_count() * 7,
                "too sparse: {}/{} (mutated variants may drop edges)",
                g.edge_count(),
                g.node_count()
            );
        }
    }

    #[test]
    fn alternating_structure_mostly_bipartite() {
        let ds = KeggDataset::generate(4, &small());
        // seed variants (index % 5 == 0) are exactly the generated seeds:
        // every edge connects a compound (label < 120) and a reaction
        let g = ds.db.graph(GraphId(0));
        for (u, v, _) in g.edges() {
            let cu = g.label(u).0 < 120;
            let cv = g.label(v).0 < 120;
            assert_ne!(cu, cv, "compound-compound or reaction-reaction edge");
        }
    }

    #[test]
    fn families_retrievable_by_tale_like_similarity() {
        // intra-family variants share most labels; inter-family share few
        let ds = KeggDataset::generate(5, &small());
        let labels = |gid: GraphId| -> std::collections::HashSet<u32> {
            let g = ds.db.graph(gid);
            g.nodes().map(|n| g.label(n).0).collect()
        };
        let base = labels(GraphId(0));
        let sibling = labels(GraphId(1));
        let stranger = labels(GraphId(10));
        let overlap = |a: &std::collections::HashSet<u32>, b: &std::collections::HashSet<u32>| {
            a.intersection(b).count() as f64 / a.len().max(1) as f64
        };
        assert!(
            overlap(&base, &sibling) > overlap(&base, &stranger) + 0.2,
            "sibling {:.2} vs stranger {:.2}",
            overlap(&base, &sibling),
            overlap(&base, &stranger)
        );
    }

    #[test]
    fn queries_distinct_families_deterministic() {
        let ds = KeggDataset::generate(6, &small());
        let q = ds.pick_queries(9, 6);
        assert_eq!(q.len(), 6);
        assert_eq!(q, ds.pick_queries(9, 6));
        let fams: std::collections::HashSet<u32> = q.iter().map(|&g| ds.family(g)).collect();
        assert_eq!(fams.len(), 6);
    }
}
