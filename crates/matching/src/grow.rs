//! Growing graph matches from anchors — §V-C, Algorithms 2, 3 and 4.
//!
//! [`grow_match`] is Algorithm 2 (`GrowMatch`): anchors go into a priority
//! queue ordered by node-match quality; the best is popped, committed, and
//! `ExamineNodesNearBy` (Algorithm 3) tries to match nodes near the popped
//! pair — query nodes one or two hops out against database nodes one or
//! two hops out, in the paper's three pairings (1q×1db, 1q×2db, 2q×1db).
//! `MatchNodes` (Algorithm 4) picks, for each query node, the best
//! *satisfiable* database node, replacing queued candidates when a better
//! match appears.
//!
//! "Satisfiable" follows the index conditions (IV.1–IV.4) evaluated
//! exactly on the two graphs (no bitmaps needed here): same effective
//! label, degree and neighbor-connection within the `ρ` budgets, and
//! neighbor-label misses within `nbmiss`. Match quality is Eq. IV.5.

use serde::Serialize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tale_graph::neighborhood::node_match_quality;
use tale_graph::{Graph, NodeId};

/// An anchor match produced by step 1 (index probe + bipartite matching).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchor {
    /// Query node.
    pub query: NodeId,
    /// Matched database node.
    pub target: NodeId,
    /// Node-match quality (Eq. IV.5).
    pub quality: f64,
}

/// One committed node match in the final graph match.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MatchPair {
    /// Query node.
    pub query: NodeId,
    /// Database node.
    pub target: NodeId,
    /// Node-match quality at commit time.
    pub quality: f64,
}

/// A grown approximate subgraph match.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GraphMatch {
    /// Committed one-to-one node matches, in commit (quality) order.
    pub pairs: Vec<MatchPair>,
}

impl GraphMatch {
    /// Number of matched nodes.
    pub fn matched_nodes(&self) -> usize {
        self.pairs.len()
    }

    /// Number of query edges preserved by the mapping: `(u,v) ∈ Eq` with
    /// both endpoints matched and `(λu, λv) ∈ Edb`.
    pub fn matched_edges(&self, query: &Graph, target: &Graph) -> usize {
        let mut map = vec![None; query.node_count()];
        for p in &self.pairs {
            map[p.query.idx()] = Some(p.target);
        }
        query
            .edges()
            .filter(|&(u, v, _)| {
                matches!((map[u.idx()], map[v.idx()]), (Some(mu), Some(mv)) if target.has_edge(mu, mv))
            })
            .count()
    }

    /// The target node matched to a query node, if any.
    pub fn target_of(&self, q: NodeId) -> Option<NodeId> {
        self.pairs.iter().find(|p| p.query == q).map(|p| p.target)
    }

    /// Sum of node qualities (a cheap default ranking signal).
    pub fn quality_sum(&self) -> f64 {
        self.pairs.iter().map(|p| p.quality).sum()
    }
}

/// Configuration for the growth phase.
#[derive(Debug, Clone, Copy)]
pub struct GrowConfig {
    /// Approximation ratio ρ (fraction of query neighbors allowed missing).
    pub rho: f64,
    /// Examine nodes up to this many hops away. The paper fixes 2 and
    /// notes the algorithm generalizes to more hops "to allow more
    /// approximation (at the expense of an increased computational
    /// cost)"; 1 is the cheaper ablation, 3+ the generalized variant.
    pub hops: u8,
    /// Compare (neighbor label, edge label) pairs instead of bare
    /// neighbor labels in condition IV.3's exact evaluation — the
    /// extended paper's labeled-edge matching.
    pub match_edge_labels: bool,
}

impl Default for GrowConfig {
    fn default() -> Self {
        GrowConfig {
            rho: 0.25,
            hops: 2,
            match_edge_labels: false,
        }
    }
}

/// Everything the growth phase needs to know about the two graphs.
/// Label closures return *effective* labels so the §IV-E group model works.
pub struct GrowInput<'a> {
    /// The query graph.
    pub query: &'a Graph,
    /// The database graph being matched.
    pub target: &'a Graph,
    /// Effective label of a query node.
    pub q_label: &'a dyn Fn(NodeId) -> u32,
    /// Effective label of a target node.
    pub t_label: &'a dyn Fn(NodeId) -> u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    quality: f64,
    generation: u64,
    query: NodeId,
    target: NodeId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // max-heap by quality; deterministic tie-breaks (older generation,
        // then smaller ids first).
        self.quality
            .partial_cmp(&other.quality)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.generation.cmp(&self.generation))
            .then_with(|| other.query.cmp(&self.query))
            .then_with(|| other.target.cmp(&self.target))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-node neighborhood statistics, memoized for the duration of one
/// growth: neighbor connection is O(Σ neighbor degrees) to compute and
/// `MatchNodes` evaluates the same nodes against many candidates, so a
/// lazy cache turns the growth phase's hot path into table lookups.
struct StatsCache {
    nbc: Vec<Option<u32>>,
    labels: Vec<Option<Box<[u64]>>>,
}

impl StatsCache {
    fn new(n: usize) -> Self {
        StatsCache {
            nbc: vec![None; n],
            labels: vec![None; n],
        }
    }

    fn nbc(&mut self, g: &Graph, n: NodeId) -> u32 {
        *self.nbc[n.idx()].get_or_insert_with(|| g.neighbor_connection(n) as u32)
    }

    fn labels(
        &mut self,
        g: &Graph,
        label_of: &dyn Fn(NodeId) -> u32,
        n: NodeId,
        with_edges: bool,
    ) -> &[u64] {
        self.labels[n.idx()].get_or_insert_with(|| {
            let mut v: Vec<u64> = if with_edges {
                g.neighbor_edges(n)
                    .map(|(nb, eid)| {
                        ((label_of(nb) as u64) << 32)
                            | g.edge_label(eid).map(|l| l.0 as u64 + 1).unwrap_or(0)
                    })
                    .collect()
            } else {
                g.neighbors(n).map(|nb| label_of(nb) as u64).collect()
            };
            v.sort_unstable();
            v.dedup();
            v.into_boxed_slice()
        })
    }
}

/// Count of sorted-deduped `q` entries absent from sorted-deduped `t`.
fn sorted_misses(q: &[u64], t: &[u64]) -> u32 {
    let mut misses = 0;
    let mut ti = 0;
    for &l in q {
        while ti < t.len() && t[ti] < l {
            ti += 1;
        }
        if ti >= t.len() || t[ti] != l {
            misses += 1;
        }
    }
    misses
}

/// Evaluates whether mapping `nq → nt` is satisfiable under the `ρ` budget
/// and, if so, its quality — the exact-graph analogue of the index probe
/// conditions IV.1–IV.4 plus Eq. IV.5.
pub fn candidate_quality(
    input: &GrowInput<'_>,
    config: &GrowConfig,
    nq: NodeId,
    nt: NodeId,
) -> Option<f64> {
    let mut qc = StatsCache::new(input.query.node_count());
    let mut tc = StatsCache::new(input.target.node_count());
    candidate_quality_cached(input, config, nq, nt, &mut qc, &mut tc)
}

/// Reusable [`candidate_quality`] evaluator for one `(query, target)` pair:
/// per-node neighborhood statistics are memoized across calls, which matters
/// when scoring many candidate pairs (e.g. residual re-anchoring scans every
/// unmatched query node against its label-mates). The cached statistics
/// assume the same graphs, label closures and `match_edge_labels` setting on
/// every call.
pub struct CandidateScorer {
    qc: StatsCache,
    tc: StatsCache,
}

impl CandidateScorer {
    /// A scorer sized for `input`'s two graphs.
    pub fn new(input: &GrowInput<'_>) -> Self {
        CandidateScorer {
            qc: StatsCache::new(input.query.node_count()),
            tc: StatsCache::new(input.target.node_count()),
        }
    }

    /// Satisfiability + Eq. IV.5 quality of mapping `nq → nt`.
    pub fn quality(
        &mut self,
        input: &GrowInput<'_>,
        config: &GrowConfig,
        nq: NodeId,
        nt: NodeId,
    ) -> Option<f64> {
        candidate_quality_cached(input, config, nq, nt, &mut self.qc, &mut self.tc)
    }
}

fn candidate_quality_cached(
    input: &GrowInput<'_>,
    config: &GrowConfig,
    nq: NodeId,
    nt: NodeId,
    qc: &mut StatsCache,
    tc: &mut StatsCache,
) -> Option<f64> {
    if (input.q_label)(nq) != (input.t_label)(nt) {
        return None; // IV.1
    }
    let q_deg = input.query.degree(nq) as u32;
    let t_deg = input.target.degree(nt) as u32;
    let nbmiss = (config.rho.max(0.0) * q_deg as f64).floor() as u32;
    let nbmiss = nbmiss.min(q_deg);
    if t_deg + nbmiss < q_deg {
        return None; // IV.2
    }
    let q_nbc = qc.nbc(input.query, nq);
    let t_nbc = tc.nbc(input.target, nt);
    let nbcmiss = nbmiss * nbmiss.saturating_sub(1) / 2 + (q_deg - nbmiss) * nbmiss;
    if t_nbc + nbcmiss < q_nbc {
        return None; // IV.4
    }
    // IV.3 evaluated exactly on neighbor (label[, edge label]) sets.
    // Borrow-split: take the query list out, compare, put it back.
    let with_edges = config.match_edge_labels;
    let q_labels = qc.labels[nq.idx()].take().unwrap_or_else(|| {
        let mut v: Vec<u64> = if with_edges {
            input
                .query
                .neighbor_edges(nq)
                .map(|(nb, eid)| {
                    (((input.q_label)(nb) as u64) << 32)
                        | input
                            .query
                            .edge_label(eid)
                            .map(|l| l.0 as u64 + 1)
                            .unwrap_or(0)
                })
                .collect()
        } else {
            input
                .query
                .neighbors(nq)
                .map(|nb| (input.q_label)(nb) as u64)
                .collect()
        };
        v.sort_unstable();
        v.dedup();
        v.into_boxed_slice()
    });
    let t_labels = tc.labels(input.target, input.t_label, nt, with_edges);
    let label_misses = sorted_misses(&q_labels, t_labels);
    qc.labels[nq.idx()] = Some(q_labels);
    if label_misses > nbmiss {
        return None;
    }
    let nb_miss = label_misses.max(q_deg.saturating_sub(t_deg));
    let nbc_miss = q_nbc.saturating_sub(t_nbc);
    Some(node_match_quality(q_deg, q_nbc, nb_miss, nbc_miss))
}

struct GrowState {
    /// query → committed target
    q_matched: Vec<Option<NodeId>>,
    /// target → committed query
    t_matched: Vec<Option<NodeId>>,
    /// query → queued candidate (target, quality, conservation bonus,
    /// generation)
    q_queued: Vec<Option<(NodeId, f64, f64, u64)>>,
    /// target nodes referenced by the queue
    t_queued: Vec<bool>,
    heap: BinaryHeap<QueueEntry>,
    generation: u64,
}

impl GrowState {
    fn new(nq: usize, nt: usize) -> Self {
        GrowState {
            q_matched: vec![None; nq],
            t_matched: vec![None; nt],
            q_queued: vec![None; nq],
            t_queued: vec![false; nt],
            heap: BinaryHeap::new(),
            generation: 0,
        }
    }

    fn push(&mut self, q: NodeId, t: NodeId, quality: f64, bonus: f64) {
        self.generation += 1;
        self.q_queued[q.idx()] = Some((t, quality, bonus, self.generation));
        self.t_queued[t.idx()] = true;
        self.heap.push(QueueEntry {
            quality,
            generation: self.generation,
            query: q,
            target: t,
        });
    }

    /// Replaces q's queued candidate with a better one (Algorithm 4,
    /// lines 9–13). The stale heap entry is invalidated lazily via the
    /// generation stamp.
    fn replace(&mut self, q: NodeId, t: NodeId, quality: f64, bonus: f64) {
        if let Some((old_t, _, _, _)) = self.q_queued[q.idx()] {
            self.t_queued[old_t.idx()] = false;
        }
        self.push(q, t, quality, bonus);
    }
}

/// Algorithm 2 (`GrowMatch`): grows a full graph match from the anchors.
///
/// Anchors must reference valid nodes; conflicting anchors (duplicate query
/// or target nodes) are resolved in favor of higher quality.
pub fn grow_match(input: &GrowInput<'_>, config: &GrowConfig, anchors: &[Anchor]) -> GraphMatch {
    let mut st = GrowState::new(input.query.node_count(), input.target.node_count());
    let mut qc = StatsCache::new(input.query.node_count());
    let mut tc = StatsCache::new(input.target.node_count());

    // Line 1: seed the priority queue (dedup anchors best-first).
    let mut seeds: Vec<&Anchor> = anchors.iter().collect();
    seeds.sort_by(|a, b| {
        b.quality
            .partial_cmp(&a.quality)
            .unwrap_or(Ordering::Equal)
            .then(a.query.cmp(&b.query))
            .then(a.target.cmp(&b.target))
    });
    for a in seeds {
        if st.q_queued[a.query.idx()].is_none() && !st.t_queued[a.target.idx()] {
            st.push(a.query, a.target, a.quality, 0.0);
        }
    }

    let mut result = GraphMatch::default();
    // Lines 2–6: drain the queue.
    while let Some(entry) = st.heap.pop() {
        // lazy invalidation of replaced entries
        match st.q_queued[entry.query.idx()] {
            Some((t, _, _, gen)) if t == entry.target && gen == entry.generation => {}
            _ => continue,
        }
        st.q_queued[entry.query.idx()] = None;
        if st.q_matched[entry.query.idx()].is_some() || st.t_matched[entry.target.idx()].is_some() {
            continue;
        }
        st.q_matched[entry.query.idx()] = Some(entry.target);
        st.t_matched[entry.target.idx()] = Some(entry.query);
        result.pairs.push(MatchPair {
            query: entry.query,
            target: entry.target,
            quality: entry.quality,
        });
        examine_nodes_nearby(
            input,
            config,
            entry.query,
            entry.target,
            &mut st,
            &mut qc,
            &mut tc,
        );
    }
    result
}

/// Algorithm 3 (`ExamineNodesNearBy`).
#[allow(clippy::too_many_arguments)]
fn examine_nodes_nearby(
    input: &GrowInput<'_>,
    config: &GrowConfig,
    nq: NodeId,
    nt: NodeId,
    st: &mut GrowState,
    qc: &mut StatsCache,
    tc: &mut StatsCache,
) {
    // NB1q/NB2q: query nodes 1 / 2 hops out without committed matches.
    // The frontier is over the underlying undirected graph (upstream and
    // downstream are both "nearby"); direction re-enters through the
    // candidate conditions and edge-preservation scoring.
    let nb1q: Vec<NodeId> = input
        .query
        .undirected_neighbors(nq)
        .into_iter()
        .filter(|n| st.q_matched[n.idx()].is_none())
        .collect();
    // NB1db/NB2db: target nodes without committed *or queued* matches.
    let nb1t: Vec<NodeId> = input
        .target
        .undirected_neighbors(nt)
        .into_iter()
        .filter(|n| st.t_matched[n.idx()].is_none() && !st.t_queued[n.idx()])
        .collect();
    if config.hops < 2 {
        match_nodes(input, config, &nb1q, &nb1t, st, qc, tc);
        return;
    }
    // Frontier past 1 hop: exactly the 2-hop ring at the paper's default
    // radius, extended to `2..=hops` for the generalized variant.
    let nb2q: Vec<NodeId> = input
        .query
        .neighbors_within(nq, config.hops)
        .into_iter()
        .filter(|n| st.q_matched[n.idx()].is_none())
        .collect();
    let nb2t: Vec<NodeId> = input
        .target
        .neighbors_within(nt, config.hops)
        .into_iter()
        .filter(|n| st.t_matched[n.idx()].is_none() && !st.t_queued[n.idx()])
        .collect();
    // The paper's three pairings (lines 5–7): 1×1, 1×2, 2×1.
    match_nodes(input, config, &nb1q, &nb1t, st, qc, tc);
    match_nodes(input, config, &nb1q, &nb2t, st, qc, tc);
    match_nodes(input, config, &nb2q, &nb1t, st, qc, tc);
}

/// Conserved-edge bonus: among `q`'s already-committed neighbors, the
/// fraction whose images are adjacent to `t`. Breaks paralog ties in favor
/// of the candidate that preserves the edges the match already committed
/// to — the structural signal Eq. IV.5's purely local stats cannot see.
fn conservation_bonus(input: &GrowInput<'_>, st: &GrowState, q: NodeId, t: NodeId) -> f64 {
    let mut committed = 0u32;
    let mut conserved = 0u32;
    for qn in input.query.neighbors(q) {
        if let Some(tm) = st.q_matched[qn.idx()] {
            committed += 1;
            if input.target.has_edge(t, tm) {
                conserved += 1;
            }
        }
    }
    // directed graphs: incoming edges are conserved structure too
    if input.query.is_directed() {
        for qn in input.query.in_neighbors(q) {
            if let Some(tm) = st.q_matched[qn.idx()] {
                committed += 1;
                if input.target.has_edge(tm, t) {
                    conserved += 1;
                }
            }
        }
    }
    if committed == 0 {
        0.0
    } else {
        conserved as f64 / committed as f64
    }
}

/// Algorithm 4 (`MatchNodes`).
#[allow(clippy::too_many_arguments)]
fn match_nodes(
    input: &GrowInput<'_>,
    config: &GrowConfig,
    sq: &[NodeId],
    st_nodes: &[NodeId],
    st: &mut GrowState,
    qc: &mut StatsCache,
    tc: &mut StatsCache,
) {
    let mut available: Vec<NodeId> = st_nodes
        .iter()
        .copied()
        .filter(|t| st.t_matched[t.idx()].is_none() && !st.t_queued[t.idx()])
        .collect();
    for &q in sq {
        if st.q_matched[q.idx()].is_some() {
            continue;
        }
        // Best mapping of q among the available target nodes: Eq. IV.5
        // quality first, conserved-edge fraction as the tie-breaker
        // (distinguishes paralogs with identical local statistics), node
        // id last for determinism.
        let mut best: Option<(NodeId, f64, f64)> = None;
        for &t in &available {
            if let Some(w) = candidate_quality_cached(input, config, q, t, qc, tc) {
                let bonus = conservation_bonus(input, st, q, t);
                let better = match best {
                    None => true,
                    Some((bt, bw, bb)) => {
                        w > bw || (w == bw && (bonus > bb || (bonus == bb && t < bt)))
                    }
                };
                if better {
                    best = Some((t, w, bonus));
                }
            }
        }
        let Some((t, w, bonus)) = best else { continue };
        match st.q_queued[q.idx()] {
            None => {
                st.push(q, t, w, bonus);
                available.retain(|&x| x != t);
            }
            // Algorithm 4's "is a better node match": quality first, then
            // conserved-edge fraction — so a queued anchor whose quality
            // ties with the true counterpart (superset imposters score a
            // perfect 2.0 too) yields once the growth frontier shows the
            // true node conserves committed edges. The incumbent's bonus
            // must be re-evaluated against the *current* commits: its
            // stored value dates from when it was queued (anchors store
            // 0.0), and since queued targets are excluded from
            // `available`, a stale bonus would let any challenger that
            // conserves one committed edge evict an incumbent that by now
            // conserves just as many.
            Some((old_t, old_w, _, _)) => {
                let old_b = conservation_bonus(input, st, q, old_t);
                if w > old_w || (w == old_w && bonus > old_b) {
                    st.replace(q, t, w, bonus);
                    available.retain(|&x| x != t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tale_graph::labels::NodeLabel;

    fn raw_label(g: &Graph) -> impl Fn(NodeId) -> u32 + '_ {
        move |n| g.label(n).0
    }

    /// Path graph with the given label sequence.
    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn identical_graphs_fully_match() {
        let q = path(&[0, 1, 2, 3, 4]);
        let t = path(&[0, 1, 2, 3, 4]);
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig {
            rho: 0.0,
            hops: 2,
            match_edge_labels: false,
        };
        let anchors = [Anchor {
            query: NodeId(2),
            target: NodeId(2),
            quality: 2.0,
        }];
        let m = grow_match(&input, &cfg, &anchors);
        assert_eq!(m.matched_nodes(), 5);
        assert_eq!(m.matched_edges(&q, &t), 4);
        for p in &m.pairs {
            assert_eq!(p.query, p.target); // unique labels force identity
        }
    }

    #[test]
    fn injective_mapping_invariant() {
        let q = path(&[0, 0, 0, 0, 0, 0]);
        let t = path(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig {
            rho: 0.5,
            hops: 2,
            match_edge_labels: false,
        };
        let anchors = [Anchor {
            query: NodeId(0),
            target: NodeId(3),
            quality: 2.0,
        }];
        let m = grow_match(&input, &cfg, &anchors);
        let mut qs: Vec<_> = m.pairs.iter().map(|p| p.query).collect();
        let mut ts: Vec<_> = m.pairs.iter().map(|p| p.target).collect();
        qs.sort();
        qs.dedup();
        ts.sort();
        ts.dedup();
        assert_eq!(qs.len(), m.pairs.len(), "query side not injective");
        assert_eq!(ts.len(), m.pairs.len(), "target side not injective");
    }

    #[test]
    fn grows_across_missing_node_via_two_hops() {
        // Query: path A-B-C. Target: A-X-B-C with an extra inserted node X
        // (different label) breaking adjacency. 2-hop extension should
        // still reach B from A.
        let q = path(&[0, 1, 2]);
        let mut t = Graph::new_undirected();
        let a = t.add_node(NodeLabel(0));
        let x = t.add_node(NodeLabel(9));
        let b = t.add_node(NodeLabel(1));
        let c = t.add_node(NodeLabel(2));
        t.add_edge(a, x).unwrap();
        t.add_edge(x, b).unwrap();
        t.add_edge(b, c).unwrap();
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig {
            rho: 1.0,
            hops: 2,
            match_edge_labels: false,
        };
        let anchors = [Anchor {
            query: NodeId(0),
            target: a,
            quality: 1.0,
        }];
        let m = grow_match(&input, &cfg, &anchors);
        assert_eq!(m.matched_nodes(), 3);
        assert_eq!(m.target_of(NodeId(1)), Some(b));
        assert_eq!(m.target_of(NodeId(2)), Some(c));

        // with hops = 1 the inserted node blocks the extension
        let cfg1 = GrowConfig {
            rho: 1.0,
            hops: 1,
            match_edge_labels: false,
        };
        let m1 = grow_match(&input, &cfg1, &anchors);
        assert_eq!(m1.matched_nodes(), 1);
    }

    #[test]
    fn three_hop_extension_bridges_two_insertions() {
        // Query: A-B. Target: A-X-Y-B — two inserted nodes in a row; only
        // the generalized 3-hop radius reaches B from A.
        let q = path(&[0, 1]);
        let mut t = Graph::new_undirected();
        let a = t.add_node(NodeLabel(0));
        let x = t.add_node(NodeLabel(8));
        let y = t.add_node(NodeLabel(9));
        let b = t.add_node(NodeLabel(1));
        t.add_edge(a, x).unwrap();
        t.add_edge(x, y).unwrap();
        t.add_edge(y, b).unwrap();
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let anchors = [Anchor {
            query: NodeId(0),
            target: a,
            quality: 1.0,
        }];
        let two = grow_match(
            &input,
            &GrowConfig {
                rho: 1.0,
                hops: 2,
                match_edge_labels: false,
            },
            &anchors,
        );
        assert_eq!(two.matched_nodes(), 1, "2-hop radius cannot bridge");
        let three = grow_match(
            &input,
            &GrowConfig {
                rho: 1.0,
                hops: 3,
                match_edge_labels: false,
            },
            &anchors,
        );
        assert_eq!(three.matched_nodes(), 2);
        assert_eq!(three.target_of(NodeId(1)), Some(b));
    }

    #[test]
    fn anchor_conflicts_resolved_by_quality() {
        let q = path(&[0, 1]);
        let t = path(&[0, 1]);
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig::default();
        // two anchors for the same query node; higher quality wins
        let anchors = [
            Anchor {
                query: NodeId(0),
                target: NodeId(0),
                quality: 1.0,
            },
            Anchor {
                query: NodeId(0),
                target: NodeId(0),
                quality: 1.8,
            },
        ];
        let m = grow_match(&input, &cfg, &anchors);
        assert_eq!(m.pairs[0].quality, 1.8);
        assert_eq!(m.matched_nodes(), 2);
    }

    #[test]
    fn label_mismatch_blocks_extension() {
        let q = path(&[0, 1]);
        let t = path(&[0, 5]);
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig {
            rho: 1.0,
            hops: 2,
            match_edge_labels: false,
        };
        let anchors = [Anchor {
            query: NodeId(0),
            target: NodeId(0),
            quality: 2.0,
        }];
        let m = grow_match(&input, &cfg, &anchors);
        assert_eq!(m.matched_nodes(), 1);
    }

    #[test]
    fn empty_anchors_empty_match() {
        let q = path(&[0, 1]);
        let t = path(&[0, 1]);
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let m = grow_match(&input, &GrowConfig::default(), &[]);
        assert_eq!(m.matched_nodes(), 0);
        assert_eq!(m.quality_sum(), 0.0);
    }

    #[test]
    fn candidate_quality_respects_rho() {
        // query node with degree 4, target with degree 3: needs rho ≥ 0.25
        let mut q = Graph::new_undirected();
        let qc = q.add_node(NodeLabel(0));
        for _ in 0..4 {
            let l = q.add_node(NodeLabel(1));
            q.add_edge(qc, l).unwrap();
        }
        let mut t = Graph::new_undirected();
        let tc = t.add_node(NodeLabel(0));
        for _ in 0..3 {
            let l = t.add_node(NodeLabel(1));
            t.add_edge(tc, l).unwrap();
        }
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let strict = GrowConfig {
            rho: 0.0,
            hops: 2,
            match_edge_labels: false,
        };
        assert!(candidate_quality(&input, &strict, qc, tc).is_none());
        let loose = GrowConfig {
            rho: 0.25,
            hops: 2,
            match_edge_labels: false,
        };
        let w = candidate_quality(&input, &loose, qc, tc).unwrap();
        assert!(w > 0.0 && w < 2.0);
    }

    #[test]
    fn better_candidate_replaces_queued() {
        // Query center 0 adjacent to node 1 (label 1, degree 2 in query).
        // Target has two label-1 nodes: one low degree, one exact; exact
        // appears through a later pairing and must replace the first.
        // Construct: query path 0(l0)-1(l1)-2(l2).
        let q = path(&[0, 1, 2]);
        // target: 0(l0) - 1(l1 leaf, degree 1) and 0 - 3(l9) - 2(l1) - 4(l2)
        let mut t = Graph::new_undirected();
        let t0 = t.add_node(NodeLabel(0));
        let t1 = t.add_node(NodeLabel(1)); // weak candidate (leaf)
        let t3 = t.add_node(NodeLabel(9));
        let t2 = t.add_node(NodeLabel(1)); // strong candidate
        let t4 = t.add_node(NodeLabel(2));
        let t5 = t.add_node(NodeLabel(0)); // gives t2 a label-0 neighbor
        t.add_edge(t0, t1).unwrap();
        t.add_edge(t0, t3).unwrap();
        t.add_edge(t3, t2).unwrap();
        t.add_edge(t2, t4).unwrap();
        t.add_edge(t2, t5).unwrap();
        let ql = raw_label(&q);
        let tl = raw_label(&t);
        let input = GrowInput {
            query: &q,
            target: &t,
            q_label: &ql,
            t_label: &tl,
        };
        let cfg = GrowConfig {
            rho: 1.0,
            hops: 2,
            match_edge_labels: false,
        };
        let anchors = [Anchor {
            query: NodeId(0),
            target: t0,
            quality: 2.0,
        }];
        let m = grow_match(&input, &cfg, &anchors);
        // q1 should end up on the strong candidate t2 (degree 2 with an
        // l2 neighbor), enabling q2 → t4.
        assert_eq!(m.target_of(NodeId(1)), Some(t2));
        assert_eq!(m.target_of(NodeId(2)), Some(t4));
    }
}
