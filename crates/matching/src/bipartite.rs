//! Maximum-weight bipartite matching.
//!
//! §V-B: "we use a maximum weighted bipartite graph matching algorithm
//! (using node match scores as weights) from the LEDA-R 3.2 library" to
//! turn many-to-many index hits into one-to-one anchor matches. LEDA is
//! proprietary, so [`max_weight_matching`] is a from-scratch Kuhn–Munkres
//! (Hungarian) implementation: O(n³) over the padded square matrix,
//! maximizing total weight, leaving vertices unmatched rather than pairing
//! them through absent (weight-less) edges.
//!
//! [`greedy_matching`] is the obvious cheaper alternative (sort edges by
//! weight, take greedily); the `anchor_assignment` ablation bench compares
//! the two.

/// An edge in the bipartite candidate graph: `(left, right, weight)`.
/// Weights must be non-negative.
pub type WeightedEdge = (usize, usize, f64);

/// Maximum-weight bipartite matching via Kuhn–Munkres.
///
/// Returns, for each left vertex, the matched right vertex (or `None`).
/// Only pairs connected by an input edge are ever matched; total weight is
/// maximal over all matchings.
///
/// ```
/// use tale_matching::bipartite::max_weight_matching;
/// // two query nodes, two candidates; the crossed assignment wins 2.5 > 2.0
/// let edges = [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.5)];
/// assert_eq!(max_weight_matching(2, 2, &edges), vec![Some(1), Some(0)]);
/// ```
pub fn max_weight_matching(
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
) -> Vec<Option<usize>> {
    if n_left == 0 || n_right == 0 || edges.is_empty() {
        return vec![None; n_left];
    }
    // The candidate graph is typically a disjoint union of small blocks:
    // an edge only ever joins a query node to candidates sharing its
    // effective label (or ortholog group). The optimum of a disjoint union
    // is the union of per-component optima, and the Hungarian core is
    // O(n³) in the padded square size — so decompose first, turning one
    // big cubic solve into many tiny ones.
    let mut uf: Vec<usize> = (0..n_left + n_right).collect();
    fn find(uf: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while uf[root] != root {
            root = uf[root];
        }
        let mut cur = x;
        while uf[cur] != root {
            let next = uf[cur];
            uf[cur] = root;
            cur = next;
        }
        root
    }
    for &(l, r, _) in edges {
        let (a, b) = (find(&mut uf, l), find(&mut uf, n_left + r));
        uf[a] = b;
    }
    let mut comp_edges: std::collections::HashMap<usize, Vec<WeightedEdge>> =
        std::collections::HashMap::new();
    for &(l, r, w) in edges {
        let root = find(&mut uf, l);
        comp_edges.entry(root).or_default().push((l, r, w));
    }
    if comp_edges.len() > 1 {
        let mut result = vec![None; n_left];
        let mut roots: Vec<usize> = comp_edges.keys().copied().collect();
        roots.sort_unstable();
        for root in roots {
            let ce = &comp_edges[&root];
            // local dense ids, in ascending global order for determinism
            let mut lefts: Vec<usize> = ce.iter().map(|e| e.0).collect();
            let mut rights: Vec<usize> = ce.iter().map(|e| e.1).collect();
            lefts.sort_unstable();
            lefts.dedup();
            rights.sort_unstable();
            rights.dedup();
            let local: Vec<WeightedEdge> = ce
                .iter()
                .map(|&(l, r, w)| {
                    (
                        lefts.binary_search(&l).unwrap(),
                        rights.binary_search(&r).unwrap(),
                        w,
                    )
                })
                .collect();
            for (li, m) in hungarian_dense(lefts.len(), rights.len(), &local)
                .into_iter()
                .enumerate()
            {
                if let Some(ri) = m {
                    result[lefts[li]] = Some(rights[ri]);
                }
            }
        }
        return result;
    }
    hungarian_dense(n_left, n_right, edges)
}

/// The Kuhn–Munkres core on one (dense-ish) instance.
fn hungarian_dense(n_left: usize, n_right: usize, edges: &[WeightedEdge]) -> Vec<Option<usize>> {
    // Pad to a square matrix. Which cells carry *real* edges is tracked
    // separately from the weights: a legitimate weight-0.0 edge must stay
    // distinguishable from padding (the query pipeline produces exact
    // zeros when the surplus tie-break clamps at 0), so presence — not a
    // weight sentinel — decides what the extraction below may return.
    let n = n_left.max(n_right);
    let mut w = vec![vec![0.0f64; n + 1]; n + 1]; // 1-based
    let mut present = vec![vec![false; n + 1]; n + 1];
    for &(l, r, weight) in edges {
        debug_assert!(l < n_left && r < n_right, "edge endpoint out of range");
        debug_assert!(weight >= 0.0, "weights must be non-negative");
        // keep the best parallel edge
        if weight > w[l + 1][r + 1] || !present[l + 1][r + 1] {
            w[l + 1][r + 1] = w[l + 1][r + 1].max(weight);
            present[l + 1][r + 1] = true;
        }
    }

    // Hungarian algorithm (potentials + augmenting paths), maximization
    // form: run minimization on negated weights. Absent cells cost a hair
    // *above* zero so the assignment prefers routing through real edges —
    // including real zero-weight ones — whenever total weight ties. The
    // penalty is far below any meaningful weight difference (≤ n·1e-9
    // total), so maximality of the matched weight is unaffected.
    const ABSENT_COST: f64 = 1e-9;
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];
    let cost = |i: usize, j: usize| if present[i][j] { -w[i][j] } else { ABSENT_COST };
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost(i0, j) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = vec![None; n_left];
    for j in 1..=n {
        let i = p[j];
        if i >= 1 && i <= n_left && j <= n_right && present[i][j] {
            result[i - 1] = Some(j - 1);
        }
    }
    result
}

/// Greedy matching: repeatedly take the heaviest remaining edge whose
/// endpoints are both free. 1/2-approximate, O(E log E). Ties are broken
/// by `(left, right)` ids for determinism.
pub fn greedy_matching(
    n_left: usize,
    n_right: usize,
    edges: &[WeightedEdge],
) -> Vec<Option<usize>> {
    let mut sorted: Vec<&WeightedEdge> = edges.iter().collect();
    sorted.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    let mut result = vec![None; n_left];
    let mut right_used = vec![false; n_right];
    for &&(l, r, _) in &sorted {
        // Every input edge is a real candidate pair — zero-weight edges
        // included (the presence-vs-weight distinction matters here just
        // as in `max_weight_matching`).
        if result[l].is_none() && !right_used[r] {
            result[l] = Some(r);
            right_used[r] = true;
        }
    }
    result
}

/// Total weight of a matching against the defining edge set (max parallel
/// edge weight counts).
pub fn matching_weight(edges: &[WeightedEdge], matching: &[Option<usize>]) -> f64 {
    let mut best = std::collections::HashMap::new();
    for &(l, r, w) in edges {
        let e = best.entry((l, r)).or_insert(0.0f64);
        if w > *e {
            *e = w;
        }
    }
    matching
        .iter()
        .enumerate()
        .filter_map(|(l, r)| r.map(|r| best.get(&(l, r)).copied().unwrap_or(0.0)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(matching: &[Option<usize>], n_right: usize) {
        let mut used = vec![false; n_right];
        for r in matching.iter().flatten() {
            assert!(!used[*r], "right vertex matched twice");
            used[*r] = true;
        }
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(max_weight_matching(0, 5, &[]), Vec::<Option<usize>>::new());
        assert_eq!(max_weight_matching(3, 0, &[]), vec![None, None, None]);
        assert_eq!(max_weight_matching(2, 2, &[]), vec![None, None]);
    }

    #[test]
    fn single_edge() {
        let m = max_weight_matching(2, 2, &[(0, 1, 1.5)]);
        assert_eq!(m, vec![Some(1), None]);
    }

    #[test]
    fn prefers_heavier_total() {
        // l0-r0: 2, l0-r1: 1, l1-r0: 1.5 → best total = l0-r1 + l1-r0 = 2.5
        let edges = [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.5)];
        let m = max_weight_matching(2, 2, &edges);
        assert_eq!(m, vec![Some(1), Some(0)]);
        assert!((matching_weight(&edges, &m) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn greedy_here_is_suboptimal() {
        let edges = [(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.5)];
        let g = greedy_matching(2, 2, &edges);
        assert_eq!(g, vec![Some(0), None]); // takes the 2.0 edge, blocks l1
        assert!(matching_weight(&edges, &g) < 2.5);
    }

    #[test]
    fn rectangular_shapes() {
        // more rights than lefts
        let edges = [(0, 3, 1.0), (1, 1, 2.0)];
        let m = max_weight_matching(2, 5, &edges);
        assert_eq!(m, vec![Some(3), Some(1)]);
        // more lefts than rights
        let edges = [(0, 0, 1.0), (1, 0, 2.0), (2, 0, 3.0)];
        let m = max_weight_matching(3, 1, &edges);
        assert_eq!(m, vec![None, None, Some(0)]);
        assert_valid(&m, 1);
    }

    #[test]
    fn absent_edges_never_matched() {
        // square case where padding could sneak in a phantom pair
        let edges = [(0, 0, 5.0)];
        let m = max_weight_matching(3, 3, &edges);
        assert_eq!(m, vec![Some(0), None, None]);
    }

    #[test]
    fn parallel_edges_keep_best() {
        let edges = [(0, 0, 1.0), (0, 0, 3.0), (0, 0, 2.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m, vec![Some(0)]);
        assert!((matching_weight(&edges, &m) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_edges_are_matchable() {
        // Regression: a weight-0.0 sentinel for absent cells made real
        // zero-weight edges indistinguishable from padding, so they could
        // never be matched. Presence tracking must let them through.
        let m = max_weight_matching(1, 1, &[(0, 0, 0.0)]);
        assert_eq!(m, vec![Some(0)]);
        // padded square: the real zero-weight edge still wins over phantoms
        let m = max_weight_matching(3, 3, &[(1, 2, 0.0)]);
        assert_eq!(m, vec![None, Some(2), None]);
        // mixed: the positive edge takes its pair, the zero edge still lands
        let m = max_weight_matching(2, 2, &[(0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(m, vec![Some(0), Some(1)]);
        // greedy must accept zero-weight edges too
        let g = greedy_matching(2, 2, &[(0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(g, vec![Some(0), Some(1)]);
    }

    #[test]
    fn zero_weight_parallel_edges() {
        // Parallel edges where one copy is exactly 0.0: the best copy is
        // kept and the pair stays matchable either way.
        let edges = [(0, 0, 0.0), (0, 0, 1.5), (0, 0, 0.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m, vec![Some(0)]);
        assert!((matching_weight(&edges, &m) - 1.5).abs() < 1e-9);
        // all copies zero: still a real edge, still matched
        let edges = [(0, 0, 0.0), (0, 0, 0.0)];
        let m = max_weight_matching(1, 1, &edges);
        assert_eq!(m, vec![Some(0)]);
        assert_eq!(greedy_matching(1, 1, &edges), vec![Some(0)]);
    }

    #[test]
    fn zero_weight_does_not_displace_positive_total() {
        // The absent-cell penalty must stay far below real weight
        // differences: taking two zero-weight edges (cardinality 2) must
        // not beat one positive edge (cardinality 1) on total weight.
        let edges = [(0, 0, 0.5), (0, 1, 0.0), (1, 0, 0.0)];
        let m = max_weight_matching(2, 2, &edges);
        let total = matching_weight(&edges, &m);
        assert!((total - 0.5).abs() < 1e-6, "total {total}");
    }

    /// Brute-force optimal matching weight for small instances.
    fn brute_force(n_left: usize, n_right: usize, edges: &[WeightedEdge]) -> f64 {
        fn rec(l: usize, n_left: usize, used: &mut Vec<bool>, adj: &Vec<Vec<(usize, f64)>>) -> f64 {
            if l == n_left {
                return 0.0;
            }
            // skip l
            let mut best = rec(l + 1, n_left, used, adj);
            for &(r, w) in &adj[l] {
                if !used[r] {
                    used[r] = true;
                    best = best.max(w + rec(l + 1, n_left, used, adj));
                    used[r] = false;
                }
            }
            best
        }
        let mut adj = vec![Vec::new(); n_left];
        let mut best_pair = std::collections::HashMap::new();
        for &(l, r, w) in edges {
            let e = best_pair.entry((l, r)).or_insert(0.0f64);
            if w > *e {
                *e = w;
            }
        }
        for (&(l, r), &w) in &best_pair {
            adj[l].push((r, w));
        }
        let mut used = vec![false; n_right];
        rec(0, n_left, &mut used, &adj)
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for trial in 0..60 {
            let nl = rng.gen_range(1..6);
            let nr = rng.gen_range(1..6);
            let ne = rng.gen_range(0..nl * nr + 1);
            let edges: Vec<WeightedEdge> = (0..ne)
                .map(|_| {
                    (
                        rng.gen_range(0..nl),
                        rng.gen_range(0..nr),
                        (rng.gen_range(1..100) as f64) / 10.0,
                    )
                })
                .collect();
            let m = max_weight_matching(nl, nr, &edges);
            assert_valid(&m, nr);
            let got = matching_weight(&edges, &m);
            let want = brute_force(nl, nr, &edges);
            assert!(
                (got - want).abs() < 1e-6,
                "trial {trial}: got {got}, optimal {want}, edges {edges:?}"
            );
        }
    }

    #[test]
    fn greedy_is_half_approximate_on_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        for _ in 0..30 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let ne = rng.gen_range(0..nl * nr + 1);
            let edges: Vec<WeightedEdge> = (0..ne)
                .map(|_| {
                    (
                        rng.gen_range(0..nl),
                        rng.gen_range(0..nr),
                        (rng.gen_range(1..100) as f64) / 10.0,
                    )
                })
                .collect();
            let g = greedy_matching(nl, nr, &edges);
            assert_valid(&g, nr);
            let opt = matching_weight(&edges, &max_weight_matching(nl, nr, &edges));
            let got = matching_weight(&edges, &g);
            assert!(got * 2.0 + 1e-9 >= opt, "greedy below 1/2: {got} vs {opt}");
        }
    }
}
