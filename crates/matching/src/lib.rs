//! The TALE matching algorithm (§V) and its supporting machinery.
//!
//! Matching is two-phased (Fig. 4):
//!
//! 1. **Match the important nodes** (§V-B): the query's top-`Pimp` nodes by
//!    importance are probed against the NH-Index; per candidate database
//!    graph, the many-to-many probe results are resolved into one-to-one
//!    *anchor* matches by maximum-weight bipartite matching over the node
//!    match qualities (the paper used LEDA; [`bipartite`] is our
//!    from-scratch Kuhn–Munkres plus a greedy alternative).
//! 2. **Extend the match** (§V-C, Algorithms 2–4): [`grow`] pops the best
//!    anchor off a priority queue, commits it, and examines nodes up to two
//!    hops from both endpoints for new satisfiable matches, until the queue
//!    drains.
//!
//! [`similarity`] supplies the pluggable graph-similarity models the paper
//! deliberately leaves to the application (§III).

pub mod bipartite;
pub mod grow;
pub mod similarity;

pub use bipartite::{greedy_matching, max_weight_matching};
pub use grow::{grow_match, Anchor, GraphMatch, GrowConfig, MatchPair};
pub use similarity::{CTreeStyle, MatchContext, MatchedNodesEdges, QualitySum, SimilarityModel};
