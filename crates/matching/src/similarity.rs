//! Pluggable graph-similarity models (§III).
//!
//! "There is no 'universal' model that fits all applications … we let the
//! users customize the similarity method that best models their
//! application." TALE only needs a total order over matches to return the
//! top-K, so the trait is a single scoring function over a completed
//! match. Three built-ins cover the paper's uses:
//!
//! * [`MatchedNodesEdges`] — raw conserved-component size (the §VI-D
//!   ablation reports matched nodes/edges directly).
//! * [`QualitySum`] — sum of per-node qualities (Eq. IV.5), TALE's
//!   internal signal.
//! * [`CTreeStyle`] — the normalized node+edge similarity used when
//!   comparing against C-Tree (§VI-B.2: "we employ the similarity model
//!   used by C-Tree to rank the matching results").

use crate::grow::GraphMatch;
use tale_graph::Graph;

/// Everything a similarity model may inspect.
pub struct MatchContext<'a> {
    /// The query graph.
    pub query: &'a Graph,
    /// The matched database graph.
    pub target: &'a Graph,
    /// The grown match.
    pub m: &'a GraphMatch,
}

impl MatchContext<'_> {
    /// Matched node count.
    pub fn matched_nodes(&self) -> usize {
        self.m.matched_nodes()
    }

    /// Matched (preserved) edge count.
    pub fn matched_edges(&self) -> usize {
        self.m.matched_edges(self.query, self.target)
    }
}

/// Statistics-derived inputs for bounding the best score any match
/// against some set of target graphs could reach — without growing a
/// single match. The planner fills this from per-shard index statistics:
///
/// * `max_pairs` comes from the label-equality invariant of match growth
///   (a query node only ever pairs with an equal-effective-label target
///   node), so per target graph at most
///   `Σ_label min(query count, shard count)` pairs can form — and the
///   shard-wide label counts upper-bound any single graph's.
/// * `min_target_size` is the smallest `|Vt|+|Et|` over the targets
///   (needed by size-normalized models, where a *small* denominator
///   maximizes the score).
#[derive(Debug, Clone, Copy)]
pub struct BoundContext {
    /// Query node count.
    pub query_nodes: usize,
    /// Query edge count.
    pub query_edges: usize,
    /// Upper bound on matched pairs against any single target graph.
    pub max_pairs: usize,
    /// Lower bound on any target graph's `node + edge` count, if known.
    pub min_target_size: Option<usize>,
}

/// Scores a completed graph match; higher = more similar.
pub trait SimilarityModel: Send + Sync {
    /// Human-readable model name (for experiment output).
    fn name(&self) -> &'static str;
    /// The score.
    fn score(&self, ctx: &MatchContext<'_>) -> f64;
    /// An upper bound on [`score`](SimilarityModel::score) over every
    /// match the bound context describes, or `None` when the model cannot
    /// bound itself (the planner then never prunes on its behalf).
    /// Soundness requirement: for every reachable match `m`,
    /// `score(m) ≤ score_upper_bound(b)` whenever `b` conservatively
    /// describes `m`'s target set — overestimating the bound is safe,
    /// underestimating loses results.
    fn score_upper_bound(&self, b: &BoundContext) -> Option<f64> {
        let _ = b;
        None
    }
}

/// `score = matched nodes + matched edges` — the conserved-component size.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchedNodesEdges;

/// Upper bound on `matched nodes + matched edges` given at most `p`
/// matched pairs: every matched edge joins two matched query nodes, so
/// matched edges ≤ min(|Eq|, p·(p−1)/2).
fn conserved_size_bound(b: &BoundContext) -> usize {
    let p = b.max_pairs.min(b.query_nodes);
    p + b.query_edges.min(p.saturating_sub(1) * p / 2)
}

impl SimilarityModel for MatchedNodesEdges {
    fn name(&self) -> &'static str {
        "matched-nodes+edges"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        (ctx.matched_nodes() + ctx.matched_edges()) as f64
    }
    fn score_upper_bound(&self, b: &BoundContext) -> Option<f64> {
        Some(conserved_size_bound(b) as f64)
    }
}

/// Sum of node-match qualities (Eq. IV.5 values accumulated by GrowMatch).
#[derive(Debug, Clone, Copy, Default)]
pub struct QualitySum;

impl SimilarityModel for QualitySum {
    fn name(&self) -> &'static str {
        "quality-sum"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        ctx.m.quality_sum()
    }
    /// Each pair's node-match quality (Eq. IV.5) lies in `[0, 2]`.
    fn score_upper_bound(&self, b: &BoundContext) -> Option<f64> {
        Some(2.0 * b.max_pairs.min(b.query_nodes) as f64)
    }
}

/// C-Tree-style normalized similarity:
/// `2·(matched nodes + matched edges) / (|Vq|+|Eq| + |Vt|+|Et|)`.
/// 1.0 for identical graphs fully matched; symmetric in the two sizes so
/// matching a small query inside a huge graph is penalized, as C-Tree's
/// NN-search ranking does.
#[derive(Debug, Clone, Copy, Default)]
pub struct CTreeStyle;

impl SimilarityModel for CTreeStyle {
    fn name(&self) -> &'static str {
        "ctree-style"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        let q = ctx.query.node_count() + ctx.query.edge_count();
        let t = ctx.target.node_count() + ctx.target.edge_count();
        if q + t == 0 {
            return 0.0;
        }
        2.0 * (ctx.matched_nodes() + ctx.matched_edges()) as f64 / (q + t) as f64
    }
    /// `2s/(q+t)` with conserved size `s` is increasing in `s` and
    /// decreasing in `t`, and any target contains its own matched image
    /// (`t ≥ s`), so the maximum is `2B/(q + max(t_min, B))` with `B` the
    /// conserved-size bound.
    fn score_upper_bound(&self, b: &BoundContext) -> Option<f64> {
        let q = b.query_nodes + b.query_edges;
        let s = conserved_size_bound(b);
        let denom = q + b.min_target_size.unwrap_or(0).max(s);
        if denom == 0 {
            return Some(0.0);
        }
        Some(2.0 * s as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{GraphMatch, MatchPair};
    use tale_graph::labels::NodeLabel;
    use tale_graph::NodeId;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(NodeLabel(i as u32))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn identity_match(n: usize) -> GraphMatch {
        GraphMatch {
            pairs: (0..n)
                .map(|i| MatchPair {
                    query: NodeId(i as u32),
                    target: NodeId(i as u32),
                    quality: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn full_identity_scores() {
        let q = path(4);
        let t = path(4);
        let m = identity_match(4);
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(ctx.matched_nodes(), 4);
        assert_eq!(ctx.matched_edges(), 3);
        assert_eq!(MatchedNodesEdges.score(&ctx), 7.0);
        assert_eq!(QualitySum.score(&ctx), 8.0);
        assert!((CTreeStyle.score(&ctx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_match_scores_lower() {
        let q = path(4);
        let t = path(4);
        let m = identity_match(2);
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(ctx.matched_edges(), 1);
        assert!(CTreeStyle.score(&ctx) < 1.0);
        assert_eq!(MatchedNodesEdges.score(&ctx), 3.0);
    }

    #[test]
    fn size_asymmetry_penalized_by_ctree_style() {
        let q = path(3);
        let small = path(3);
        let big = path(30);
        let m = identity_match(3);
        let c_small = CTreeStyle.score(&MatchContext {
            query: &q,
            target: &small,
            m: &m,
        });
        let c_big = CTreeStyle.score(&MatchContext {
            query: &q,
            target: &big,
            m: &m,
        });
        assert!(c_small > c_big);
    }

    #[test]
    fn empty_graphs_zero() {
        let q = Graph::new_undirected();
        let t = Graph::new_undirected();
        let m = GraphMatch::default();
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(CTreeStyle.score(&ctx), 0.0);
        assert_eq!(MatchedNodesEdges.score(&ctx), 0.0);
    }

    #[test]
    fn upper_bounds_dominate_actual_scores() {
        let q = path(4);
        let t = path(4);
        for n in 0..=4usize {
            let m = identity_match(n);
            let ctx = MatchContext {
                query: &q,
                target: &t,
                m: &m,
            };
            // a bound context that conservatively describes this target
            let b = BoundContext {
                query_nodes: 4,
                query_edges: 3,
                max_pairs: n, // growth matched exactly n pairs here
                min_target_size: Some(7),
            };
            assert!(
                MatchedNodesEdges.score_upper_bound(&b).unwrap() >= MatchedNodesEdges.score(&ctx)
            );
            assert!(QualitySum.score_upper_bound(&b).unwrap() >= QualitySum.score(&ctx));
            assert!(CTreeStyle.score_upper_bound(&b).unwrap() >= CTreeStyle.score(&ctx));
            // unknown target size only loosens the normalized bound
            let loose = BoundContext {
                min_target_size: None,
                ..b
            };
            assert!(
                CTreeStyle.score_upper_bound(&loose).unwrap()
                    >= CTreeStyle.score_upper_bound(&b).unwrap()
            );
        }
    }

    #[test]
    fn bound_handles_degenerate_inputs() {
        let empty = BoundContext {
            query_nodes: 0,
            query_edges: 0,
            max_pairs: 0,
            min_target_size: None,
        };
        assert_eq!(CTreeStyle.score_upper_bound(&empty), Some(0.0));
        assert_eq!(MatchedNodesEdges.score_upper_bound(&empty), Some(0.0));
        // max_pairs larger than the query clamps to the query size
        let clamped = BoundContext {
            query_nodes: 2,
            query_edges: 1,
            max_pairs: 100,
            min_target_size: None,
        };
        assert_eq!(QualitySum.score_upper_bound(&clamped), Some(4.0));
        assert_eq!(MatchedNodesEdges.score_upper_bound(&clamped), Some(3.0));
    }

    #[test]
    fn model_names() {
        assert_eq!(MatchedNodesEdges.name(), "matched-nodes+edges");
        assert_eq!(QualitySum.name(), "quality-sum");
        assert_eq!(CTreeStyle.name(), "ctree-style");
    }
}
