//! Pluggable graph-similarity models (§III).
//!
//! "There is no 'universal' model that fits all applications … we let the
//! users customize the similarity method that best models their
//! application." TALE only needs a total order over matches to return the
//! top-K, so the trait is a single scoring function over a completed
//! match. Three built-ins cover the paper's uses:
//!
//! * [`MatchedNodesEdges`] — raw conserved-component size (the §VI-D
//!   ablation reports matched nodes/edges directly).
//! * [`QualitySum`] — sum of per-node qualities (Eq. IV.5), TALE's
//!   internal signal.
//! * [`CTreeStyle`] — the normalized node+edge similarity used when
//!   comparing against C-Tree (§VI-B.2: "we employ the similarity model
//!   used by C-Tree to rank the matching results").

use crate::grow::GraphMatch;
use tale_graph::Graph;

/// Everything a similarity model may inspect.
pub struct MatchContext<'a> {
    /// The query graph.
    pub query: &'a Graph,
    /// The matched database graph.
    pub target: &'a Graph,
    /// The grown match.
    pub m: &'a GraphMatch,
}

impl MatchContext<'_> {
    /// Matched node count.
    pub fn matched_nodes(&self) -> usize {
        self.m.matched_nodes()
    }

    /// Matched (preserved) edge count.
    pub fn matched_edges(&self) -> usize {
        self.m.matched_edges(self.query, self.target)
    }
}

/// Scores a completed graph match; higher = more similar.
pub trait SimilarityModel: Send + Sync {
    /// Human-readable model name (for experiment output).
    fn name(&self) -> &'static str;
    /// The score.
    fn score(&self, ctx: &MatchContext<'_>) -> f64;
}

/// `score = matched nodes + matched edges` — the conserved-component size.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchedNodesEdges;

impl SimilarityModel for MatchedNodesEdges {
    fn name(&self) -> &'static str {
        "matched-nodes+edges"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        (ctx.matched_nodes() + ctx.matched_edges()) as f64
    }
}

/// Sum of node-match qualities (Eq. IV.5 values accumulated by GrowMatch).
#[derive(Debug, Clone, Copy, Default)]
pub struct QualitySum;

impl SimilarityModel for QualitySum {
    fn name(&self) -> &'static str {
        "quality-sum"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        ctx.m.quality_sum()
    }
}

/// C-Tree-style normalized similarity:
/// `2·(matched nodes + matched edges) / (|Vq|+|Eq| + |Vt|+|Et|)`.
/// 1.0 for identical graphs fully matched; symmetric in the two sizes so
/// matching a small query inside a huge graph is penalized, as C-Tree's
/// NN-search ranking does.
#[derive(Debug, Clone, Copy, Default)]
pub struct CTreeStyle;

impl SimilarityModel for CTreeStyle {
    fn name(&self) -> &'static str {
        "ctree-style"
    }
    fn score(&self, ctx: &MatchContext<'_>) -> f64 {
        let q = ctx.query.node_count() + ctx.query.edge_count();
        let t = ctx.target.node_count() + ctx.target.edge_count();
        if q + t == 0 {
            return 0.0;
        }
        2.0 * (ctx.matched_nodes() + ctx.matched_edges()) as f64 / (q + t) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grow::{GraphMatch, MatchPair};
    use tale_graph::labels::NodeLabel;
    use tale_graph::NodeId;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|i| g.add_node(NodeLabel(i as u32))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn identity_match(n: usize) -> GraphMatch {
        GraphMatch {
            pairs: (0..n)
                .map(|i| MatchPair {
                    query: NodeId(i as u32),
                    target: NodeId(i as u32),
                    quality: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn full_identity_scores() {
        let q = path(4);
        let t = path(4);
        let m = identity_match(4);
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(ctx.matched_nodes(), 4);
        assert_eq!(ctx.matched_edges(), 3);
        assert_eq!(MatchedNodesEdges.score(&ctx), 7.0);
        assert_eq!(QualitySum.score(&ctx), 8.0);
        assert!((CTreeStyle.score(&ctx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_match_scores_lower() {
        let q = path(4);
        let t = path(4);
        let m = identity_match(2);
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(ctx.matched_edges(), 1);
        assert!(CTreeStyle.score(&ctx) < 1.0);
        assert_eq!(MatchedNodesEdges.score(&ctx), 3.0);
    }

    #[test]
    fn size_asymmetry_penalized_by_ctree_style() {
        let q = path(3);
        let small = path(3);
        let big = path(30);
        let m = identity_match(3);
        let c_small = CTreeStyle.score(&MatchContext {
            query: &q,
            target: &small,
            m: &m,
        });
        let c_big = CTreeStyle.score(&MatchContext {
            query: &q,
            target: &big,
            m: &m,
        });
        assert!(c_small > c_big);
    }

    #[test]
    fn empty_graphs_zero() {
        let q = Graph::new_undirected();
        let t = Graph::new_undirected();
        let m = GraphMatch::default();
        let ctx = MatchContext {
            query: &q,
            target: &t,
            m: &m,
        };
        assert_eq!(CTreeStyle.score(&ctx), 0.0);
        assert_eq!(MatchedNodesEdges.score(&ctx), 0.0);
    }

    #[test]
    fn model_names() {
        assert_eq!(MatchedNodesEdges.name(), "matched-nodes+edges");
        assert_eq!(QualitySum.name(), "quality-sum");
        assert_eq!(CTreeStyle.name(), "ctree-style");
    }
}
