//! Labeled graph model and graph database for the TALE reproduction.
//!
//! TALE (Tian & Patel, ICDE 2008) operates on databases of large labeled
//! graphs — protein interaction networks, protein-domain contact graphs and
//! the like. This crate provides the substrate the rest of the workspace is
//! built on:
//!
//! * [`Graph`]: an adjacency-list labeled graph with stable, ordered node
//!   ids, O(1) degree lookup, optional direction and optional edge labels
//!   (§III of the paper).
//! * [`GraphDb`]: a collection of graphs with interned label vocabularies
//!   (`Σv`, `Σe`) and stable [`GraphId`]s, plus serde persistence and a
//!   simple line-oriented text format.
//! * [`centrality`]: node-importance measures — degree centrality (the
//!   paper's default), plus the closeness, betweenness and eigenvector
//!   extensions §V-A mentions.
//! * [`neighborhood`]: the induced-neighborhood statistics (degree, neighbor
//!   connection, neighbor label set) that the NH-Index is built from (§IV-A).
//!
//! The crate is deliberately free of any indexing or matching logic; those
//! live in `tale-nhindex` and `tale-matching`.

pub mod centrality;
pub mod db;
pub mod generate;
pub mod graph;
pub mod io;
pub mod labels;
pub mod neighborhood;
pub mod stats;
pub mod wl;

pub use db::{GraphDb, GraphId};
pub use graph::{Direction, EdgeId, Graph, NodeId};
pub use labels::{EdgeLabel, LabelInterner, NodeLabel};
pub use neighborhood::NeighborhoodStats;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced an absent node.
    NodeOutOfBounds(NodeId),
    /// A graph id referenced an absent graph.
    GraphOutOfBounds(GraphId),
    /// Self loops are rejected: the paper's neighborhood model (degree,
    /// neighbor connection) is defined over simple graphs.
    SelfLoop(NodeId),
    /// The same undirected edge was inserted twice.
    DuplicateEdge(NodeId, NodeId),
    /// Text-format parse failure with 1-based line number.
    Parse { line: usize, msg: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds(n) => write!(f, "node id {} out of bounds", n.0),
            GraphError::GraphOutOfBounds(g) => write!(f, "graph id {} out of bounds", g.0),
            GraphError::SelfLoop(n) => write!(f, "self loop on node {}", n.0),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge between nodes {} and {}", u.0, v.0)
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<serde_json::Error> for GraphError {
    fn from(e: serde_json::Error) -> Self {
        GraphError::Json(e)
    }
}
