//! Neighborhood statistics — the NH-Index indexing unit's raw material.
//!
//! §IV-A: "A neighborhood is defined as the induced subgraph of a node and
//! its neighbors." Three properties characterize it: the node's degree, the
//! *neighbor connection* (edge count among the neighbors), and the labels of
//! the neighbors. [`NeighborhoodStats`] computes all three in one pass so
//! index construction touches each adjacency list once.

use crate::db::GraphDb;
use crate::graph::{Graph, NodeId};
use crate::GraphId;

/// The three neighborhood properties of one node (§IV-A), with labels
/// already mapped through the database's effective (group) labeling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborhoodStats {
    /// Degree of the node.
    pub degree: u32,
    /// Edges among the neighbors.
    pub neighbor_connection: u32,
    /// Effective labels of the neighbors, sorted ascending, deduplicated.
    pub neighbor_labels: Vec<u32>,
    /// Effective label of the node itself.
    pub label: u32,
}

impl NeighborhoodStats {
    /// Computes stats for `node` of `graph` inside `db` (group-aware).
    pub fn compute(db: &GraphDb, graph: GraphId, node: NodeId) -> Self {
        let g = db.graph(graph);
        Self::compute_with(g, node, |n| db.effective_label(graph, n))
    }

    /// Computes stats for a standalone graph with a custom label function —
    /// used for query graphs, which live outside the database but must see
    /// the same effective-label space.
    pub fn compute_with(g: &Graph, node: NodeId, label_of: impl Fn(NodeId) -> u32) -> Self {
        let degree = g.degree(node) as u32;
        let neighbor_connection = g.neighbor_connection(node) as u32;
        let mut neighbor_labels: Vec<u32> = g.neighbors(node).map(&label_of).collect();
        neighbor_labels.sort_unstable();
        neighbor_labels.dedup();
        NeighborhoodStats {
            degree,
            neighbor_connection,
            neighbor_labels,
            label: label_of(node),
        }
    }
}

/// Node-match quality `w` — Eq. IV.5 of the paper.
///
/// ```text
/// fnb  = nbmiss  / Nq.degree
/// fnbc = nbcmiss / Nq.nbConnection
/// w = 2 − fnbc                      if nbmiss = 0
/// w = 2 − (fnb + fnbc / nbmiss)     otherwise
/// ```
///
/// `fnbc` is amortized by `nbmiss` because missing neighbors inevitably
/// drag missing neighbor connections with them (the paper's correlation
/// argument). `w ∈ [0, 2]`; higher is better. Degenerate query stats
/// (degree or neighbor connection of 0) contribute zero missing fraction,
/// matching the limit of the paper's formulas.
pub fn node_match_quality(q_degree: u32, q_nb_connection: u32, nb_miss: u32, nbc_miss: u32) -> f64 {
    let fnb = if q_degree == 0 {
        0.0
    } else {
        nb_miss as f64 / q_degree as f64
    };
    let fnbc = if q_nb_connection == 0 {
        0.0
    } else {
        nbc_miss as f64 / q_nb_connection as f64
    };
    if nb_miss == 0 {
        2.0 - fnbc
    } else {
        2.0 - (fnb + fnbc / nb_miss as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn star_with_ring() -> (GraphDb, GraphId) {
        // center (label C) with 4 leaves (labels L0..L3); leaves form a path.
        let mut db = GraphDb::new();
        let c = db.intern_node_label("C");
        let ls: Vec<_> = (0..4)
            .map(|i| db.intern_node_label(&format!("L{i}")))
            .collect();
        let mut g = Graph::new_undirected();
        let center = g.add_node(c);
        let leaves: Vec<_> = ls.iter().map(|&l| g.add_node(l)).collect();
        for &l in &leaves {
            g.add_edge(center, l).unwrap();
        }
        for w in leaves.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let id = db.insert("g", g);
        (db, id)
    }

    #[test]
    fn stats_of_center() {
        let (db, id) = star_with_ring();
        let s = NeighborhoodStats::compute(&db, id, NodeId(0));
        assert_eq!(s.degree, 4);
        assert_eq!(s.neighbor_connection, 3); // path among 4 leaves
        assert_eq!(s.neighbor_labels, vec![1, 2, 3, 4]);
        assert_eq!(s.label, 0);
    }

    #[test]
    fn stats_of_leaf() {
        let (db, id) = star_with_ring();
        // leaf 1 (NodeId(2)) connects to center, leaf0, leaf2.
        let s = NeighborhoodStats::compute(&db, id, NodeId(2));
        assert_eq!(s.degree, 3);
        // among {center, leaf0, leaf2}: center-leaf0 and center-leaf2 = 2
        assert_eq!(s.neighbor_connection, 2);
    }

    #[test]
    fn duplicate_neighbor_labels_dedup() {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let mut g = Graph::new_undirected();
        let center = g.add_node(a);
        for _ in 0..3 {
            let n = g.add_node(b);
            g.add_edge(center, n).unwrap();
        }
        let id = db.insert("g", g);
        let s = NeighborhoodStats::compute(&db, id, NodeId(0));
        assert_eq!(s.degree, 3);
        assert_eq!(s.neighbor_labels, vec![1]); // three B neighbors, one label
    }

    #[test]
    fn group_labels_flow_through() {
        let (mut db, id) = star_with_ring();
        // collapse all leaf labels into one group, center in another
        db.set_group(vec![0, 1, 1, 1, 1]).unwrap();
        let s = NeighborhoodStats::compute(&db, id, NodeId(0));
        assert_eq!(s.neighbor_labels, vec![1]);
        assert_eq!(s.label, 0);
    }
}
