//! Weisfeiler–Leman color refinement and isomorphism-invariant hashing.
//!
//! 1-WL iteratively refines node colors by hashing each node's color with
//! the sorted multiset of its neighbors' colors. The final color multiset
//! is invariant under isomorphism, giving a cheap fingerprint for
//! deduplication and a necessary (not sufficient) isomorphism test. The
//! dataset generators use it to verify that family variants are genuinely
//! distinct graphs; tests use it to compare graphs up to relabeling of
//! node ids.

use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// FNV-1a over a u64 stream — stable across runs and platforms, unlike
/// `DefaultHasher`.
fn fnv(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const SEED: u64 = 0xcbf29ce484222325;

/// Runs `rounds` of 1-WL color refinement and returns the per-node colors.
/// Directed graphs refine over (out-colors, in-colors) separately.
pub fn wl_colors(g: &Graph, rounds: usize) -> Vec<u64> {
    let mut colors: Vec<u64> = g.nodes().map(|n| fnv(SEED, g.label(n).0 as u64)).collect();
    let mut next = colors.clone();
    for _ in 0..rounds {
        for n in g.nodes() {
            let mut outs: Vec<u64> = g.neighbors(n).map(|v| colors[v.idx()]).collect();
            outs.sort_unstable();
            let mut h = fnv(SEED, colors[n.idx()]);
            for c in outs {
                h = fnv(h, c);
            }
            if g.is_directed() {
                let mut ins: Vec<u64> = g.in_neighbors(n).map(|v| colors[v.idx()]).collect();
                ins.sort_unstable();
                h = fnv(h, 0xD1F); // domain separation between out and in
                for c in ins {
                    h = fnv(h, c);
                }
            }
            next[n.idx()] = h;
        }
        std::mem::swap(&mut colors, &mut next);
    }
    colors
}

/// Isomorphism-invariant graph hash: the sorted final WL color multiset,
/// folded together with the node and edge counts. Equal hashes do *not*
/// prove isomorphism (1-WL cannot separate some regular graphs), but
/// unequal hashes prove non-isomorphism.
pub fn wl_hash(g: &Graph, rounds: usize) -> u64 {
    let mut colors = wl_colors(g, rounds);
    colors.sort_unstable();
    let mut h = fnv(SEED, g.node_count() as u64);
    h = fnv(h, g.edge_count() as u64);
    for c in colors {
        h = fnv(h, c);
    }
    h
}

/// Number of distinct WL colors after `rounds` — a cheap structural
/// diversity measure (1 for vertex-transitive-looking graphs, ~n for
/// asymmetric ones).
pub fn wl_color_classes(g: &Graph, rounds: usize) -> usize {
    let colors = wl_colors(g, rounds);
    let mut seen: HashMap<u64, ()> = HashMap::with_capacity(colors.len());
    for c in colors {
        seen.insert(c, ());
    }
    seen.len()
}

/// Relabels a graph's node ids by the permutation `perm` (new id of old
/// node `i` is `perm[i]`); used in tests to exercise isomorphism
/// invariance.
pub fn permute(g: &Graph, perm: &[u32]) -> Graph {
    assert_eq!(perm.len(), g.node_count());
    let mut out = Graph::new(g.direction());
    // create nodes in new-id order
    let mut old_of_new = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        old_of_new[new as usize] = old as u32;
    }
    for &old in &old_of_new {
        out.add_node(g.label(NodeId(old)));
    }
    for (u, v, l) in g.edges() {
        let (nu, nv) = (NodeId(perm[u.idx()]), NodeId(perm[v.idx()]));
        match l {
            Some(l) => out.add_edge_labeled(nu, nv, l),
            None => out.add_edge(nu, nv),
        }
        .expect("permuted edge");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NodeLabel;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn hash_is_permutation_invariant() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let g = crate::generate::gnm(&mut rng, 30, 60, 4);
        let h = wl_hash(&g, 3);
        for _ in 0..5 {
            let mut perm: Vec<u32> = (0..30).collect();
            perm.shuffle(&mut rng);
            let p = permute(&g, &perm);
            assert_eq!(wl_hash(&p, 3), h, "hash changed under relabeling");
        }
    }

    #[test]
    fn different_structures_differ() {
        let a = path(&[0, 0, 0, 0]);
        let mut b = path(&[0, 0, 0, 0]);
        b.add_edge(NodeId(0), NodeId(3)).unwrap(); // cycle vs path
        assert_ne!(wl_hash(&a, 3), wl_hash(&b, 3));
        // label difference alone separates too
        let c = path(&[0, 0, 0, 1]);
        assert_ne!(wl_hash(&a, 3), wl_hash(&c, 3));
    }

    #[test]
    fn direction_matters() {
        let mut fwd = Graph::new_directed();
        let a = fwd.add_node(NodeLabel(0));
        let b = fwd.add_node(NodeLabel(1));
        fwd.add_edge(a, b).unwrap();
        let mut rev = Graph::new_directed();
        let x = rev.add_node(NodeLabel(0));
        let y = rev.add_node(NodeLabel(1));
        rev.add_edge(y, x).unwrap();
        assert_ne!(wl_hash(&fwd, 2), wl_hash(&rev, 2));
    }

    #[test]
    fn color_classes_track_symmetry() {
        // a cycle of identical labels is vertex-transitive: 1 class
        let mut cycle = path(&[0, 0, 0, 0, 0]);
        cycle.add_edge(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(wl_color_classes(&cycle, 3), 1);
        // a path breaks the symmetry: ends / next-to-ends / middle
        let p = path(&[0, 0, 0, 0, 0]);
        assert_eq!(wl_color_classes(&p, 3), 3);
    }

    #[test]
    fn dataset_variants_are_distinct() {
        let ds = crate::generate::gnm(&mut ChaCha8Rng::seed_from_u64(9), 40, 80, 5);
        let (mutant, _) = crate::generate::mutate(
            &mut ChaCha8Rng::seed_from_u64(10),
            &ds,
            &crate::generate::MutationRates::mild(),
            5,
        );
        assert_ne!(wl_hash(&ds, 3), wl_hash(&mutant, 3));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new_undirected();
        assert_eq!(wl_colors(&g, 3).len(), 0);
        assert_eq!(wl_color_classes(&g, 3), 0);
        // hash is defined and stable
        assert_eq!(wl_hash(&g, 3), wl_hash(&Graph::new_undirected(), 3));
    }
}
