//! Graph database persistence.
//!
//! Two formats:
//! * **JSON** via serde — lossless round trip of a whole [`GraphDb`]
//!   including vocabularies and group maps.
//! * A **line-oriented text format** for human-editable fixtures, one block
//!   per graph:
//!
//!   ```text
//!   graph <name> [directed]
//!   v <label-name> ...            # one line per node, id = position
//!   e <u> <v> [edge-label]        # one line per edge
//!   ```

use crate::db::GraphDb;
use crate::graph::{Direction, Graph, NodeId};
use crate::{GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serializes a [`GraphDb`] as JSON to `w`.
pub fn write_json<W: Write>(db: &GraphDb, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    serde_json::to_writer(&mut w, db)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a [`GraphDb`] from JSON.
pub fn read_json<R: Read>(r: R) -> Result<GraphDb> {
    Ok(serde_json::from_reader(BufReader::new(r))?)
}

/// Saves a db as JSON at `path`, atomically: the bytes are staged in a
/// temp sibling, fsynced, and renamed into place, so a crash mid-save
/// leaves the previous file intact rather than a truncated one.
pub fn save_json(db: &GraphDb, path: &Path) -> Result<()> {
    let mut buf = Vec::new();
    write_json(db, &mut buf)?;
    tale_storage::atomic::write_atomic(path, &buf)?;
    Ok(())
}

/// Loads a JSON db from `path`.
pub fn load_json(path: &Path) -> Result<GraphDb> {
    read_json(std::fs::File::open(path)?)
}

/// Writes the text format described in the module docs.
pub fn write_text<W: Write>(db: &GraphDb, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    for (id, name, g) in db.iter() {
        let _ = id;
        if g.is_directed() {
            writeln!(w, "graph {name} directed")?;
        } else {
            writeln!(w, "graph {name}")?;
        }
        for n in g.nodes() {
            let lbl = db.node_vocab().name(g.label(n).0).unwrap_or("?");
            writeln!(w, "v {lbl}")?;
        }
        for (u, v, l) in g.edges() {
            match l.and_then(|l| db.edge_vocab().name(l.0)) {
                Some(el) => writeln!(w, "e {} {} {}", u.0, v.0, el)?,
                None => writeln!(w, "e {} {}", u.0, v.0)?,
            }
        }
    }
    w.flush()?;
    Ok(())
}

/// Parses the text format into a fresh [`GraphDb`].
pub fn read_text<R: Read>(r: R) -> Result<GraphDb> {
    let mut db = GraphDb::new();
    let mut current: Option<(String, Graph)> = None;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        match tag {
            "graph" => {
                if let Some((name, g)) = current.take() {
                    db.insert(name, g);
                }
                let name = parts
                    .next()
                    .ok_or_else(|| GraphError::Parse {
                        line: lineno,
                        msg: "graph line needs a name".into(),
                    })?
                    .to_owned();
                let dir = match parts.next() {
                    Some("directed") => Direction::Directed,
                    Some(other) => {
                        return Err(GraphError::Parse {
                            line: lineno,
                            msg: format!("unknown graph modifier {other:?}"),
                        })
                    }
                    None => Direction::Undirected,
                };
                current = Some((name, Graph::new(dir)));
            }
            "v" => {
                let (_, g) = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "node before any graph header".into(),
                })?;
                let lbl = parts.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "v line needs a label".into(),
                })?;
                let lbl = db.intern_node_label(lbl);
                g.add_node(lbl);
            }
            "e" => {
                let (_, g) = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "edge before any graph header".into(),
                })?;
                let parse_id = |s: Option<&str>| -> Result<NodeId> {
                    let s = s.ok_or_else(|| GraphError::Parse {
                        line: lineno,
                        msg: "e line needs two node ids".into(),
                    })?;
                    let v: u32 = s.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        msg: format!("bad node id {s:?}"),
                    })?;
                    Ok(NodeId(v))
                };
                let u = parse_id(parts.next())?;
                let v = parse_id(parts.next())?;
                match parts.next() {
                    Some(el) => {
                        let el = db.intern_edge_label(el);
                        g.add_edge_labeled(u, v, el)
                    }
                    None => g.add_edge(u, v),
                }
                .map_err(|e| GraphError::Parse {
                    line: lineno,
                    msg: e.to_string(),
                })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: format!("unknown line tag {other:?}"),
                })
            }
        }
    }
    if let Some((name, g)) = current.take() {
        db.insert(name, g);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NodeLabel;

    fn sample_db() -> GraphDb {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("ALA");
        let b = db.intern_node_label("GLY");
        let strong = db.intern_edge_label("strong");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(a);
        g.add_edge_labeled(n0, n1, strong).unwrap();
        g.add_edge(n1, n2).unwrap();
        db.insert("g0", g);
        let mut d = Graph::new_directed();
        let x = d.add_node(b);
        let y = d.add_node(a);
        d.add_edge(x, y).unwrap();
        db.insert("g1", d);
        db
    }

    #[test]
    fn json_roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_json(&db, &mut buf).unwrap();
        let back = read_json(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.name(crate::GraphId(0)), "g0");
        let g = back.graph(crate::GraphId(0));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label(NodeId(0)), NodeLabel(0));
        assert!(back.graph(crate::GraphId(1)).is_directed());
    }

    #[test]
    fn text_roundtrip() {
        let db = sample_db();
        let mut buf = Vec::new();
        write_text(&db, &mut buf).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        let g0 = back.graph(crate::GraphId(0));
        assert_eq!(g0.node_count(), 3);
        assert_eq!(g0.edge_count(), 2);
        assert_eq!(back.node_vocab().name(g0.label(NodeId(0)).0), Some("ALA"));
        let e = g0.edge_between(NodeId(0), NodeId(1)).unwrap();
        let el = g0.edge_label(e).unwrap();
        assert_eq!(back.edge_vocab().name(el.0), Some("strong"));
        assert!(back.graph(crate::GraphId(1)).is_directed());
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let bad = "graph g\nv A\ne 0 5\n";
        let err = read_text(bad.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn text_rejects_orphan_lines() {
        assert!(read_text("v A\n".as_bytes()).is_err());
        assert!(read_text("e 0 1\n".as_bytes()).is_err());
        assert!(read_text("wat\n".as_bytes()).is_err());
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# fixture\n\ngraph g\nv A\nv B\n\ne 0 1\n";
        let db = read_text(src.as_bytes()).unwrap();
        assert_eq!(db.graph(crate::GraphId(0)).edge_count(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db.json");
        save_json(&db, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back.len(), db.len());
    }
}
