//! Random graph generators and perturbation operators.
//!
//! These are the building blocks the `tale-datasets` crate uses to
//! synthesize BIND-like protein interaction networks (power-law graphs) and
//! ASTRAL-like contact graphs (locally clustered graphs), and to model the
//! paper's "noisy and incomplete" real data (§I) via node/edge
//! insertion/deletion mutations.
//!
//! All generators take an explicit RNG so every dataset is reproducible
//! from a seed.

use crate::graph::{Graph, NodeId};
use crate::labels::NodeLabel;
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: `n` nodes, `m` distinct random edges, labels drawn
/// uniformly from `0..label_count`.
pub fn gnm<R: Rng>(rng: &mut R, n: usize, m: usize, label_count: u32) -> Graph {
    let mut g = Graph::new_undirected();
    for _ in 0..n {
        g.add_node(NodeLabel(rng.gen_range(0..label_count.max(1))));
    }
    if n < 2 {
        return g;
    }
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut added = 0;
    while added < m {
        let u = NodeId(rng.gen_range(0..n as u32));
        let v = NodeId(rng.gen_range(0..n as u32));
        if u == v || g.has_edge(u, v) {
            continue;
        }
        g.add_edge(u, v).expect("checked for loop/dup");
        added += 1;
    }
    g
}

/// Barabási–Albert-style preferential attachment: each new node attaches to
/// `m_per_node` existing nodes chosen proportionally to degree. Produces the
/// power-law degree distribution typical of protein interaction networks —
/// a few hub proteins, many peripheral ones — which is exactly the structure
/// TALE's importance-first matching exploits (§V-A, Fig. 1).
///
/// `edge_factor` tunes the average degree below `m_per_node` by skipping
/// attachments with probability `1 - edge_factor`, letting us hit the
/// paper's sparse PIN edge/node ratios (e.g. human 11260/8470 ≈ 1.33).
pub fn preferential_attachment<R: Rng>(
    rng: &mut R,
    n: usize,
    m_per_node: usize,
    edge_factor: f64,
    label_count: u32,
) -> Graph {
    let mut g = Graph::new_undirected();
    if n == 0 {
        return g;
    }
    // repeated-endpoints list: node i appears degree(i)+1 times so isolated
    // early nodes can still be chosen.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_per_node);
    for i in 0..n {
        let node = g.add_node(NodeLabel(rng.gen_range(0..label_count.max(1))));
        endpoints.push(node.0);
        if i == 0 {
            continue;
        }
        // BTreeSet: deterministic iteration order (a HashSet here would
        // leak per-instance hash seeds into the generated topology).
        let mut targets = std::collections::BTreeSet::new();
        let tries = m_per_node * 4 + 8;
        for _ in 0..tries {
            if targets.len() >= m_per_node.min(i) {
                break;
            }
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != node.0 {
                targets.insert(t);
            }
        }
        for t in targets {
            if rng.gen_bool(edge_factor.clamp(0.0, 1.0)) && !g.has_edge(node, NodeId(t)) {
                g.add_edge(node, NodeId(t)).expect("checked");
                endpoints.push(node.0);
                endpoints.push(t);
            }
        }
    }
    g
}

/// Locally clustered "contact graph" generator: nodes are placed along a
/// backbone chain (consecutive nodes connected, like a protein's amino-acid
/// sequence) and additionally connected to close-by nodes with probability
/// decaying in sequence distance, plus a few long-range contacts. This
/// mimics the 7Å-threshold contact graphs of §VI-A: high local clustering,
/// ~4 average degree, 20 amino-acid labels.
pub fn contact_graph<R: Rng>(
    rng: &mut R,
    n: usize,
    target_edges: usize,
    label_count: u32,
) -> Graph {
    let mut g = Graph::new_undirected();
    for _ in 0..n {
        g.add_node(NodeLabel(rng.gen_range(0..label_count.max(1))));
    }
    if n < 2 {
        return g;
    }
    // backbone
    for i in 0..n - 1 {
        g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1)).unwrap();
    }
    let mut edges = n - 1;
    let max_edges = n * (n - 1) / 2;
    let target = target_edges.min(max_edges);
    let mut guard = 0usize;
    while edges < target && guard < target * 50 {
        guard += 1;
        let u = rng.gen_range(0..n as u32);
        // short-range contact with 85% probability, long-range otherwise
        let v = if rng.gen_bool(0.85) {
            let span = rng.gen_range(2..=8u32);
            if rng.gen_bool(0.5) && u >= span {
                u - span
            } else {
                (u + span).min(n as u32 - 1)
            }
        } else {
            rng.gen_range(0..n as u32)
        };
        if u == v {
            continue;
        }
        let (u, v) = (NodeId(u), NodeId(v));
        if g.has_edge(u, v) {
            continue;
        }
        g.add_edge(u, v).unwrap();
        edges += 1;
    }
    g
}

/// Parameters for [`mutate`]: each rate is the expected fraction of the
/// corresponding population affected.
#[derive(Debug, Clone, Copy)]
pub struct MutationRates {
    /// Fraction of nodes deleted (with incident edges).
    pub node_delete: f64,
    /// Fraction (of original node count) of fresh nodes inserted, each wired
    /// to 1–3 random survivors.
    pub node_insert: f64,
    /// Fraction of surviving edges deleted.
    pub edge_delete: f64,
    /// Fraction (of original edge count) of random new edges inserted.
    pub edge_insert: f64,
    /// Fraction of surviving nodes whose label is resampled.
    pub relabel: f64,
}

impl MutationRates {
    /// A mild distortion preset used in tests and examples.
    pub fn mild() -> Self {
        MutationRates {
            node_delete: 0.05,
            node_insert: 0.05,
            edge_delete: 0.05,
            edge_insert: 0.05,
            relabel: 0.02,
        }
    }
}

/// Applies node/edge insertions, deletions and relabels — the approximate
/// matching model's noise operations (§III) — returning the mutated graph
/// and, for each surviving original node, its new id
/// (`None` = deleted).
pub fn mutate<R: Rng>(
    rng: &mut R,
    g: &Graph,
    rates: &MutationRates,
    label_count: u32,
) -> (Graph, Vec<Option<NodeId>>) {
    let n = g.node_count();
    // 1. choose survivors
    let mut survivors: Vec<NodeId> = g.nodes().collect();
    survivors.shuffle(rng);
    let keep = n - ((n as f64) * rates.node_delete).round() as usize;
    survivors.truncate(keep.max(1).min(n));
    survivors.sort_unstable();

    let mut out = Graph::new(g.direction());
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    for &s in &survivors {
        let label = if rng.gen_bool(rates.relabel.clamp(0.0, 1.0)) {
            NodeLabel(rng.gen_range(0..label_count.max(1)))
        } else {
            g.label(s)
        };
        map[s.idx()] = Some(out.add_node(label));
    }
    // 2. copy surviving edges, dropping some
    for (u, v, l) in g.edges() {
        if let (Some(nu), Some(nv)) = (map[u.idx()], map[v.idx()]) {
            if rng.gen_bool(rates.edge_delete.clamp(0.0, 1.0)) {
                continue;
            }
            let r = match l {
                Some(l) => out.add_edge_labeled(nu, nv, l),
                None => out.add_edge(nu, nv),
            };
            r.expect("copying simple edges stays simple");
        }
    }
    // 3. insert fresh nodes
    let inserts = ((n as f64) * rates.node_insert).round() as usize;
    for _ in 0..inserts {
        let nn = out.add_node(NodeLabel(rng.gen_range(0..label_count.max(1))));
        let wires = rng.gen_range(1..=3usize);
        for _ in 0..wires {
            if out.node_count() < 2 {
                break;
            }
            let t = NodeId(rng.gen_range(0..out.node_count() as u32));
            if t != nn && !out.has_edge(nn, t) {
                out.add_edge(nn, t).unwrap();
            }
        }
    }
    // 4. insert random edges
    let new_edges = ((g.edge_count() as f64) * rates.edge_insert).round() as usize;
    let mut added = 0;
    let mut guard = 0;
    while added < new_edges && guard < new_edges * 30 + 30 && out.node_count() >= 2 {
        guard += 1;
        let u = NodeId(rng.gen_range(0..out.node_count() as u32));
        let v = NodeId(rng.gen_range(0..out.node_count() as u32));
        if u == v || out.has_edge(u, v) {
            continue;
        }
        out.add_edge(u, v).unwrap();
        added += 1;
    }
    (out, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn gnm_respects_counts() {
        let g = gnm(&mut rng(), 50, 120, 5);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 120);
        for n in g.nodes() {
            assert!(g.label(n).0 < 5);
        }
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = gnm(&mut rng(), 5, 100, 2);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn gnm_degenerate() {
        let g = gnm(&mut rng(), 0, 10, 3);
        assert_eq!(g.node_count(), 0);
        let g1 = gnm(&mut rng(), 1, 10, 3);
        assert_eq!(g1.edge_count(), 0);
    }

    #[test]
    fn preferential_attachment_is_skewed() {
        let g = preferential_attachment(&mut rng(), 500, 2, 0.8, 10);
        assert_eq!(g.node_count(), 500);
        assert!(g.edge_count() > 300);
        let mut degs: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // hubs exist: the max degree should far exceed the median
        assert!(degs[0] >= 3 * degs[250].max(1));
    }

    #[test]
    fn contact_graph_hits_edge_target() {
        let g = contact_graph(&mut rng(), 200, 740, 20);
        assert_eq!(g.node_count(), 200);
        assert!(g.edge_count() >= 700, "got {}", g.edge_count());
        // backbone connectivity
        let d = g.bfs_distances(NodeId(0));
        assert!(d.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn mutate_identity_rates_is_isomorphic_copy() {
        let g = gnm(&mut rng(), 30, 60, 4);
        let zero = MutationRates {
            node_delete: 0.0,
            node_insert: 0.0,
            edge_delete: 0.0,
            edge_insert: 0.0,
            relabel: 0.0,
        };
        let (m, map) = mutate(&mut rng(), &g, &zero, 4);
        assert_eq!(m.node_count(), 30);
        assert_eq!(m.edge_count(), 60);
        for n in g.nodes() {
            let nn = map[n.idx()].unwrap();
            assert_eq!(m.label(nn), g.label(n));
        }
        for (u, v, _) in g.edges() {
            assert!(m.has_edge(map[u.idx()].unwrap(), map[v.idx()].unwrap()));
        }
    }

    #[test]
    fn mutate_deletes_and_inserts() {
        let g = gnm(&mut rng(), 100, 200, 4);
        let rates = MutationRates {
            node_delete: 0.2,
            node_insert: 0.1,
            edge_delete: 0.1,
            edge_insert: 0.1,
            relabel: 0.0,
        };
        let (m, map) = mutate(&mut rng(), &g, &rates, 4);
        let survivors = map.iter().filter(|x| x.is_some()).count();
        assert_eq!(survivors, 80);
        assert_eq!(m.node_count(), 80 + 10);
        // surviving nodes keep labels when relabel = 0
        for n in g.nodes() {
            if let Some(nn) = map[n.idx()] {
                assert_eq!(m.label(nn), g.label(n));
            }
        }
    }

    #[test]
    fn mutate_keeps_at_least_one_node() {
        let g = gnm(&mut rng(), 3, 2, 2);
        let rates = MutationRates {
            node_delete: 1.0,
            node_insert: 0.0,
            edge_delete: 0.0,
            edge_insert: 0.0,
            relabel: 0.0,
        };
        let (m, _) = mutate(&mut rng(), &g, &rates, 2);
        assert!(m.node_count() >= 1);
    }
}
