//! Label vocabularies (`Σv`, `Σe`) and string interning.
//!
//! The paper's graphs carry node labels drawn from a vocabulary `Σv` and
//! optional edge labels from `Σe` (§III). The NH-Index cares about the
//! *size* of `Σv` (it switches between a deterministic neighbor array and a
//! Bloom-hashed one, §IV-A), so labels are interned to dense `u32` ids and
//! the interner exposes the vocabulary size.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense interned node label. `NodeLabel(0)` is the first label registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeLabel(pub u32);

/// Dense interned edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeLabel(pub u32);

/// Interns label strings to dense ids and back.
///
/// The same interner type serves both node and edge vocabularies; a
/// [`crate::GraphDb`] owns one of each.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl LabelInterner {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        if self.index.is_empty() && !self.names.is_empty() {
            self.rebuild_index();
        }
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned label by name.
    pub fn get(&self, name: &str) -> Option<u32> {
        if self.index.is_empty() && !self.names.is_empty() {
            // Deserialized interners arrive without the side index; fall back
            // to a linear scan rather than requiring &mut self here.
            return self.names.iter().position(|n| n == name).map(|i| i as u32);
        }
        self.index.get(name).copied()
    }

    /// Returns the name for a dense id, if in range.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct labels interned so far (`|Σ|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
    }

    /// Rebuilds the name→id map after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut li = LabelInterner::new();
        let a = li.intern("ALA");
        let b = li.intern("GLY");
        assert_eq!(li.intern("ALA"), a);
        assert_eq!(li.intern("GLY"), b);
        assert_ne!(a, b);
        assert_eq!(li.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut li = LabelInterner::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(li.intern(name), i as u32);
        }
        assert_eq!(li.name(2), Some("c"));
        assert_eq!(li.name(4), None);
    }

    #[test]
    fn get_without_index_after_deserialize() {
        let mut li = LabelInterner::new();
        li.intern("x");
        li.intern("y");
        let json = serde_json::to_string(&li).unwrap();
        let de: LabelInterner = serde_json::from_str(&json).unwrap();
        // index is skipped by serde; lookup must still work.
        assert_eq!(de.get("y"), Some(1));
        assert_eq!(de.get("z"), None);
        assert_eq!(de.name(0), Some("x"));
    }

    #[test]
    fn intern_after_deserialize_rebuilds() {
        let mut li = LabelInterner::new();
        li.intern("x");
        let json = serde_json::to_string(&li).unwrap();
        let mut de: LabelInterner = serde_json::from_str(&json).unwrap();
        assert_eq!(de.intern("x"), 0);
        assert_eq!(de.intern("new"), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut li = LabelInterner::new();
        li.intern("p");
        li.intern("q");
        let v: Vec<_> = li.iter().collect();
        assert_eq!(v, vec![(0, "p"), (1, "q")]);
    }
}
