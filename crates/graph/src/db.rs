//! The graph database: a collection of labeled graphs sharing vocabularies.
//!
//! TALE queries run against "a database of large graphs" (§I). A [`GraphDb`]
//! owns the node/edge label vocabularies (so labels are comparable across
//! graphs — essential for the NH-Index, whose B+-tree keys start with the
//! label) and assigns stable [`GraphId`]s.
//!
//! §IV-E's node-mismatch model replaces node labels with *group* labels
//! (e.g. orthologous groups). [`GraphDb`] supports this directly via
//! [`GraphDb::set_group`] / [`GraphDb::effective_label`]: when a group map
//! is installed, every consumer that should see group semantics asks for
//! the effective label.

use crate::graph::{Graph, NodeId};
use crate::labels::{LabelInterner, NodeLabel};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a graph within a [`GraphDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GraphId(pub u32);

impl GraphId {
    /// Index form, for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A named collection of graphs with shared label vocabularies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphDb {
    graphs: Vec<Graph>,
    names: Vec<String>,
    node_labels: LabelInterner,
    edge_labels: LabelInterner,
    /// Optional node-label → group-label map (§IV-E). Group labels live in
    /// their own dense space starting at 0.
    group_of_label: Option<Vec<u32>>,
    group_count: u32,
}

impl GraphDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node label string, usable across all graphs in the db.
    pub fn intern_node_label(&mut self, name: &str) -> NodeLabel {
        NodeLabel(self.node_labels.intern(name))
    }

    /// Interns an edge label string.
    pub fn intern_edge_label(&mut self, name: &str) -> crate::labels::EdgeLabel {
        crate::labels::EdgeLabel(self.edge_labels.intern(name))
    }

    /// Node-label vocabulary (`Σv`).
    pub fn node_vocab(&self) -> &LabelInterner {
        &self.node_labels
    }

    /// Edge-label vocabulary (`Σe`).
    pub fn edge_vocab(&self) -> &LabelInterner {
        &self.edge_labels
    }

    /// Inserts a graph under `name`, returning its id.
    pub fn insert(&mut self, name: impl Into<String>, g: Graph) -> GraphId {
        let id = GraphId(self.graphs.len() as u32);
        self.graphs.push(g);
        self.names.push(name.into());
        id
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Borrow a graph. Panics if out of range (ids come from this db).
    #[inline]
    pub fn graph(&self, id: GraphId) -> &Graph {
        &self.graphs[id.idx()]
    }

    /// Fallible graph lookup.
    pub fn try_graph(&self, id: GraphId) -> Result<&Graph> {
        self.graphs
            .get(id.idx())
            .ok_or(GraphError::GraphOutOfBounds(id))
    }

    /// The name the graph was inserted under.
    pub fn name(&self, id: GraphId) -> &str {
        &self.names[id.idx()]
    }

    /// Looks a graph up by name (linear scan; db-level metadata operation).
    pub fn find_by_name(&self, name: &str) -> Option<GraphId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| GraphId(i as u32))
    }

    /// Iterates `(id, name, graph)`.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (GraphId, &str, &Graph)> {
        self.graphs
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (g, n))| (GraphId(i as u32), n.as_str(), g))
    }

    /// Total node count across all graphs — the NH-Index has exactly this
    /// many indexing units (§IV-A's linear-size claim).
    pub fn total_nodes(&self) -> usize {
        self.graphs.iter().map(Graph::node_count).sum()
    }

    /// Total edge count across all graphs.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(Graph::edge_count).sum()
    }

    /// Installs the §IV-E group-label map: `groups[label] = group id`.
    ///
    /// `groups` must cover every interned node label. Group ids need not be
    /// dense; `group_count` is derived as `max + 1`.
    pub fn set_group(&mut self, groups: Vec<u32>) -> Result<()> {
        if groups.len() < self.node_labels.len() {
            return Err(GraphError::Parse {
                line: 0,
                msg: format!(
                    "group map covers {} labels but vocabulary has {}",
                    groups.len(),
                    self.node_labels.len()
                ),
            });
        }
        self.group_count = groups.iter().copied().max().map_or(0, |m| m + 1);
        self.group_of_label = Some(groups);
        Ok(())
    }

    /// Convenience for building group maps by name: pairs of
    /// `(label name, group name)`; group names are interned densely.
    pub fn set_group_by_names(&mut self, pairs: &[(String, String)]) -> Result<()> {
        let mut group_ids: HashMap<&str, u32> = HashMap::new();
        let mut groups = vec![0u32; self.node_labels.len()];
        let mut next = 0u32;
        let mut assigned = vec![false; self.node_labels.len()];
        for (label, group) in pairs {
            let lid = self
                .node_labels
                .get(label)
                .ok_or_else(|| GraphError::Parse {
                    line: 0,
                    msg: format!("unknown label {label:?} in group map"),
                })?;
            let gid = *group_ids.entry(group.as_str()).or_insert_with(|| {
                let g = next;
                next += 1;
                g
            });
            groups[lid as usize] = gid;
            assigned[lid as usize] = true;
        }
        // Unassigned labels each get their own singleton group, preserving
        // exact-label semantics for them.
        for (i, done) in assigned.iter().enumerate() {
            if !done {
                groups[i] = next;
                next += 1;
            }
        }
        self.group_count = next;
        self.group_of_label = Some(groups);
        Ok(())
    }

    /// True when a group map is installed.
    pub fn has_groups(&self) -> bool {
        self.group_of_label.is_some()
    }

    /// The raw label → group map, if installed (indexed by label id).
    pub fn group_map(&self) -> Option<&[u32]> {
        self.group_of_label.as_deref()
    }

    /// Number of distinct effective labels: group count if groups are
    /// installed, else `|Σv|`.
    pub fn effective_vocab_size(&self) -> usize {
        match &self.group_of_label {
            Some(_) => self.group_count as usize,
            None => self.node_labels.len(),
        }
    }

    /// The label the index/matcher should see for `node` of `graph`:
    /// the group label when groups are installed, the raw label otherwise.
    #[inline]
    pub fn effective_label(&self, graph: GraphId, node: NodeId) -> u32 {
        let raw = self.graphs[graph.idx()].label(node).0;
        match &self.group_of_label {
            Some(map) => map[raw as usize],
            None => raw,
        }
    }

    /// Maps a raw label to its effective (group) label. Raw labels outside
    /// the vocabulary (e.g. a query authored against a different interner)
    /// map to a reserved no-match label past the group space.
    #[inline]
    pub fn effective_of_raw(&self, raw: NodeLabel) -> u32 {
        match &self.group_of_label {
            Some(map) => map
                .get(raw.0 as usize)
                .copied()
                .unwrap_or(self.group_count.saturating_add(raw.0)),
            None => raw.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> (GraphDb, GraphId) {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        g.add_edge(n0, n1).unwrap();
        let id = db.insert("g0", g);
        (db, id)
    }

    #[test]
    fn insert_and_lookup() {
        let (db, id) = tiny_db();
        assert_eq!(db.len(), 1);
        assert_eq!(db.name(id), "g0");
        assert_eq!(db.graph(id).node_count(), 2);
        assert_eq!(db.find_by_name("g0"), Some(id));
        assert_eq!(db.find_by_name("nope"), None);
        assert_eq!(db.total_nodes(), 2);
        assert_eq!(db.total_edges(), 1);
    }

    #[test]
    fn try_graph_out_of_bounds() {
        let (db, _) = tiny_db();
        assert!(db.try_graph(GraphId(9)).is_err());
    }

    #[test]
    fn effective_label_without_groups_is_raw() {
        let (db, id) = tiny_db();
        assert_eq!(db.effective_label(id, NodeId(0)), 0);
        assert_eq!(db.effective_label(id, NodeId(1)), 1);
        assert_eq!(db.effective_vocab_size(), 2);
        assert!(!db.has_groups());
    }

    #[test]
    fn group_map_collapses_labels() {
        let (mut db, id) = tiny_db();
        db.set_group(vec![5, 5]).unwrap();
        assert!(db.has_groups());
        assert_eq!(db.effective_label(id, NodeId(0)), 5);
        assert_eq!(db.effective_label(id, NodeId(1)), 5);
        assert_eq!(db.effective_vocab_size(), 6);
    }

    #[test]
    fn group_map_must_cover_vocab() {
        let (mut db, _) = tiny_db();
        assert!(db.set_group(vec![0]).is_err());
    }

    #[test]
    fn group_by_names_assigns_singletons() {
        let mut db = GraphDb::new();
        db.intern_node_label("p1");
        db.intern_node_label("p2");
        db.intern_node_label("lonely");
        db.set_group_by_names(&[("p1".into(), "orth1".into()), ("p2".into(), "orth1".into())])
            .unwrap();
        assert_eq!(
            db.effective_of_raw(NodeLabel(0)),
            db.effective_of_raw(NodeLabel(1))
        );
        assert_ne!(
            db.effective_of_raw(NodeLabel(0)),
            db.effective_of_raw(NodeLabel(2))
        );
    }

    #[test]
    fn group_by_names_unknown_label_errors() {
        let mut db = GraphDb::new();
        db.intern_node_label("x");
        let err = db.set_group_by_names(&[("missing".into(), "g".into())]);
        assert!(err.is_err());
    }

    #[test]
    fn iter_order_is_insertion() {
        let (mut db, _) = tiny_db();
        db.insert("g1", Graph::new_undirected());
        let names: Vec<_> = db.iter().map(|(_, n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["g0", "g1"]);
    }
}
