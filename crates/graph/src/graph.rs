//! The labeled graph structure (§III of the paper).
//!
//! A graph `G = (V, E)` with node labels `φ: V → Σv` and optional edge
//! labels `ψ: E → Σe`. Nodes carry unique, ordered ids ([`NodeId`] is the
//! dense insertion index). Both undirected (the paper's presentation
//! default) and directed graphs are supported; the NH-Index and matcher
//! treat directed graphs per the extended-paper adaptation (out-neighbors
//! define the neighborhood).

use crate::labels::{EdgeLabel, NodeLabel};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// Dense node identifier, unique and ordered within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form, for slice access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Dense edge identifier (insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// Whether edges are interpreted as directed or undirected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// `(u, v)` connects both ways; degree counts each incident edge once.
    Undirected,
    /// `(u, v)` goes from `u` to `v`; neighborhoods use out-edges.
    Directed,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeRecord {
    u: NodeId,
    v: NodeId,
    label: Option<EdgeLabel>,
}

/// An adjacency-list labeled graph.
///
/// ```
/// use tale_graph::{Graph, NodeLabel};
///
/// let mut g = Graph::new_undirected();
/// let a = g.add_node(NodeLabel(0));
/// let b = g.add_node(NodeLabel(1));
/// g.add_edge(a, b).unwrap();
/// assert_eq!(g.degree(a), 1);
/// assert!(g.has_edge(b, a)); // undirected
/// assert!(g.add_edge(a, b).is_err()); // simple graph: no parallel edges
/// ```
///
/// Invariants:
/// * simple: no self loops, no parallel edges (checked on insert);
/// * `NodeId`s are dense `0..node_count()`;
/// * adjacency lists are kept sorted by neighbor id, enabling O(log d)
///   `has_edge` and deterministic iteration order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    direction: Direction,
    labels: Vec<NodeLabel>,
    /// Outgoing adjacency: `(neighbor, edge)` sorted by neighbor id.
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    /// Incoming adjacency; only maintained for directed graphs.
    radj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<EdgeRecord>,
}

impl Graph {
    /// Creates an empty undirected graph.
    pub fn new_undirected() -> Self {
        Self::new(Direction::Undirected)
    }

    /// Creates an empty directed graph.
    pub fn new_directed() -> Self {
        Self::new(Direction::Directed)
    }

    /// Creates an empty graph with the given edge direction semantics.
    pub fn new(direction: Direction) -> Self {
        Graph {
            direction,
            labels: Vec::new(),
            adj: Vec::new(),
            radj: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Edge direction semantics of this graph.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// True for directed graphs.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: NodeLabel) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.adj.push(Vec::new());
        if self.is_directed() {
            self.radj.push(Vec::new());
        }
        id
    }

    /// Adds an unlabeled edge. See [`Graph::add_edge_labeled`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<EdgeId> {
        self.add_edge_opt(u, v, None)
    }

    /// Adds an edge carrying label `l`.
    pub fn add_edge_labeled(&mut self, u: NodeId, v: NodeId, l: EdgeLabel) -> Result<EdgeId> {
        self.add_edge_opt(u, v, Some(l))
    }

    fn add_edge_opt(&mut self, u: NodeId, v: NodeId, label: Option<EdgeLabel>) -> Result<EdgeId> {
        let n = self.labels.len() as u32;
        if u.0 >= n {
            return Err(GraphError::NodeOutOfBounds(u));
        }
        if v.0 >= n {
            return Err(GraphError::NodeOutOfBounds(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let eid = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord { u, v, label });
        match self.direction {
            Direction::Undirected => {
                Self::insert_sorted(&mut self.adj[u.idx()], v, eid);
                Self::insert_sorted(&mut self.adj[v.idx()], u, eid);
            }
            Direction::Directed => {
                Self::insert_sorted(&mut self.adj[u.idx()], v, eid);
                Self::insert_sorted(&mut self.radj[v.idx()], u, eid);
            }
        }
        Ok(eid)
    }

    fn insert_sorted(list: &mut Vec<(NodeId, EdgeId)>, nb: NodeId, eid: EdgeId) {
        let pos = list.partition_point(|(n, _)| *n < nb);
        list.insert(pos, (nb, eid));
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Label of node `n`. Panics if out of bounds.
    #[inline]
    pub fn label(&self, n: NodeId) -> NodeLabel {
        self.labels[n.idx()]
    }

    /// Fallible label lookup.
    pub fn try_label(&self, n: NodeId) -> Result<NodeLabel> {
        self.labels
            .get(n.idx())
            .copied()
            .ok_or(GraphError::NodeOutOfBounds(n))
    }

    /// Degree of `n`: incident edges for undirected graphs, out-degree for
    /// directed graphs (the extended paper's neighborhood convention).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.idx()].len()
    }

    /// In-degree; equals [`Graph::degree`] for undirected graphs.
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        match self.direction {
            Direction::Undirected => self.adj[n.idx()].len(),
            Direction::Directed => self.radj[n.idx()].len(),
        }
    }

    /// Iterates node ids `0..|V|`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Neighbors of `n` (out-neighbors when directed), ascending by id.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.adj[n.idx()].iter().map(|&(nb, _)| nb)
    }

    /// `(neighbor, edge-id)` pairs for `n`, ascending by neighbor id.
    #[inline]
    pub fn neighbor_edges(
        &self,
        n: NodeId,
    ) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[n.idx()].iter().copied()
    }

    /// In-neighbors of `n`; same as `neighbors` for undirected graphs.
    pub fn in_neighbors(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        let list = match self.direction {
            Direction::Undirected => &self.adj[n.idx()],
            Direction::Directed => &self.radj[n.idx()],
        };
        list.iter().map(|&(nb, _)| nb)
    }

    /// True when an edge `u→v` (or `u—v`) exists. O(log degree).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.idx()]
            .binary_search_by_key(&v, |&(n, _)| n)
            .is_ok()
    }

    /// Edge id of `u→v` if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj[u.idx()]
            .binary_search_by_key(&v, |&(n, _)| n)
            .ok()
            .map(|i| self.adj[u.idx()][i].1)
    }

    /// Label of edge `e`, if it carries one.
    pub fn edge_label(&self, e: EdgeId) -> Option<EdgeLabel> {
        self.edges[e.0 as usize].label
    }

    /// Endpoints `(u, v)` of edge `e` in insertion orientation.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let r = &self.edges[e.0 as usize];
        (r.u, r.v)
    }

    /// Iterates all edges as `(u, v, label)` in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (NodeId, NodeId, Option<EdgeLabel>)> + '_ {
        self.edges.iter().map(|r| (r.u, r.v, r.label))
    }

    /// Collects the set of nodes exactly two hops from `n` (excluding `n`
    /// and its immediate neighbors). Used by `ExamineNodesNearBy`
    /// (Algorithm 3) to extend matches past the 1-hop frontier.
    pub fn two_hop_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.neighbors_within(n, 2)
    }

    /// Collects the nodes at distance `2..=k` from `n` (excluding `n` and
    /// its immediate neighbors), sorted by id. `k = 2` is the paper's
    /// default extension radius; larger values implement the "more than
    /// two-hops away" generalization Algorithm 3's discussion mentions,
    /// at increased matching cost. Distance is over the *underlying
    /// undirected* graph: for matching, "nearby" means reachable in
    /// either direction — a pathway's upstream neighbors are as near as
    /// its downstream ones — while edge-preservation checks stay
    /// direction-aware.
    pub fn neighbors_within(&self, n: NodeId, k: u8) -> Vec<NodeId> {
        let mut seen = vec![false; self.node_count()];
        seen[n.idx()] = true;
        let mut frontier: Vec<NodeId> = self.undirected_neighbors(n);
        for nb in &frontier {
            seen[nb.idx()] = true;
        }
        let mut out = Vec::new();
        for _hop in 2..=k {
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.neighbors(u).chain(self.in_neighbors(u)) {
                    if !seen[v.idx()] {
                        seen[v.idx()] = true;
                        next.push(v);
                    }
                }
            }
            out.extend_from_slice(&next);
            frontier = next;
        }
        out.sort_unstable();
        out
    }

    /// Neighbors in the underlying undirected graph: out ∪ in, sorted,
    /// deduplicated. Equals [`Graph::neighbors`] for undirected graphs.
    pub fn undirected_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        match self.direction {
            Direction::Undirected => self.neighbors(n).collect(),
            Direction::Directed => {
                let mut v: Vec<NodeId> = self.neighbors(n).chain(self.in_neighbors(n)).collect();
                v.sort_unstable();
                v.dedup();
                v
            }
        }
    }

    /// Number of edges among the neighbors of `n` — the paper's *neighbor
    /// connection* (§IV-A; the black node in Fig. 1 has value 5). For
    /// directed graphs the neighborhood is the out-neighbor set and every
    /// directed edge within it counts once (the extended paper's
    /// adaptation).
    pub fn neighbor_connection(&self, n: NodeId) -> usize {
        let nbs = &self.adj[n.idx()];
        if nbs.len() < 2 {
            return 0;
        }
        let mut count = 0;
        for &(a, _) in nbs {
            for b in self.neighbors(a) {
                // Undirected adjacency lists mention each edge twice, so
                // count only the (a < b) orientation; directed edges appear
                // once and are counted as seen.
                if (self.is_directed() || b > a)
                    && nbs.binary_search_by_key(&b, |&(x, _)| x).is_ok()
                {
                    count += 1;
                }
            }
        }
        count
    }

    /// Induced subgraph on `nodes`; returns the new graph and the mapping
    /// from old to new ids (positions in `nodes`). Preserves labels.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new(self.direction);
        let mut map = vec![NodeId(u32::MAX); self.node_count()];
        for &n in nodes {
            map[n.idx()] = g.add_node(self.label(n));
        }
        for &n in nodes {
            for (nb, eid) in self.neighbor_edges(n) {
                if map[nb.idx()].0 == u32::MAX {
                    continue;
                }
                // Undirected edges appear in both adjacency lists; only add
                // from the smaller endpoint to avoid duplicates.
                if !self.is_directed() && nb < n {
                    continue;
                }
                let l = self.edge_label(eid);
                let (nu, nv) = (map[n.idx()], map[nb.idx()]);
                let res = match l {
                    Some(l) => g.add_edge_labeled(nu, nv, l),
                    None => g.add_edge(nu, nv),
                };
                res.expect("induced subgraph preserves simplicity");
            }
        }
        let new_ids = nodes.iter().map(|&n| map[n.idx()]).collect();
        (g, new_ids)
    }

    /// Breadth-first distances from `src` (`u32::MAX` = unreachable).
    pub fn bfs_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.idx()] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.idx()];
            for v in self.neighbors(u) {
                if dist[v.idx()] == u32::MAX {
                    dist[v.idx()] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(NodeLabel(0))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn add_and_query_nodes_edges() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(1));
        let b = g.add_node(NodeLabel(2));
        let c = g.add_node(NodeLabel(1));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(a), 1);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(!g.has_edge(a, c));
        assert_eq!(g.label(c), NodeLabel(1));
    }

    #[test]
    fn rejects_self_loop_and_duplicate() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        assert!(matches!(g.add_edge(a, a), Err(GraphError::SelfLoop(_))));
        g.add_edge(a, b).unwrap();
        assert!(matches!(
            g.add_edge(b, a),
            Err(GraphError::DuplicateEdge(_, _))
        ));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        assert!(matches!(
            g.add_edge(a, NodeId(5)),
            Err(GraphError::NodeOutOfBounds(_))
        ));
    }

    #[test]
    fn directed_edges_one_way() {
        let mut g = Graph::new_directed();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap();
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 0);
        assert_eq!(g.in_degree(b), 1);
        assert_eq!(g.in_neighbors(b).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn neighbor_connection_matches_fig1_style() {
        // Star center with 4 leaves and 5 edges among leaves is impossible
        // on 4 leaves (max 6); build center with 4 leaves, 5 leaf-leaf edges
        // minus one: use 4 leaves fully connected minus one edge = 5 edges.
        let mut g = Graph::new_undirected();
        let c = g.add_node(NodeLabel(0));
        let ls: Vec<_> = (0..4).map(|_| g.add_node(NodeLabel(1))).collect();
        for &l in &ls {
            g.add_edge(c, l).unwrap();
        }
        let mut cnt = 0;
        'outer: for i in 0..4 {
            for j in (i + 1)..4 {
                if cnt == 5 {
                    break 'outer;
                }
                g.add_edge(ls[i], ls[j]).unwrap();
                cnt += 1;
            }
        }
        assert_eq!(g.neighbor_connection(c), 5);
        assert_eq!(g.degree(c), 4);
    }

    #[test]
    fn neighbor_connection_of_leaf_is_zero() {
        let g = path(3);
        assert_eq!(g.neighbor_connection(NodeId(0)), 0);
        // middle of a path: two neighbors, not adjacent
        assert_eq!(g.neighbor_connection(NodeId(1)), 0);
    }

    #[test]
    fn neighbor_connection_triangle() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        let c = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap();
        for n in [a, b, c] {
            assert_eq!(g.neighbor_connection(n), 1);
        }
    }

    #[test]
    fn two_hop_excludes_self_and_onehop() {
        let g = path(5);
        let th = g.two_hop_neighbors(NodeId(2));
        assert_eq!(th, vec![NodeId(0), NodeId(4)]);
        let th0 = g.two_hop_neighbors(NodeId(0));
        assert_eq!(th0, vec![NodeId(2)]);
    }

    #[test]
    fn undirected_neighbors_merge_directions() {
        let mut g = Graph::new_directed();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        let c = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap(); // out of a
        g.add_edge(c, a).unwrap(); // into a
        assert_eq!(g.undirected_neighbors(a), vec![b, c]);
        // mutual edge pair deduplicates
        let mut m = Graph::new_directed();
        let x = m.add_node(NodeLabel(0));
        let y = m.add_node(NodeLabel(0));
        m.add_edge(x, y).unwrap();
        m.add_edge(y, x).unwrap();
        assert_eq!(m.undirected_neighbors(x), vec![y]);
    }

    #[test]
    fn neighbors_within_traverses_against_direction() {
        // chain a→b→c: from c, node a is 2 hops away undirectedly
        let mut g = Graph::new_directed();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        let c = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.neighbors_within(c, 2), vec![a]);
    }

    #[test]
    fn neighbors_within_radius() {
        let g = path(6);
        assert_eq!(g.neighbors_within(NodeId(0), 2), vec![NodeId(2)]);
        assert_eq!(g.neighbors_within(NodeId(0), 3), vec![NodeId(2), NodeId(3)]);
        assert_eq!(
            g.neighbors_within(NodeId(0), 5),
            vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
        // k = 1 yields nothing beyond the 1-hop ring
        assert!(g.neighbors_within(NodeId(0), 1).is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(1));
        let b = g.add_node(NodeLabel(2));
        let c = g.add_node(NodeLabel(3));
        let d = g.add_node(NodeLabel(4));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, d).unwrap();
        g.add_edge(a, d).unwrap();
        let (sub, ids) = g.induced_subgraph(&[a, b, c]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2); // a-b, b-c survive; c-d, a-d cut
        assert_eq!(sub.label(ids[0]), NodeLabel(1));
        assert_eq!(sub.label(ids[2]), NodeLabel(3));
        assert!(sub.has_edge(ids[0], ids[1]));
        assert!(!sub.has_edge(ids[0], ids[2]));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(4);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let mut g = Graph::new_undirected();
        g.add_node(NodeLabel(0));
        g.add_node(NodeLabel(0));
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(d[1], u32::MAX);
    }

    #[test]
    fn edge_labels_roundtrip() {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        let e = g.add_edge_labeled(a, b, EdgeLabel(7)).unwrap();
        assert_eq!(g.edge_label(e), Some(EdgeLabel(7)));
        assert_eq!(g.edge_endpoints(e), (a, b));
        assert_eq!(g.edge_between(a, b), Some(e));
        assert_eq!(g.edge_between(b, a), Some(e));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::new_undirected();
        let n: Vec<_> = (0..5).map(|_| g.add_node(NodeLabel(0))).collect();
        g.add_edge(n[0], n[3]).unwrap();
        g.add_edge(n[0], n[1]).unwrap();
        g.add_edge(n[0], n[4]).unwrap();
        g.add_edge(n[0], n[2]).unwrap();
        let nbs: Vec<_> = g.neighbors(n[0]).collect();
        assert_eq!(nbs, vec![n[1], n[2], n[3], n[4]]);
    }
}
