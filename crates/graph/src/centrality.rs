//! Node-importance measures (§V-A, Observation 1).
//!
//! TALE's matching paradigm "distinguishes nodes by their importance in the
//! graph structure". The paper uses **degree centrality** and explicitly
//! says the definition is customizable — naming closeness, betweenness and
//! eigenvector centralities as candidates. All four are implemented here,
//! plus a seeded random ranking used for the §VI-D TALE-Random ablation.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which importance measure ranks query nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ImportanceMeasure {
    /// Degree centrality — the paper's default (§V-A).
    #[default]
    Degree,
    /// Closeness centrality: inverse of summed BFS distances.
    Closeness,
    /// Betweenness centrality (Brandes' algorithm, unweighted).
    Betweenness,
    /// Eigenvector centrality via power iteration.
    Eigenvector,
    /// Uniform random ranking with the given seed — the §VI-D
    /// "TALE-Random" ablation baseline.
    Random(u64),
}

/// Computes the importance score of every node under `measure`.
/// Higher means more important.
pub fn scores(g: &Graph, measure: ImportanceMeasure) -> Vec<f64> {
    match measure {
        ImportanceMeasure::Degree => degree(g),
        ImportanceMeasure::Closeness => closeness(g),
        ImportanceMeasure::Betweenness => betweenness(g),
        ImportanceMeasure::Eigenvector => eigenvector(g, 100, 1e-9),
        ImportanceMeasure::Random(seed) => random_scores(g, seed),
    }
}

/// Ranks nodes by importance (descending), breaking ties by ascending node
/// id so the selection is deterministic — the paper sorts nodes and takes
/// the top `Pimp` fraction (§V-B).
///
/// ```
/// use tale_graph::{Graph, NodeLabel};
/// use tale_graph::centrality::{rank, ImportanceMeasure};
///
/// let mut g = Graph::new_undirected();
/// let hub = g.add_node(NodeLabel(0));
/// for _ in 0..3 {
///     let leaf = g.add_node(NodeLabel(1));
///     g.add_edge(hub, leaf).unwrap();
/// }
/// assert_eq!(rank(&g, ImportanceMeasure::Degree)[0], hub);
/// ```
pub fn rank(g: &Graph, measure: ImportanceMeasure) -> Vec<NodeId> {
    let s = scores(g, measure);
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by(|a, b| {
        s[b.idx()]
            .partial_cmp(&s[a.idx()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    order
}

/// Selects the top `p_imp` fraction of nodes (at least one when the graph
/// is non-empty), as in §V-B's important-node selection.
pub fn select_important(g: &Graph, measure: ImportanceMeasure, p_imp: f64) -> Vec<NodeId> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    let k = ((g.node_count() as f64 * p_imp).round() as usize).clamp(1, g.node_count());
    let mut top = rank(g, measure);
    top.truncate(k);
    top
}

/// [`select_important`] topped up so every connected component contains at
/// least one selected node — the variant the query pipeline uses.
///
/// The top-up matters because match growing (§V-C) only reaches nodes
/// connected to some anchor: a query component with no important node could
/// never be matched at all. Each uncovered component contributes its
/// best-ranked node (the paper's importance definition is explicitly
/// customizable, §V-A). The result is the §V-B rank prefix followed by the
/// per-component top-ups in rank order.
pub fn select_important_covering(g: &Graph, measure: ImportanceMeasure, p_imp: f64) -> Vec<NodeId> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    let k = ((g.node_count() as f64 * p_imp).round() as usize).clamp(1, g.node_count());
    let ranked = rank(g, measure);
    let mut top: Vec<NodeId> = ranked[..k].to_vec();

    let comp = component_labels(g);
    let ncomp = comp.iter().map(|&c| c + 1).max().unwrap_or(0);
    let mut covered = vec![false; ncomp];
    for n in &top {
        covered[comp[n.idx()]] = true;
    }
    for &n in &ranked[k..] {
        if !covered[comp[n.idx()]] {
            covered[comp[n.idx()]] = true;
            top.push(n);
        }
    }
    top
}

/// Connected-component label per node, in the undirected sense (edge
/// direction ignored), numbered by first-seen node id.
fn component_labels(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(NodeId(s as u32));
        while let Some(u) = stack.pop() {
            for v in g.undirected_neighbors(u) {
                if comp[v.idx()] == usize::MAX {
                    comp[v.idx()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Degree centrality.
pub fn degree(g: &Graph) -> Vec<f64> {
    g.nodes().map(|n| g.degree(n) as f64).collect()
}

/// Closeness centrality: `(reached) / (sum of distances)` per node, with
/// the Wasserman–Faust correction for disconnected graphs; isolated nodes
/// score 0.
pub fn closeness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    if n <= 1 {
        return out;
    }
    for src in g.nodes() {
        let dist = g.bfs_distances(src);
        let mut sum = 0u64;
        let mut reached = 0u64;
        for &d in &dist {
            if d != u32::MAX && d > 0 {
                sum += d as u64;
                reached += 1;
            }
        }
        if sum > 0 {
            // scale by the reachable fraction so small components don't win
            let r = reached as f64;
            out[src.idx()] = (r / (n as f64 - 1.0)) * (r / sum as f64);
        }
    }
    out
}

/// Betweenness centrality, Brandes (2001), unweighted. Undirected pair
/// counting (each shortest path counted once per unordered pair).
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    let mut cb = vec![0.0f64; n];
    let mut stack: Vec<NodeId> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = VecDeque::new();

    for s in g.nodes() {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(i64::MAX);
        delta.fill(0.0);
        sigma[s.idx()] = 1.0;
        dist[s.idx()] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for w in g.neighbors(v) {
                if dist[w.idx()] == i64::MAX {
                    dist[w.idx()] = dist[v.idx()] + 1;
                    queue.push_back(w);
                }
                if dist[w.idx()] == dist[v.idx()] + 1 {
                    sigma[w.idx()] += sigma[v.idx()];
                    preds[w.idx()].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w.idx()] {
                delta[v.idx()] += (sigma[v.idx()] / sigma[w.idx()]) * (1.0 + delta[w.idx()]);
            }
            if w != s {
                cb[w.idx()] += delta[w.idx()];
            }
        }
    }
    if !g.is_directed() {
        for c in cb.iter_mut() {
            *c /= 2.0;
        }
    }
    cb
}

/// Eigenvector centrality via power iteration on the adjacency matrix,
/// normalized to unit max. Converges for connected non-bipartite graphs;
/// elsewhere it still yields a usable ranking after `max_iter`.
pub fn eigenvector(g: &Graph, max_iter: usize, tol: f64) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![1.0f64 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iter {
        next.fill(0.0);
        for u in g.nodes() {
            let xu = x[u.idx()];
            for v in g.neighbors(u) {
                next[v.idx()] += xu;
            }
            if g.is_directed() {
                // keep directed graphs ergodic-ish with a tiny self weight
                next[u.idx()] += 1e-12 * xu;
            }
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return next; // edgeless graph: all zeros
        }
        for v in next.iter_mut() {
            *v /= norm;
        }
        let diff: f64 = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if diff < tol {
            break;
        }
    }
    x
}

fn random_scores(g: &Graph, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..g.node_count()).collect();
    order.shuffle(&mut rng);
    let mut s = vec![0.0; g.node_count()];
    for (rank, idx) in order.into_iter().enumerate() {
        s[idx] = (g.node_count() - rank) as f64;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NodeLabel;

    /// Path a-b-c-d-e: center c has max closeness & betweenness.
    fn path5() -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(NodeLabel(0))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn star(n: usize) -> Graph {
        let mut g = Graph::new_undirected();
        let c = g.add_node(NodeLabel(0));
        for _ in 0..n {
            let l = g.add_node(NodeLabel(1));
            g.add_edge(c, l).unwrap();
        }
        g
    }

    #[test]
    fn degree_centrality_star() {
        let g = star(4);
        let s = degree(&g);
        assert_eq!(s[0], 4.0);
        assert!(s[1..].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn closeness_peaks_at_path_center() {
        let g = path5();
        let s = closeness(&g);
        let best = (0..5)
            .max_by(|&a, &b| s[a].partial_cmp(&s[b]).unwrap())
            .unwrap();
        assert_eq!(best, 2);
        assert!((s[0] - s[4]).abs() < 1e-12); // symmetry
    }

    #[test]
    fn closeness_disconnected_penalized() {
        // two components: an edge pair and a path of 3
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap();
        let c = g.add_node(NodeLabel(0));
        let d = g.add_node(NodeLabel(0));
        let e = g.add_node(NodeLabel(0));
        g.add_edge(c, d).unwrap();
        g.add_edge(d, e).unwrap();
        let s = closeness(&g);
        // d reaches 2 nodes at distance 1; a reaches only 1 node
        assert!(s[d.idx()] > s[a.idx()]);
    }

    #[test]
    fn betweenness_path_center() {
        let g = path5();
        let s = betweenness(&g);
        // exact values on a path of 5: [0, 3, 4, 3, 0]
        assert_eq!(s, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn betweenness_star_center_only() {
        let g = star(4);
        let s = betweenness(&g);
        assert_eq!(s[0], 6.0); // C(4,2) pairs all route through center
        assert!(s[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eigenvector_star_center_max() {
        let g = star(5);
        let s = eigenvector(&g, 200, 1e-12);
        assert!(s[0] > s[1]);
        for i in 2..=5 {
            assert!((s[1] - s[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn rank_is_deterministic_with_ties() {
        let g = star(3);
        let r1 = rank(&g, ImportanceMeasure::Degree);
        let r2 = rank(&g, ImportanceMeasure::Degree);
        assert_eq!(r1, r2);
        assert_eq!(r1[0], NodeId(0));
    }

    #[test]
    fn select_important_takes_fraction() {
        let g = path5();
        let sel = select_important(&g, ImportanceMeasure::Degree, 0.4);
        assert_eq!(sel.len(), 2);
        // middle nodes (degree 2) first
        assert!(sel.iter().all(|n| g.degree(*n) == 2));
    }

    #[test]
    fn select_important_at_least_one() {
        let g = path5();
        let sel = select_important(&g, ImportanceMeasure::Degree, 0.0);
        assert_eq!(sel.len(), 1);
        let none = select_important(&Graph::new_undirected(), ImportanceMeasure::Degree, 0.5);
        assert!(none.is_empty());
    }

    #[test]
    fn random_is_seed_stable() {
        let g = path5();
        let a = rank(&g, ImportanceMeasure::Random(42));
        let b = rank(&g, ImportanceMeasure::Random(42));
        let c = rank(&g, ImportanceMeasure::Random(43));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely for 5! permutations
    }

    #[test]
    fn empty_graph_all_measures() {
        let g = Graph::new_undirected();
        for m in [
            ImportanceMeasure::Degree,
            ImportanceMeasure::Closeness,
            ImportanceMeasure::Betweenness,
            ImportanceMeasure::Eigenvector,
            ImportanceMeasure::Random(1),
        ] {
            assert!(scores(&g, m).is_empty());
        }
    }
}
