//! Descriptive graph statistics.
//!
//! Used by the dataset generators to validate that synthetic graphs have
//! the structural properties the paper's data exhibits (power-law PIN
//! degrees, high local clustering in contact graphs), and by the examples
//! to describe databases. Pure read-only helpers over [`Graph`].

use crate::graph::Graph;

/// Summary statistics of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Median degree.
    pub median_degree: usize,
    /// Global clustering coefficient (transitivity):
    /// `3·triangles / connected triples`.
    pub clustering: f64,
    /// Number of connected components (undirected sense).
    pub components: usize,
    /// Size of the largest component.
    pub largest_component: usize,
}

/// Computes [`GraphStats`] for `g`.
pub fn stats(g: &Graph) -> GraphStats {
    let nodes = g.node_count();
    let edges = g.edge_count();
    let mut degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
    degrees.sort_unstable();
    let (min_degree, max_degree, median_degree, mean_degree) = if nodes == 0 {
        (0, 0, 0, 0.0)
    } else {
        (
            degrees[0],
            degrees[nodes - 1],
            degrees[nodes / 2],
            degrees.iter().sum::<usize>() as f64 / nodes as f64,
        )
    };
    let (comps, largest) = components(g);
    GraphStats {
        nodes,
        edges,
        min_degree,
        max_degree,
        mean_degree,
        median_degree,
        clustering: clustering_coefficient(g),
        components: comps,
        largest_component: largest,
    }
}

/// Global clustering coefficient: closed triples / all connected triples.
/// 0.0 for graphs without any connected triple. Treats directed graphs as
/// undirected neighborhoods (out-edges).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut triangles = 0u64; // counted 3× (once per corner)
    let mut triples = 0u64;
    for n in g.nodes() {
        let d = g.degree(n);
        if d >= 2 {
            triples += (d * (d - 1) / 2) as u64;
        }
        // triangles at corner n = edges among its neighbors
        triangles += g.neighbor_connection(n) as u64;
    }
    if triples == 0 {
        0.0
    } else {
        triangles as f64 / triples as f64
    }
}

/// `(component count, largest component size)` via BFS over undirected
/// reachability (directed edges are traversed both ways).
pub fn components(g: &Graph) -> (usize, usize) {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut count = 0;
    let mut largest = 0;
    let mut queue = std::collections::VecDeque::new();
    for start in g.nodes() {
        if seen[start.idx()] {
            continue;
        }
        count += 1;
        let mut size = 0;
        seen[start.idx()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            size += 1;
            for v in g.neighbors(u).chain(g.in_neighbors(u)) {
                if !seen[v.idx()] {
                    seen[v.idx()] = true;
                    queue.push_back(v);
                }
            }
        }
        largest = largest.max(size);
    }
    (count, largest)
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.nodes().map(|n| g.degree(n)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for n in g.nodes() {
        hist[g.degree(n)] += 1;
    }
    hist
}

/// A crude power-law indicator: the ratio of the 99th-percentile degree to
/// the median degree. Power-law-ish graphs (PINs) score high; homogeneous
/// graphs (lattices, G(n,m)) score near 1.
pub fn degree_skew(g: &Graph) -> f64 {
    let mut degrees: Vec<usize> = g.nodes().map(|n| g.degree(n)).collect();
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.sort_unstable();
    let p99 = degrees[(degrees.len() - 1) * 99 / 100];
    let median = degrees[degrees.len() / 2].max(1);
    p99 as f64 / median as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::NodeLabel;

    fn triangle_plus_isolated() -> Graph {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        let c = g.add_node(NodeLabel(0));
        g.add_node(NodeLabel(0)); // isolated
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap();
        g
    }

    #[test]
    fn stats_of_triangle_plus_isolated() {
        let g = triangle_plus_isolated();
        let s = stats(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
        assert!(
            (s.clustering - 1.0).abs() < 1e-12,
            "triangle is fully clustered"
        );
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let mut g = Graph::new_undirected();
        let c = g.add_node(NodeLabel(0));
        for _ in 0..5 {
            let l = g.add_node(NodeLabel(0));
            g.add_edge(c, l).unwrap();
        }
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new_undirected();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.clustering, 0.0);
    }

    #[test]
    fn degree_histogram_counts() {
        let g = triangle_plus_isolated();
        assert_eq!(degree_histogram(&g), vec![1, 0, 3]);
    }

    #[test]
    fn directed_components_ignore_direction() {
        let mut g = Graph::new_directed();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(0));
        g.add_edge(a, b).unwrap();
        let (comps, largest) = components(&g);
        assert_eq!((comps, largest), (1, 2));
    }

    #[test]
    fn pin_generator_is_skewed_contact_is_clustered() {
        use crate::generate::{contact_graph, preferential_attachment};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let pin = preferential_attachment(&mut rng, 800, 2, 0.9, 50);
        let contact = contact_graph(&mut rng, 200, 760, 20);
        assert!(degree_skew(&pin) >= 3.0, "PIN skew {}", degree_skew(&pin));
        assert!(
            clustering_coefficient(&contact) > clustering_coefficient(&pin),
            "contact graphs should cluster more"
        );
    }
}
