//! Scoped data-parallel helpers for the TALE workspace.
//!
//! The query and index-build paths fan independent per-graph work across
//! threads. This crate provides the one primitive they share:
//! [`parallel_map`], an index-ordered parallel map over
//! [`std::thread::scope`] with dynamic (chunked work-stealing) load
//! balancing. Output order equals input order no matter how the work was
//! scheduled, which is what lets the parallel query path return results
//! bit-identical to the serial one.
//!
//! No external thread-pool crate is used: the build environment is
//! offline, and scoped std threads are sufficient for fan-out/fan-in
//! parallelism over borrowed data.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Threads to use when the caller asked for `requested` (`0` = auto).
///
/// Auto resolves to [`std::thread::available_parallelism`]; explicit
/// requests are honored as-is (callers cap by work-item count).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `0..len` on up to `threads` OS threads, returning results
/// in index order.
///
/// Work is distributed dynamically in small chunks via a shared atomic
/// cursor, so uneven per-item cost (one huge database graph among many
/// small ones) doesn't serialize on the unluckiest thread. Falls back to
/// a plain serial loop when `threads <= 1` or there is at most one item.
///
/// # Panics
/// Propagates a panic from any invocation of `f` (after all workers have
/// been joined).
pub fn parallel_map<R, F>(threads: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(len).max(1);
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }

    // Chunked claiming: big enough to amortize the atomic, small enough
    // to balance skewed workloads.
    let chunk = (len / (threads * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        for i in start..end {
                            local.push((i, f(i)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => parts.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Scatter back into index order — the deterministic merge.
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    for (i, v) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} computed twice");
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index computed exactly once"))
        .collect()
}

/// [`parallel_map`] over a slice, in slice order.
pub fn parallel_map_slice<'a, T, R, F>(threads: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    parallel_map(threads, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 3, 8, 64] {
            let out = parallel_map(threads, 100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_tiny() {
        assert!(parallel_map(4, 0, |i| i).is_empty());
        assert_eq!(parallel_map(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_map(7, 1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn slice_variant_borrows_items() {
        let words = ["alpha", "beta", "gamma"];
        let out = parallel_map_slice(2, &words, |w| w.len());
        assert_eq!(out, vec![5, 4, 5]);
    }

    #[test]
    fn skewed_costs_still_ordered() {
        // One expensive item among many cheap ones must not disturb order.
        let out = parallel_map(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = parallel_map(4, 16, |i| {
            if i == 9 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
