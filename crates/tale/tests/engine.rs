//! Behavior contracts of the staged query engine: canonical-signature
//! invariance, result-cache correctness (bit-identical hits, zero index
//! traffic, generation-keyed survival across mutations), and
//! batch/sequential equivalence at every thread count.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use tale::{canonical_signature, QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::wl::permute;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};

const LABELS: u32 = 6;

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 40, 80, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn same_results(a: &[QueryMatch], b: &[QueryMatch]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.graph == y.graph
                && x.score == y.score
                && x.matched_nodes == y.matched_nodes
                && x.matched_edges == y.matched_edges
                && x.m.pairs == y.m.pairs
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The canonical signature is a function of the labeled structure,
    /// not the node numbering: any relabeling maps to the same value.
    #[test]
    fn canonical_signature_is_relabeling_invariant(
        seed in 0u64..1000,
        n in 2usize..40,
        perm_seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = n + n / 2;
        let g = gnm(&mut rng, n, m, 5);
        let label_of = |x: NodeId| g.label(x).0;
        let h = canonical_signature(&g, &label_of);

        let mut prng = ChaCha8Rng::seed_from_u64(perm_seed);
        let mut perm: Vec<u32> = (0..n as u32).collect();
        use rand::seq::SliceRandom;
        perm.shuffle(&mut prng);
        let p = permute(&g, &perm);
        let p_label = |x: NodeId| p.label(x).0;
        prop_assert_eq!(
            canonical_signature(&p, &p_label),
            h,
            "canonical signature changed under relabeling"
        );
    }
}

#[test]
fn canonical_signature_separates_structures_and_labels() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = gnm(&mut rng, 30, 60, 5);
    let (m, _) = mutate(&mut rng, &g, &MutationRates::mild(), 5);
    let lg = |x: NodeId| g.label(x).0;
    let lm = |x: NodeId| m.label(x).0;
    assert_ne!(canonical_signature(&g, &lg), canonical_signature(&m, &lm));
}

/// A warm cache hit returns bit-identical results and never touches the
/// disk index — checked through the NH-Index probe counters.
#[test]
fn cache_hit_is_bit_identical_and_probes_nothing() {
    let (db, originals) = corpus(21, 5);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    };
    let q = &originals[0];

    let cold = tale.query(q, &opts).unwrap();
    assert!(!cold.is_empty(), "workload produced no matches");

    let before = tale.index().counters();
    let (warm, stats) = tale.query_with_stats(q, &opts).unwrap();
    let delta = tale.index().counters().since(before);
    assert!(stats.cache_hit, "second identical query must hit the cache");
    assert_eq!(delta.probes, 0, "a cache hit must not probe the index");
    assert_eq!(delta.postings_fetched, 0);
    assert!(same_results(&cold, &warm));

    let cs = tale.result_cache_stats();
    assert!(cs.hits >= 1 && cs.insertions >= 1);

    // A relabeled copy of the same pattern shares the canonical key but
    // is a different exact query: the stored representation check must
    // reject it and recompute rather than serve the other graph's entry.
    let mut prng = ChaCha8Rng::seed_from_u64(3);
    let mut perm: Vec<u32> = (0..q.node_count() as u32).collect();
    use rand::seq::SliceRandom;
    perm.shuffle(&mut prng);
    assert!(perm.iter().enumerate().any(|(i, &p)| i as u32 != p));
    let pq = permute(q, &perm);
    let before = tale.index().counters();
    let (_, pstats) = tale.query_with_stats(&pq, &opts).unwrap();
    let delta = tale.index().counters().since(before);
    assert!(!pstats.cache_hit, "a relabeled variant must not hit");
    assert!(delta.probes > 0, "a miss must consult the index");
}

/// `use_cache: false` bypasses the cache in both directions: no lookups
/// served, nothing stored.
#[test]
fn cache_can_be_bypassed() {
    let (db, originals) = corpus(22, 3);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions::default().with_cache(false);
    let q = &originals[0];
    let a = tale.query(q, &opts).unwrap();
    let before = tale.index().counters();
    let (b, stats) = tale.query_with_stats(q, &opts).unwrap();
    let delta = tale.index().counters().since(before);
    assert!(!stats.cache_hit);
    assert!(delta.probes > 0 || a.is_empty());
    assert!(same_results(&a, &b));
    assert_eq!(tale.result_cache_stats().insertions, 0);
}

/// `query_batch` must equal N standalone `query` calls bit for bit, at
/// every thread count, with and without repeated queries in the batch.
#[test]
fn query_batch_matches_sequential_queries_at_every_thread_count() {
    let (db, originals) = corpus(23, 6);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    // repeats exercise the whole-query dedup path
    let batch: Vec<&Graph> = originals.iter().chain(originals.iter().take(2)).collect();
    let base = QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    }
    .with_cache(false);

    let reference: Vec<Vec<QueryMatch>> = batch
        .iter()
        .map(|q| tale.query(q, &base.clone().with_threads(1)).unwrap())
        .collect();

    for threads in [0usize, 1, 2, 4] {
        let opts = base.clone().with_threads(threads);
        let got = tale.query_batch(&batch, &opts).unwrap();
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert!(
                same_results(g, r),
                "batch result diverged for query {i} at threads={threads}"
            );
        }
    }
}

/// Batch statistics expose the amortization: repeated queries collapse
/// to unique ones and shared signatures are probed once.
#[test]
fn batch_stats_expose_amortization() {
    let (db, originals) = corpus(24, 4);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let batch: Vec<&Graph> = originals.iter().chain(originals.iter()).collect();
    let opts = QueryOptions {
        p_imp: 0.25,
        ..Default::default()
    }
    .with_cache(false);
    let (results, stats) = tale.query_batch_with_stats(&batch, &opts).unwrap();
    assert_eq!(results.len(), batch.len());
    assert_eq!(stats.queries, batch.len());
    assert_eq!(stats.unique_queries, originals.len());
    assert!(stats.probes_issued <= stats.probes_requested);
    assert_eq!(stats.per_query.len(), batch.len());
    // duplicate queries report the same probe traffic as their twin
    for (a, b) in stats.per_query[..originals.len()]
        .iter()
        .zip(&stats.per_query[originals.len()..])
    {
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.candidates, b.candidates);
    }
}

/// Removal evicts nothing: every cached entry stays resident and keeps
/// hitting with zero index traffic, because the engine filters cached
/// lists through the snapshot's tombstone set at read time — removal can
/// only delete matches, so the filtered entry is still exactly correct.
#[test]
fn remove_graph_keeps_cache_entries_and_filters_tombstones() {
    // two label families that can never match each other's queries
    // (condition IV.1 filters on exact effective labels)
    let mut db = GraphDb::new();
    let a_labels: Vec<_> = (0..3)
        .map(|i| db.intern_node_label(&format!("A{i}")))
        .collect();
    let b_labels: Vec<_> = (0..3)
        .map(|i| db.intern_node_label(&format!("B{i}")))
        .collect();
    let ring = |labels: &[tale_graph::NodeLabel]| {
        let mut g = Graph::new_undirected();
        let n: Vec<_> = (0..8)
            .map(|i| g.add_node(labels[i % labels.len()]))
            .collect();
        for i in 0..8 {
            g.add_edge(n[i], n[(i + 1) % 8]).unwrap();
        }
        g.add_edge(n[0], n[4]).unwrap();
        g
    };
    let qa = ring(&a_labels);
    let qb = ring(&b_labels);
    db.insert("a0", qa.clone());
    db.insert("a1", qa.clone());
    db.insert("b0", qb.clone());
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions {
        p_imp: 0.5,
        ..Default::default()
    };

    let cold_a = tale.query(&qa, &opts).unwrap();
    assert!(cold_a.iter().any(|r| r.graph == GraphId(0)));
    let cold_b = tale.query(&qb, &opts).unwrap();
    assert!(!cold_b.is_empty() && cold_b.iter().all(|r| r.graph == GraphId(2)));
    // each query stores one partial list per reader (base + delta)
    assert_eq!(tale.result_cache_stats().entries, 4);

    tale.remove_graph(GraphId(0)).unwrap();
    assert_eq!(
        tale.result_cache_stats().entries,
        4,
        "removal must not evict any cache entry"
    );

    // the disjoint entry still hits, with zero index traffic
    let before = tale.index().counters();
    let (warm_b, sb) = tale.query_with_stats(&qb, &opts).unwrap();
    assert!(sb.cache_hit, "disjoint entry must survive the removal");
    assert_eq!(tale.index().counters().since(before).probes, 0);
    assert!(same_results(&cold_b, &warm_b));

    // the intersecting entry ALSO still hits — the removed graph is
    // filtered out of the cached list at lookup time, never served
    let before = tale.index().counters();
    let (after_a, sa) = tale.query_with_stats(&qa, &opts).unwrap();
    assert!(
        sa.cache_hit,
        "the entry containing the removed graph serves filtered, not evicted"
    );
    assert_eq!(tale.index().counters().since(before).probes, 0);
    assert!(after_a.iter().all(|r| r.graph != GraphId(0)));
    assert!(after_a.iter().any(|r| r.graph == GraphId(1)));
    // and the filtered hit equals the cold result minus the tombstone
    let expect: Vec<QueryMatch> = cold_a
        .iter()
        .filter(|r| r.graph != GraphId(0))
        .cloned()
        .collect();
    assert!(same_results(&expect, &after_a));
}

/// The headline bugfix: mutations no longer clear the cache. Insert rolls
/// only the delta reader's generation, so the base-generation entry keeps
/// serving a repeat query with **zero on-disk probes** — only the
/// in-memory delta overlay (which owns the new graph) re-runs. Removal
/// rolls nothing; the tombstone is filtered at read time.
#[test]
fn cache_entries_survive_insert_and_remove() {
    let (db, originals) = corpus(25, 4);
    let extra = originals[1].clone();
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions {
        p_imp: 0.25,
        ..Default::default()
    };
    let q = &originals[0];

    let before_insert = tale.query(q, &opts).unwrap();
    let resident = tale.result_cache_stats().entries;
    assert!(resident > 0);
    tale.insert_graph("late", extra).unwrap();
    assert_eq!(
        tale.result_cache_stats().entries,
        resident,
        "insert_graph must not clear the cache"
    );

    // Repeat query after the insert: the base entry answers from cache —
    // the on-disk index sees zero probes — while the delta overlay runs
    // under its fresh generation to cover the new graph.
    let snap = tale.index().snapshot();
    let disk_before = snap.base().counters();
    let base_hits_before = tale.base_cache_stats().hits;
    let (after_insert, s) = tale.query_with_stats(q, &opts).unwrap();
    assert!(
        !s.cache_hit,
        "the delta generation rolled, so this is not a full hit"
    );
    assert_eq!(
        snap.base().counters().since(disk_before).probes,
        0,
        "base entry must survive the insert: zero on-disk probes"
    );
    assert!(
        tale.base_cache_stats().hits > base_hits_before,
        "repeat query must be served by the base cache"
    );
    // the new graph may add a match; matches against pre-existing graphs
    // are bit-stable because the cached base partial was reused
    let by_graph: HashMap<GraphId, usize> = after_insert
        .iter()
        .map(|r| (r.graph, r.matched_nodes))
        .collect();
    for r in &before_insert {
        assert_eq!(by_graph.get(&r.graph), Some(&r.matched_nodes));
    }

    let resident = tale.result_cache_stats().entries;
    tale.remove_graph(GraphId(0)).unwrap();
    assert_eq!(
        tale.result_cache_stats().entries,
        resident,
        "remove_graph must not evict anything"
    );
    let before = tale.index().counters();
    let (after_remove, s) = tale.query_with_stats(q, &opts).unwrap();
    assert!(
        s.cache_hit,
        "removal keeps both generations, so the repeat query fully hits"
    );
    assert_eq!(tale.index().counters().since(before).probes, 0);
    assert!(
        after_remove.iter().all(|r| r.graph != GraphId(0)),
        "tombstoned graph must be filtered out of the cached result"
    );
}

/// Options that affect results occupy distinct cache entries; `threads`
/// does not (results are thread-invariant).
#[test]
fn cache_key_covers_options_but_not_threads() {
    let (db, originals) = corpus(26, 3);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let q = &originals[0];
    let opts = QueryOptions {
        p_imp: 0.25,
        ..Default::default()
    };
    let _ = tale.query(q, &opts).unwrap();
    // same query at a different thread count: same entry, hits
    let (_, s) = tale
        .query_with_stats(q, &opts.clone().with_threads(2))
        .unwrap();
    assert!(s.cache_hit, "thread count must not split cache entries");
    // different rho: different entry, misses
    let (_, s) = tale
        .query_with_stats(
            q,
            &QueryOptions {
                rho: 0.5,
                p_imp: 0.25,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!s.cache_hit, "result-affecting options must split entries");
}
