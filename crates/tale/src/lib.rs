//! TALE — a Tool for Approximate Large graph matching Efficiently
//! (Tian & Patel, ICDE 2008).
//!
//! This crate is the public face of the reproduction: build a
//! [`TaleDatabase`] over a [`tale_graph::GraphDb`] (constructing the
//! disk-resident NH-Index), then run approximate subgraph queries with
//! [`TaleDatabase::query`]. The pipeline is exactly the paper's (Fig. 4):
//!
//! 1. select the query's important nodes (top `Pimp` fraction by the
//!    configured importance measure, degree centrality by default);
//! 2. probe the NH-Index for each important node (conditions IV.1–IV.4,
//!    Algorithm 1), score hits with Eq. IV.5;
//! 3. per candidate database graph, resolve hits into one-to-one anchors
//!    by maximum-weight bipartite matching;
//! 4. grow each anchored match with Algorithms 2–4;
//! 5. rank matches under a pluggable similarity model and return the
//!    top-K.
//!
//! ```no_run
//! use tale::{TaleDatabase, TaleParams, QueryOptions};
//! use tale_graph::{GraphDb, Graph};
//!
//! let mut db = GraphDb::new();
//! let a = db.intern_node_label("A");
//! let b = db.intern_node_label("B");
//! let mut g = Graph::new_undirected();
//! let n0 = g.add_node(a);
//! let n1 = g.add_node(b);
//! g.add_edge(n0, n1).unwrap();
//! db.insert("toy", g.clone());
//!
//! let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
//! let results = tale.query(&g, &QueryOptions::default()).unwrap();
//! assert_eq!(results[0].matched_nodes, 2);
//! ```

mod database;
pub mod engine;
pub mod journal;
mod params;
mod result;
mod scratch;

pub use database::TaleDatabase;
pub use engine::cache::{options_fingerprint, CacheStats, DEFAULT_CACHE_ENTRIES, PLAN_VERSION};
pub use engine::plan::{canonical_signature, PlanNode, PlanReport, ProbeReport, ShardPlan};
pub use engine::stats::{BatchStats, PoolDelta, QueryStats, ShardStats, StageTimes};
pub use journal::DbRecovery;
pub use params::{PlanMode, QueryOptions, TaleParams};
pub use result::QueryMatch;
pub use scratch::ScratchDir;
pub use tale_graph::centrality::ImportanceMeasure;
pub use tale_matching::similarity::{CTreeStyle, MatchedNodesEdges, QualitySum, SimilarityModel};

/// Errors surfaced by the TALE API.
#[derive(Debug)]
pub enum TaleError {
    /// Index-layer failure.
    Index(tale_nhindex::NhError),
    /// Graph-layer failure.
    Graph(tale_graph::GraphError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaleError::Index(e) => write!(f, "index: {e}"),
            TaleError::Graph(e) => write!(f, "graph: {e}"),
            TaleError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for TaleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaleError::Index(e) => Some(e),
            TaleError::Graph(e) => Some(e),
            TaleError::Io(e) => Some(e),
        }
    }
}

impl From<tale_nhindex::NhError> for TaleError {
    fn from(e: tale_nhindex::NhError) -> Self {
        TaleError::Index(e)
    }
}

impl From<tale_graph::GraphError> for TaleError {
    fn from(e: tale_graph::GraphError) -> Self {
        TaleError::Graph(e)
    }
}

impl From<std::io::Error> for TaleError {
    fn from(e: std::io::Error) -> Self {
        TaleError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, TaleError>;
