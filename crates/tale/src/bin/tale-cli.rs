//! `tale-cli` — build, inspect and query NH-indexed graph databases from
//! the command line.
//!
//! ```text
//! tale-cli build <graphs.(txt|json)> <index-dir> [--sbit N] [--frames N]
//! tale-cli add   <index-dir> <graphs.(txt|json)>
//! tale-cli stats <index-dir>
//! tale-cli query <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
//!          [--top-k N] [--importance degree|closeness|betweenness|eigenvector|random]
//!          [--hops N] [--similarity quality|nodes-edges|ctree] [--threads N]
//!          [--format text|json] [--stats] [--no-cache]
//! tale-cli verify <index-dir>
//! ```
//!
//! Graph files use the line-oriented text format of `tale_graph::io`
//! (`graph <name>` / `v <label>` / `e <u> <v> [label]`) or the JSON dump.
//! Queries take the *first* graph in the file; its label names are mapped
//! into the database vocabulary (unknown labels simply never match).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use tale::{
    CTreeStyle, ImportanceMeasure, MatchedNodesEdges, QualitySum, QueryOptions, TaleDatabase,
    TaleParams,
};
use tale_graph::labels::NodeLabel;
use tale_graph::{Graph, GraphDb};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tale-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  tale-cli build <graphs.(txt|json)> <index-dir> [--sbit N] [--frames N]
  tale-cli add   <index-dir> <graphs.(txt|json)>
  tale-cli stats <index-dir>
  tale-cli explain <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
  tale-cli verify <index-dir>
  tale-cli query <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
           [--top-k N] [--importance MEASURE] [--hops N] [--similarity MODEL]
           [--threads N] [--format text|json] [--stats] [--no-cache]

measures: degree (default) | closeness | betweenness | eigenvector | random
models:   quality (default) | nodes-edges | ctree
threads:  0 = one per core (default); 1 = serial; N = worker cap
stats:    print per-stage engine statistics (probe traffic, pool hit
          rate, stage wall clock); with --format json, wraps the output
          as {\"matches\": [...], \"stats\": {...}}
no-cache: bypass the query-result cache for this run
";

/// Positional arguments and `--flag value` pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Flags that take no value; they parse as `(name, "")`.
const BOOL_FLAGS: &[&str] = &["stats", "no-cache"];

/// Pulls `--flag value` pairs (and bare boolean flags) out of an argument
/// list; returns (positional, flags).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.push((name, ""));
                i += 1;
                continue;
            }
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, v.as_str()));
            i += 2;
        } else {
            pos.push(a);
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn parse<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("bad value {v:?} for --{name}"))
}

fn load_db(path: &Path) -> Result<GraphDb, String> {
    let is_json = path.extension().is_some_and(|e| e == "json");
    let result = if is_json {
        tale_graph::io::load_json(path)
    } else {
        std::fs::File::open(path)
            .map_err(tale_graph::GraphError::from)
            .and_then(tale_graph::io::read_text)
    };
    result.map_err(|e| format!("loading {}: {e}", path.display()))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [input, dir] = pos.as_slice() else {
        return Err(format!("build needs <graphs> <index-dir>\n{USAGE}"));
    };
    let mut params = TaleParams::default();
    for (name, v) in flags {
        match name {
            "sbit" => params.sbit = parse(name, v)?,
            "frames" => params.buffer_frames = parse(name, v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let db = load_db(Path::new(input))?;
    let (graphs, nodes, edges) = (db.len(), db.total_nodes(), db.total_edges());
    let start = std::time::Instant::now();
    let tale = TaleDatabase::build(db, Path::new(dir), &params).map_err(|e| e.to_string())?;
    println!(
        "indexed {graphs} graphs ({nodes} nodes, {edges} edges) in {:.2}s",
        start.elapsed().as_secs_f64()
    );
    println!(
        "index: {} distinct keys, {} bytes at {dir}",
        tale.index().key_count(),
        tale.index_size_bytes()
    );
    Ok(())
}

fn cmd_add(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_args(args)?;
    let [dir, input] = pos.as_slice() else {
        return Err(format!("add needs <index-dir> <graphs>\n{USAGE}"));
    };
    let mut tale = TaleDatabase::open(Path::new(dir), 4096).map_err(|e| e.to_string())?;
    let incoming = load_db(Path::new(input))?;
    let mut added = 0;
    for (gid, name, src) in incoming.iter() {
        let _ = gid;
        // remap labels by name, interning new ones into the live vocabulary
        let mut g = Graph::new(src.direction());
        for n in src.nodes() {
            let label_name = incoming
                .node_vocab()
                .name(src.label(n).0)
                .unwrap_or("?")
                .to_owned();
            let l = tale.intern_node_label(&label_name);
            g.add_node(l);
        }
        for (u, v, _) in src.edges() {
            g.add_edge(u, v).map_err(|e| e.to_string())?;
        }
        tale.insert_graph(name.to_owned(), g)
            .map_err(|e| e.to_string())?;
        added += 1;
    }
    println!(
        "added {added} graphs; index now covers {} graphs / {} nodes",
        tale.db().len(),
        tale.index().node_count()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("stats needs <index-dir>\n{USAGE}"));
    };
    let tale = TaleDatabase::open(Path::new(dir), 1024).map_err(|e| e.to_string())?;
    println!("graphs           : {}", tale.db().len());
    println!("total nodes      : {}", tale.db().total_nodes());
    println!("total edges      : {}", tale.db().total_edges());
    println!("node labels |Σv| : {}", tale.db().node_vocab().len());
    println!(
        "group labels     : {}",
        if tale.db().has_groups() { "yes" } else { "no" }
    );
    println!("index keys       : {}", tale.index().key_count());
    println!("index bytes      : {}", tale.index_size_bytes());
    let s = tale.index().scheme();
    println!(
        "neighbor arrays  : Sbit={} ({})",
        s.sbit,
        if s.deterministic {
            "deterministic"
        } else {
            "Bloom"
        }
    );
    for (id, name, g) in tale.db().iter() {
        let _ = id;
        let st = tale_graph::stats::stats(g);
        println!(
            "  {name}: {} nodes, {} edges, max degree {}, clustering {:.3}",
            st.nodes, st.edges, st.max_degree, st.clustering
        );
    }
    Ok(())
}

/// Shows, per important query node, how the index conditions prune —
/// the §IV access-path story for one concrete query.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir, query_path] = pos.as_slice() else {
        return Err(format!("explain needs <index-dir> <query>\n{USAGE}"));
    };
    let mut rho = 0.25f64;
    let mut pimp = 0.15f64;
    for (name, v) in flags {
        match name {
            "rho" => rho = parse(name, v)?,
            "pimp" => pimp = parse(name, v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let tale = TaleDatabase::open(Path::new(dir), 4096).map_err(|e| e.to_string())?;
    let qdb = load_db(&PathBuf::from(query_path))?;
    if qdb.is_empty() {
        return Err("query file holds no graphs".into());
    }
    let query = remap_query(&qdb, tale.db());
    let important =
        tale_graph::centrality::select_important(&query, ImportanceMeasure::Degree, pimp);
    println!(
        "query: {} nodes / {} edges; {} important nodes at Pimp={pimp}, rho={rho}\n",
        query.node_count(),
        query.edge_count(),
        important.len()
    );
    println!("node  degree  nbconn  keys-scanned  postings  rows-examined  candidates");
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    for &n in &important {
        let sig = tale
            .index()
            .signature(&query, n, &|x| tale.db().effective_of_raw(query.label(x)));
        let (hits, st) = tale
            .index()
            .probe_with_stats(&sig, rho)
            .map_err(|e| e.to_string())?;
        println!(
            "{:>4}  {:>6}  {:>6}  {:>12}  {:>8}  {:>13}  {:>10}",
            n.0,
            sig.degree,
            sig.nb_connection,
            st.keys_scanned,
            st.postings_fetched,
            st.rows_examined,
            hits.len()
        );
        totals.0 += st.keys_scanned;
        totals.1 += st.postings_fetched;
        totals.2 += st.rows_examined;
        totals.3 += hits.len() as u64;
    }
    println!(
        "\ntotals: {} keys scanned, {} postings, {} rows examined, {} anchor candidates",
        totals.0, totals.1, totals.2, totals.3
    );
    println!(
        "pruning: {:.1}% of examined rows survived condition IV.3",
        if totals.2 == 0 {
            0.0
        } else {
            100.0 * totals.3 as f64 / totals.2 as f64
        }
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir, query_path] = pos.as_slice() else {
        return Err(format!("query needs <index-dir> <query>\n{USAGE}"));
    };
    let mut opts = QueryOptions::default();
    let mut json = false;
    let mut want_stats = false;
    for (name, v) in flags {
        match name {
            "stats" => want_stats = true,
            "no-cache" => opts.use_cache = false,
            "format" => {
                json = match v {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "rho" => opts.rho = parse(name, v)?,
            "pimp" => opts.p_imp = parse(name, v)?,
            "top-k" => opts.top_k = Some(parse(name, v)?),
            "hops" => opts.hops = parse(name, v)?,
            "threads" => opts.threads = parse(name, v)?,
            "importance" => {
                opts.importance = match v {
                    "degree" => ImportanceMeasure::Degree,
                    "closeness" => ImportanceMeasure::Closeness,
                    "betweenness" => ImportanceMeasure::Betweenness,
                    "eigenvector" => ImportanceMeasure::Eigenvector,
                    "random" => ImportanceMeasure::Random(0),
                    other => return Err(format!("unknown importance {other:?}")),
                }
            }
            "similarity" => {
                opts.similarity = match v {
                    "quality" => Arc::new(QualitySum),
                    "nodes-edges" => Arc::new(MatchedNodesEdges),
                    "ctree" => Arc::new(CTreeStyle),
                    other => return Err(format!("unknown similarity {other:?}")),
                }
            }
            other => return Err(format!("unknown flag --{other}")),
        }
    }

    let tale = TaleDatabase::open(Path::new(dir), 4096).map_err(|e| e.to_string())?;
    let qdb = load_db(&PathBuf::from(query_path))?;
    if qdb.is_empty() {
        return Err("query file holds no graphs".into());
    }
    let query = remap_query(&qdb, tale.db());

    let start = std::time::Instant::now();
    let (results, stats) = tale
        .query_with_stats(&query, &opts)
        .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    if json {
        #[derive(serde::Serialize)]
        struct WithStats {
            matches: Vec<tale::QueryMatch>,
            stats: tale::QueryStats,
        }
        let out = if want_stats {
            serde_json::to_string_pretty(&WithStats {
                matches: results,
                stats,
            })
        } else {
            serde_json::to_string_pretty(&results)
        }
        .map_err(|e| e.to_string())?;
        println!("{out}");
        return Ok(());
    }
    println!(
        "query: {} nodes, {} edges → {} matches in {:.3}s (ρ={}, Pimp={})",
        query.node_count(),
        query.edge_count(),
        results.len(),
        secs,
        opts.rho,
        opts.p_imp
    );
    for (rank, m) in results.iter().enumerate() {
        println!(
            "#{:<3} {:24} score {:>8.3}  nodes {:>4}  edges {:>4}",
            rank + 1,
            m.graph_name,
            m.score,
            m.matched_nodes,
            m.matched_edges
        );
    }
    if want_stats {
        println!();
        print_query_stats(&stats);
    }
    Ok(())
}

fn print_query_stats(s: &tale::QueryStats) {
    println!("engine stats:");
    if s.cache_hit {
        println!("  result cache     : HIT (index untouched)");
    } else {
        println!("  result cache     : miss");
        println!("  important nodes  : {}", s.important_nodes);
        println!(
            "  index probes     : {} ({} shared)",
            s.probes, s.probes_shared
        );
        println!("  keys scanned     : {}", s.keys_scanned);
        println!("  postings fetched : {}", s.postings_fetched);
        println!("  rows examined    : {}", s.rows_examined);
        println!(
            "  candidates       : {} nodes across {} graphs",
            s.candidates, s.candidate_graphs
        );
    }
    println!(
        "  pool hit rate    : {:.1}% ({} hits / {} misses)",
        100.0 * s.pool.hit_rate(),
        s.pool.hits,
        s.pool.misses
    );
    println!(
        "  stages (s)       : plan {:.4} | probe {:.4} | match {:.4} | rank {:.4} | total {:.4}",
        s.stages.plan_secs,
        s.stages.probe_secs,
        s.stages.match_secs,
        s.stages.rank_secs,
        s.stages.total_secs
    );
}

/// Walks every page of both index files (checksum verification happens
/// on each read) and exercises a full B+-tree scan plus a probe per
/// distinct label — a DBA-style integrity check.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("verify needs <index-dir>\n{USAGE}"));
    };
    let tale = TaleDatabase::open(Path::new(dir), 256).map_err(|e| e.to_string())?;
    // consistency: index node count equals database node count minus
    // tombstoned graphs' nodes (we can't see tombstones here, so ≤)
    let db_nodes = tale.db().total_nodes() as u64;
    let idx_nodes = tale.index().node_count();
    if idx_nodes > db_nodes {
        return Err(format!(
            "index claims {idx_nodes} nodes but the database holds {db_nodes}"
        ));
    }
    // full index sweep: probe one representative signature per graph; any
    // corrupt page or malformed posting surfaces as an error here
    let mut probed = 0u64;
    for (gid, _, g) in tale.db().iter() {
        if let Some(n) = g.nodes().next() {
            let sig = tale
                .index()
                .signature(g, n, &|x| tale.db().effective_label(gid, x));
            tale.index()
                .probe(&sig, 1.0)
                .map_err(|e| format!("probe failed for graph {}: {e}", gid.0))?;
            probed += 1;
        }
    }
    println!(
        "ok: {} graphs, {} indexed nodes, {} distinct keys, {} bytes; {probed} probe paths verified",
        tale.db().len(),
        idx_nodes,
        tale.index().key_count(),
        tale.index_size_bytes()
    );
    Ok(())
}

/// Rebuilds the query graph with the *database's* label ids (matched by
/// name). Labels the database has never seen get fresh ids past its
/// vocabulary, so they can never match — the right semantics for a filter.
fn remap_query(qdb: &GraphDb, target: &GraphDb) -> Graph {
    let src = qdb.graph(tale_graph::GraphId(0));
    let mut out = Graph::new(src.direction());
    let mut next_unknown = target.node_vocab().len() as u32;
    for n in src.nodes() {
        let name = qdb.node_vocab().name(src.label(n).0).unwrap_or("?");
        let id = target.node_vocab().get(name).unwrap_or_else(|| {
            let id = next_unknown;
            next_unknown += 1;
            id
        });
        out.add_node(NodeLabel(id));
    }
    for (u, v, _) in src.edges() {
        out.add_edge(u, v).expect("copying a simple graph");
    }
    out
}
