//! [`TaleDatabase`]: the indexed graph database and the query pipeline.

use crate::params::{QueryOptions, TaleParams};
use crate::result::QueryMatch;
use crate::scratch::ScratchDir;
use crate::Result;
use std::collections::HashMap;
use std::path::Path;
use tale_graph::centrality::select_important_covering;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_matching::bipartite::{greedy_matching, max_weight_matching, WeightedEdge};
use tale_matching::grow::{grow_match, Anchor, CandidateScorer, GrowConfig, GrowInput};
use tale_matching::similarity::MatchContext;
use tale_nhindex::{node_match_quality, NhIndex, NhIndexConfig, NodeCandidate};

const DB_FILE: &str = "graphs.json";

/// An indexed graph database ready for approximate subgraph queries.
///
/// Owns the [`GraphDb`] (graphs + vocabularies + optional §IV-E group map)
/// and the disk-resident NH-Index built over it.
pub struct TaleDatabase {
    db: GraphDb,
    index: NhIndex,
    // Keeps the scratch directory alive for in-temp builds.
    _scratch: Option<ScratchDir>,
}

impl TaleDatabase {
    /// Builds the NH-Index for `db` into `dir` and persists the graphs
    /// alongside it, so [`TaleDatabase::open`] can restore everything.
    pub fn build(db: GraphDb, dir: &Path, params: &TaleParams) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let config = NhIndexConfig {
            sbit: params.sbit,
            buffer_frames: params.buffer_frames,
            parallel_build: params.parallel_build,
            bloom_hashes: params.bloom_hashes,
            use_edge_labels: params.use_edge_labels,
        };
        let index = NhIndex::build(dir, &db, &config)?;
        tale_graph::io::save_json(&db, &dir.join(DB_FILE))?;
        Ok(TaleDatabase {
            db,
            index,
            _scratch: None,
        })
    }

    /// Builds into a self-cleaning scratch directory — convenient for
    /// experiments and tests. The index is still genuinely disk-based; it
    /// just lives in the OS temp dir for this process's lifetime.
    pub fn build_in_temp(db: GraphDb, params: &TaleParams) -> Result<Self> {
        let scratch = ScratchDir::new("tale-index")?;
        let config = NhIndexConfig {
            sbit: params.sbit,
            buffer_frames: params.buffer_frames,
            parallel_build: params.parallel_build,
            bloom_hashes: params.bloom_hashes,
            use_edge_labels: params.use_edge_labels,
        };
        let index = NhIndex::build(scratch.path(), &db, &config)?;
        Ok(TaleDatabase {
            db,
            index,
            _scratch: Some(scratch),
        })
    }

    /// Reopens a database previously built with [`TaleDatabase::build`].
    pub fn open(dir: &Path, buffer_frames: usize) -> Result<Self> {
        let db = tale_graph::io::load_json(&dir.join(DB_FILE))?;
        let index = NhIndex::open(dir, buffer_frames)?;
        Ok(TaleDatabase {
            db,
            index,
            _scratch: None,
        })
    }

    /// Adds a graph to the database and incrementally extends the
    /// NH-Index (no rebuild) — the growing-database scenario the paper's
    /// introduction motivates. The graph must use this database's label
    /// vocabulary. Returns the new graph's id.
    ///
    /// For on-disk databases ([`TaleDatabase::build`]), the persisted
    /// graph set is updated too, so [`TaleDatabase::open`] sees the new
    /// graph after this call returns.
    pub fn insert_graph(&mut self, name: impl Into<String>, g: Graph) -> Result<GraphId> {
        let gid = self.db.insert(name, g);
        self.index.insert_graph(&self.db, gid)?;
        if self._scratch.is_none() {
            // persistent build: keep graphs.json in sync with the index
            let dir = self.index_dir().to_owned();
            tale_graph::io::save_json(&self.db, &dir.join(DB_FILE))?;
        }
        Ok(gid)
    }

    /// Logically removes a graph from query results (tombstone in the
    /// index; space is reclaimed by rebuilding). The graph's id and data
    /// remain readable through [`TaleDatabase::db`].
    pub fn remove_graph(&mut self, id: GraphId) -> Result<()> {
        self.index
            .remove_graph(id, self.db.effective_vocab_size() as u64)?;
        Ok(())
    }

    /// Rebuilds the database without tombstoned graphs, reclaiming the
    /// dead posting space `remove_graph` leaves behind. Graph ids are
    /// re-assigned (compaction renumbers); vocabulary and group map are
    /// preserved. On-disk databases are rebuilt in place; in-temp
    /// databases get a fresh scratch directory.
    pub fn compact(self, params: &TaleParams) -> Result<TaleDatabase> {
        let mut fresh = GraphDb::new();
        for (_, name) in self.db.node_vocab().iter() {
            fresh.intern_node_label(name);
        }
        for (_, name) in self.db.edge_vocab().iter() {
            fresh.intern_edge_label(name);
        }
        if let Some(groups) = self.db.group_map() {
            fresh.set_group(groups.to_vec())?;
        }
        for (id, name, g) in self.db.iter() {
            if !self.index.is_removed(id) {
                fresh.insert(name.to_owned(), g.clone());
            }
        }
        let in_temp = self._scratch.is_some();
        let dir = self.index.dir().to_owned();
        drop(self.index); // release page-file handles before truncating
        if in_temp {
            TaleDatabase::build_in_temp(fresh, params)
        } else {
            TaleDatabase::build(fresh, &dir, params)
        }
    }

    fn index_dir(&self) -> &Path {
        self.index.dir()
    }

    /// Interns a node label name into the database vocabulary (for
    /// authoring graphs to pass to [`TaleDatabase::insert_graph`]).
    ///
    /// Growing the vocabulary past `Sbit` after a deterministic-regime
    /// build keeps the index *correct* (bit positions wrap, which can only
    /// add filter false positives, never false negatives) but a rebuild
    /// regains the Bloom regime's precision.
    pub fn intern_node_label(&mut self, name: &str) -> tale_graph::NodeLabel {
        self.db.intern_node_label(name)
    }

    /// The underlying graph database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The NH-Index (for introspection: sizes, probe stats).
    pub fn index(&self) -> &NhIndex {
        &self.index
    }

    /// On-disk index footprint in bytes.
    pub fn index_size_bytes(&self) -> u64 {
        self.index.size_bytes()
    }

    /// Runs an approximate subgraph query (the full §V pipeline).
    ///
    /// The query graph's labels must come from this database's vocabulary
    /// (intern them via [`GraphDb::intern_node_label`] before building, or
    /// construct queries from database graphs).
    pub fn query(&self, query: &Graph, opts: &QueryOptions) -> Result<Vec<QueryMatch>> {
        // Step 1a: pick the important query nodes (§V-B).
        let important = select_important_covering(query, opts.importance, opts.p_imp);
        let q_label = |n: NodeId| self.db.effective_of_raw(query.label(n));
        let threads = tale_par::effective_threads(opts.threads);

        // Step 1b: probe the NH-Index per important node; bucket candidate
        // node matches per database graph. Probes are independent and the
        // buffer pool is shared safely, so they fan out across threads;
        // merging in query-node order makes each graph's bucket contents
        // byte-identical to the serial loop.
        let probed: Vec<Result<Vec<(u32, u32, f64)>>> =
            tale_par::parallel_map(threads, important.len(), |qi| {
                let sig = self.index.signature(query, important[qi], &q_label);
                let candidates = self.index.probe(&sig, opts.rho)?;
                let mut out = Vec::with_capacity(candidates.len());
                for NodeCandidate {
                    node,
                    nb_miss,
                    db_degree: _,
                    db_nb_connection,
                } in candidates
                {
                    let nbc_miss = sig.nb_connection.saturating_sub(db_nb_connection);
                    let w = node_match_quality(sig.degree, sig.nb_connection, nb_miss, nbc_miss);
                    // Eq. IV.5 cannot separate the true counterpart from a
                    // node whose neighborhood strictly dominates the query's
                    // (both score a perfect 2.0). Leave such ties to the
                    // growth phase: its conservation bonus replaces a queued
                    // anchor with an equal-quality candidate that conserves
                    // more committed edges, which only works while anchor
                    // qualities live on the same Eq. IV.5 scale growth uses.
                    out.push((node.graph, node.node, w));
                }
                Ok(out)
            });
        // per graph: (important-node index, db node id, quality)
        let mut per_graph: HashMap<u32, Vec<(usize, u32, f64)>> = HashMap::new();
        for (qi, hits) in probed.into_iter().enumerate() {
            for (graph, node, w) in hits? {
                per_graph.entry(graph).or_default().push((qi, node, w));
            }
        }

        // Steps 1c + 2 per candidate graph: one-to-one anchors, then grow.
        // Candidate graphs are independent, so this fans out across
        // threads (deterministic: per-graph work is pure, `parallel_map`
        // returns in index order, and the results are re-sorted below).
        // The paper's per-query cost is dominated by exactly this loop
        // when the label alphabet is small (ASTRAL).
        let mut graph_ids: Vec<u32> = per_graph.keys().copied().collect();
        graph_ids.sort_unstable();
        let process = |gid: u32| -> Option<QueryMatch> {
            let hits = &per_graph[&gid];
            let graph_id = GraphId(gid);
            let target = self.db.graph(graph_id);
            let anchors = self.resolve_anchors(query, target, &important, hits, &[], opts);
            if anchors.is_empty() {
                return None;
            }
            let q_label = |n: NodeId| self.db.effective_of_raw(query.label(n));
            let t_label = |n: NodeId| self.db.effective_label(graph_id, n);
            let input = GrowInput {
                query,
                target,
                q_label: &q_label,
                t_label: &t_label,
            };
            let grow_cfg = GrowConfig {
                rho: opts.rho,
                hops: opts.hops,
                match_edge_labels: opts.match_edge_labels,
            };
            let mut m = grow_match(&input, &grow_cfg, &anchors);
            if m.pairs.is_empty() {
                return None;
            }
            // Residual re-anchoring: §V-C growth only reaches nodes whose
            // connecting edges survived in *both* graphs, so noisy regions
            // stall unmatched even when their nodes have clean one-to-one
            // counterparts. Re-anchor the residue directly — evaluate the
            // index conditions exactly against still-unmatched db nodes,
            // resolve one-to-one with the committed pairs as conservation
            // evidence — and grow again until a fixpoint.
            let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
            for t in target.nodes() {
                by_label.entry(t_label(t)).or_default().push(t);
            }
            let mut scorer = CandidateScorer::new(&input);
            loop {
                let mut t_taken = vec![false; target.node_count()];
                let mut q_taken = vec![false; query.node_count()];
                for p in &m.pairs {
                    q_taken[p.query.idx()] = true;
                    t_taken[p.target.idx()] = true;
                }
                let residual: Vec<NodeId> = query.nodes().filter(|n| !q_taken[n.idx()]).collect();
                if residual.is_empty() {
                    break;
                }
                let mut rhits: Vec<(usize, u32, f64)> = Vec::new();
                for (qi, &q) in residual.iter().enumerate() {
                    let Some(cands) = by_label.get(&q_label(q)) else {
                        continue;
                    };
                    for &t in cands {
                        if t_taken[t.idx()] {
                            continue;
                        }
                        if let Some(w) = scorer.quality(&input, &grow_cfg, q, t) {
                            rhits.push((qi, t.0, w));
                        }
                    }
                }
                if rhits.is_empty() {
                    break;
                }
                let fixed: Vec<(NodeId, NodeId)> =
                    m.pairs.iter().map(|p| (p.query, p.target)).collect();
                let extra = self.resolve_anchors(query, target, &residual, &rhits, &fixed, opts);
                if extra.is_empty() {
                    break;
                }
                let mut seeds: Vec<Anchor> = m
                    .pairs
                    .iter()
                    .map(|p| Anchor {
                        query: p.query,
                        target: p.target,
                        quality: p.quality,
                    })
                    .collect();
                seeds.extend(extra);
                let grown = grow_match(&input, &grow_cfg, &seeds);
                if grown.matched_nodes() <= m.matched_nodes() {
                    break;
                }
                m = grown;
            }
            let ctx = MatchContext {
                query,
                target,
                m: &m,
            };
            let score = opts.similarity.score(&ctx);
            let matched_nodes = m.matched_nodes();
            let matched_edges = m.matched_edges(query, target);
            Some(QueryMatch {
                graph: graph_id,
                graph_name: self.db.name(graph_id).to_owned(),
                m,
                score,
                matched_nodes,
                matched_edges,
            })
        };
        let mut results: Vec<QueryMatch> =
            tale_par::parallel_map(threads, graph_ids.len(), |i| process(graph_ids[i]))
                .into_iter()
                .flatten()
                .collect();

        // Rank and truncate.
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.graph.cmp(&b.graph))
        });
        if let Some(k) = opts.top_k {
            results.truncate(k);
        }
        Ok(results)
    }

    /// Resolves many-to-many index hits into one-to-one anchors via
    /// maximum-weight bipartite matching (Hungarian, or greedy when the
    /// instance is large / the ablation asks for it).
    fn resolve_anchors(
        &self,
        query: &Graph,
        target: &Graph,
        important: &[NodeId],
        hits: &[(usize, u32, f64)],
        fixed: &[(NodeId, NodeId)],
        opts: &QueryOptions,
    ) -> Vec<Anchor> {
        // Dense right-side ids for the db nodes that appear.
        let mut right_of: HashMap<u32, usize> = HashMap::new();
        let mut right_nodes: Vec<u32> = Vec::new();
        let mut edges: Vec<WeightedEdge> = Vec::with_capacity(hits.len());
        for &(qi, dbn, w) in hits {
            let r = *right_of.entry(dbn).or_insert_with(|| {
                right_nodes.push(dbn);
                right_nodes.len() - 1
            });
            edges.push((qi, r, w));
        }
        let n_left = important.len();
        let n_right = right_nodes.len();
        // Hungarian is O(max(nl,nr)^3); past a few thousand candidates the
        // greedy 1/2-approximation is the practical choice.
        const HUNGARIAN_LIMIT: usize = 2000;
        let mut assignment = if opts.greedy_anchors || n_left.max(n_right) > HUNGARIAN_LIMIT {
            greedy_matching(n_left, n_right, &edges)
        } else {
            max_weight_matching(n_left, n_right, &edges)
        };
        let mut best_w: HashMap<(usize, usize), f64> = HashMap::new();
        for &(l, r, w) in &edges {
            let e = best_w.entry((l, r)).or_insert(0.0);
            if w > *e {
                *e = w;
            }
        }
        refine_assignment(
            query,
            target,
            important,
            &right_nodes,
            &best_w,
            fixed,
            &mut assignment,
        );
        assignment
            .into_iter()
            .enumerate()
            .filter_map(|(qi, r)| {
                r.map(|r| Anchor {
                    query: important[qi],
                    target: NodeId(right_nodes[r]),
                    quality: best_w.get(&(qi, r)).copied().unwrap_or(0.0),
                })
            })
            .collect()
    }
}

/// Conservation-aware refinement of the anchor assignment.
///
/// Eq. IV.5 quality ties are common — any db node whose neighborhood
/// dominates the query node's scores the same perfect 2.0 as the true
/// counterpart — and the bipartite matching picks arbitrarily among tied
/// optima. Ties must be settled *globally*: once growth commits a wrong
/// anchor (or two anchors swap each other's counterparts) the one-to-one
/// invariant blocks any later repair. So, keeping the total weight optimal,
/// greedily apply single reassignments (to an unused candidate of no lower
/// quality) and pairwise target swaps (of no lower summed quality) while
/// they strictly increase the number of query edges conserved between
/// anchored pairs. Each accepted move raises that integer count, so the
/// loop terminates; fixed iteration order keeps it deterministic.
fn refine_assignment(
    query: &Graph,
    target: &Graph,
    important: &[NodeId],
    right_nodes: &[u32],
    w: &HashMap<(usize, usize), f64>,
    fixed: &[(NodeId, NodeId)],
    assignment: &mut [Option<usize>],
) {
    let nl = assignment.len();
    // Query adjacency restricted to anchored (important) nodes, with edge
    // direction preserved: adj[li] = (lj, li-is-source). Query edges into
    // `fixed` pairs (an already-committed match being extended by residual
    // re-anchoring) conserve against those pairs' pinned images instead.
    let mut left_of: HashMap<u32, usize> = HashMap::new();
    for (li, q) in important.iter().enumerate() {
        left_of.insert(q.0, li);
    }
    let fixed_of: HashMap<u32, NodeId> = fixed.iter().map(|&(q, t)| (q.0, t)).collect();
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); nl];
    let mut fixed_adj: Vec<Vec<(NodeId, bool)>> = vec![Vec::new(); nl];
    for (u, v, _) in query.edges() {
        match (left_of.get(&u.0), left_of.get(&v.0)) {
            (Some(&lu), Some(&lv)) => {
                adj[lu].push((lv, true));
                adj[lv].push((lu, false));
            }
            (Some(&lu), None) => {
                if let Some(&tv) = fixed_of.get(&v.0) {
                    fixed_adj[lu].push((tv, true));
                }
            }
            (None, Some(&lv)) => {
                if let Some(&tu) = fixed_of.get(&u.0) {
                    fixed_adj[lv].push((tu, false));
                }
            }
            (None, None) => {}
        }
    }
    let mut cands: Vec<Vec<usize>> = vec![Vec::new(); nl];
    for &(li, r) in w.keys() {
        cands[li].push(r);
    }
    for c in cands.iter_mut() {
        c.sort_unstable();
    }
    let mut owner: Vec<Option<usize>> = vec![None; right_nodes.len()];
    for (li, a) in assignment.iter().enumerate() {
        if let Some(r) = *a {
            owner[r] = Some(li);
        }
    }
    // Query edges from `li` (mapped to right node `r`) conserved in the
    // target under the current assignment of the other endpoints.
    let conserved = |assignment: &[Option<usize>], li: usize, r: usize| -> usize {
        let tn = NodeId(right_nodes[r]);
        adj[li]
            .iter()
            .filter(|&&(lj, out)| {
                assignment[lj].is_some_and(|rj| {
                    let tj = NodeId(right_nodes[rj]);
                    if out {
                        target.has_edge(tn, tj)
                    } else {
                        target.has_edge(tj, tn)
                    }
                })
            })
            .count()
            + fixed_adj[li]
                .iter()
                .filter(|&&(tj, out)| {
                    if out {
                        target.has_edge(tn, tj)
                    } else {
                        target.has_edge(tj, tn)
                    }
                })
                .count()
    };
    const EPS: f64 = 1e-9;
    loop {
        let mut improved = false;
        // Single moves to an unused candidate of no lower quality.
        for li in 0..nl {
            let Some(cur) = assignment[li] else { continue };
            let cur_w = w.get(&(li, cur)).copied().unwrap_or(0.0);
            let cur_c = conserved(assignment, li, cur);
            let mut best: Option<(usize, usize)> = None; // (conserved, right)
            for &r in &cands[li] {
                if r == cur || owner[r].is_some() {
                    continue;
                }
                if w[&(li, r)] < cur_w - EPS {
                    continue;
                }
                let c = conserved(assignment, li, r);
                if c > cur_c && best.is_none_or(|(bc, _)| c > bc) {
                    best = Some((c, r));
                }
            }
            if let Some((_, r)) = best {
                owner[cur] = None;
                owner[r] = Some(li);
                assignment[li] = Some(r);
                improved = true;
            }
        }
        // Length-2 chains of no lower summed quality: `li` takes one of its
        // candidates `rj` from its owner `lj`, while `lj` falls back to
        // `li`'s old target (a plain swap) or to an unused candidate of its
        // own (an augmenting rotation — needed when a tangle's repair
        // passes through a conserved-neutral intermediate no single move
        // would take). Only (li, lj) pairs sharing a candidate are visited,
        // keeping the pass near-linear in the candidate-list total.
        for li in 0..nl {
            for ci in 0..cands[li].len() {
                let Some(ri) = assignment[li] else { break };
                let rj = cands[li][ci];
                let Some(lj) = owner[rj] else { continue };
                if lj == li {
                    continue;
                }
                let wij = w[&(li, rj)];
                let old_sum = w[&(li, ri)] + w[&(lj, rj)];
                let mut before = None;
                for &fb in std::iter::once(&ri).chain(cands[lj].iter().filter(|&&r| r != ri)) {
                    if fb != ri && (fb == rj || owner[fb].is_some()) {
                        continue;
                    }
                    let Some(&wjf) = w.get(&(lj, fb)) else {
                        continue;
                    };
                    if wij + wjf < old_sum - EPS {
                        continue;
                    }
                    let before = *before.get_or_insert_with(|| {
                        conserved(assignment, li, ri) + conserved(assignment, lj, rj)
                    });
                    assignment[li] = Some(rj);
                    assignment[lj] = Some(fb);
                    let after = conserved(assignment, li, rj) + conserved(assignment, lj, fb);
                    if after > before {
                        owner[ri] = None;
                        owner[rj] = Some(li);
                        owner[fb] = Some(lj);
                        improved = true;
                        break;
                    }
                    assignment[li] = Some(ri);
                    assignment[lj] = Some(rj);
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn triangle_plus_tail(db: &mut GraphDb) -> Graph {
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let c = db.intern_node_label("C");
        let d = db.intern_node_label("D");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(c);
        let n3 = g.add_node(d);
        g.add_edge(n0, n1).unwrap();
        g.add_edge(n1, n2).unwrap();
        g.add_edge(n0, n2).unwrap();
        g.add_edge(n2, n3).unwrap();
        g
    }

    #[test]
    fn self_query_is_top_hit_with_full_match() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        // decoy: same labels, no edges
        let mut decoy = Graph::new_undirected();
        for n in g.nodes() {
            decoy.add_node(g.label(n));
        }
        db.insert("decoy", decoy);

        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res[0].graph_name, "target");
        assert_eq!(res[0].matched_nodes, 4);
        assert_eq!(res[0].matched_edges, 4);
    }

    #[test]
    fn top_k_truncates() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        for i in 0..6 {
            db.insert(format!("g{i}"), base.clone());
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions::default().with_top_k(3);
        let res = tale.query(&base, &opts).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn noisy_variant_still_found() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut db = GraphDb::new();
        for i in 0..8 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = gnm(&mut rng, 60, 120, 8);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 8);
        db.insert("noisy-home", noisy);
        // unrelated graphs
        for i in 0..4 {
            let other = gnm(&mut rng, 60, 120, 8);
            db.insert(format!("other{i}"), other);
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            rho: 0.25,
            p_imp: 0.25,
            ..Default::default()
        };
        let res = tale.query(&original, &opts).unwrap();
        assert!(!res.is_empty());
        // The mutated sibling should match more of the query than random
        // graphs; check it lands on top.
        assert_eq!(res[0].graph_name, "noisy-home");
        assert!(
            res[0].matched_nodes > 30,
            "matched {}",
            res[0].matched_nodes
        );
    }

    #[test]
    fn random_importance_is_worse_or_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut db = GraphDb::new();
        for i in 0..6 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = tale_graph::generate::preferential_attachment(&mut rng, 150, 2, 0.9, 6);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 6);
        db.insert("home", noisy);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let degree_opts = QueryOptions {
            p_imp: 0.15,
            ..Default::default()
        };
        let random_opts = QueryOptions {
            p_imp: 0.15,
            importance: crate::ImportanceMeasure::Random(3),
            ..Default::default()
        };
        let by_degree = tale.query(&original, &degree_opts).unwrap();
        let by_random = tale.query(&original, &random_opts).unwrap();
        // §VI-D's direction: degree centrality should not lose to random
        // on *structure* (preserved edges). Node counts alone can tie or
        // flip by a few either way — any sticking anchor lets growth add
        // nodes; edges capture whether the right paralogs were chosen.
        let ed = by_degree.first().map(|r| r.matched_edges).unwrap_or(0);
        let er = by_random.first().map(|r| r.matched_edges).unwrap_or(0);
        assert!(ed >= er, "degree edges {ed} < random edges {er}");
        assert!(ed > 0);
    }

    #[test]
    fn persist_and_reopen() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        let dir = tempfile::tempdir().unwrap();
        {
            let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
            let r = tale.query(&g, &QueryOptions::default()).unwrap();
            assert_eq!(r[0].matched_nodes, 4);
        }
        let tale = TaleDatabase::open(dir.path(), 256).unwrap();
        let r = tale.query(&g, &QueryOptions::default()).unwrap();
        assert_eq!(r[0].matched_nodes, 4);
        assert_eq!(tale.db().len(), 1);
        assert!(tale.index_size_bytes() > 0);
    }

    #[test]
    fn incremental_insert_is_queriable_and_persistent() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        db.insert("original", base.clone());
        let dir = tempfile::tempdir().unwrap();
        let mut tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        // a second copy arrives later
        let gid = tale.insert_graph("late-arrival", base.clone()).unwrap();
        assert_eq!(tale.db().len(), 2);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&base, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert!(names.contains(&"late-arrival"), "{names:?}");
        assert!(names.contains(&"original"));
        let late = res.iter().find(|r| r.graph == gid).unwrap();
        assert_eq!(late.matched_nodes, 4);
        drop(tale);
        // reopen: the inserted graph survived on disk
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
        let res = tale.query(&base, &opts).unwrap();
        assert!(res.iter().any(|r| r.graph_name == "late-arrival"));
    }

    #[test]
    fn removed_graph_disappears_from_results() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        let mut tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        assert_eq!(tale.query(&g, &opts).unwrap().len(), 2);
        tale.remove_graph(GraphId(1)).unwrap();
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].graph_name, "keep");
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        db.insert("keep2", g.clone());
        let dir = tempfile::tempdir().unwrap();
        let mut tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        let full_size = tale.index_size_bytes();
        tale.remove_graph(GraphId(1)).unwrap();
        let tale = tale.compact(&TaleParams::default()).unwrap();
        assert_eq!(tale.db().len(), 2);
        assert!(tale.db().find_by_name("drop").is_none());
        assert!(tale.index_size_bytes() <= full_size);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert_eq!(res.len(), 2, "{names:?}");
        assert!(names.contains(&"keep") && names.contains(&"keep2"));
        // the compacted on-disk form reopens cleanly
        drop(tale);
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let res = tale
            .query(&Graph::new_undirected(), &QueryOptions::default())
            .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn greedy_anchor_mode_runs() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g.clone());
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            greedy_anchors: true,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res[0].matched_nodes, 4);
    }

    #[test]
    fn unknown_label_query_matches_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let mut q = Graph::new_undirected();
        let x = q.add_node(NodeLabel(99)); // label never interned
        let y = q.add_node(NodeLabel(99));
        q.add_edge(x, y).unwrap();
        let res = tale.query(&q, &QueryOptions::default()).unwrap();
        assert!(res.is_empty());
    }
}
