//! [`TaleDatabase`]: the indexed graph database — MVCC reads over
//! immutable index generations, served by the staged query engine in
//! [`crate::engine`].
//!
//! Readers never block on writers: every query pins one immutable
//! [`Snapshot`] (base generation + delta overlay + tombstones) and runs
//! to completion against it, bit-identical to the database as it stood at
//! pin time. Writers mutate through `&self` — they prepare off to the
//! side and publish by atomic pointer swap (see [`tale_nhindex::mvcc`]).

use crate::engine::cache::{CacheStats, ResultCache, DEFAULT_CACHE_ENTRIES};
use crate::engine::exec;
use crate::engine::stats::{BatchStats, QueryStats};
use crate::journal::{DbRecovery, MutationJournal};
use crate::params::{QueryOptions, TaleParams};
use crate::result::QueryMatch;
use crate::scratch::ScratchDir;
use crate::Result;
use parking_lot::{Mutex, RwLock};
use std::path::Path;
use std::sync::Arc;
use tale_nhindex::{FoldReport, GenerationalNhIndex, IndexReader, NhIndexConfig};

use tale_graph::{Graph, GraphDb, GraphId};

pub(crate) const DB_FILE: &str = "graphs.json";

/// An indexed graph database ready for approximate subgraph queries.
///
/// Owns the [`GraphDb`] (graphs + vocabularies + optional §IV-E group
/// map), the generational disk-resident NH-Index built over it, and two
/// LRU result caches (base-generation and delta-overlay partials) shared
/// by every query issued through this handle.
///
/// All mutation methods take `&self`: queries running concurrently with
/// [`TaleDatabase::insert_graph`], [`TaleDatabase::remove_graph`] or
/// [`TaleDatabase::fold`] keep the snapshot they pinned and are never
/// blocked or perturbed by the writer.
pub struct TaleDatabase {
    /// The graph store. Writers publish a fresh `Arc` *before* the index
    /// state; readers pin the index snapshot *first* — so a pinned
    /// snapshot's graphs always exist in the db the reader sees.
    db: RwLock<Arc<GraphDb>>,
    index: GenerationalNhIndex,
    /// Serializes mutations; never touched by queries.
    writer: Mutex<()>,
    /// Pre-rank partials derived from the base generation.
    cache: ResultCache,
    /// Pre-rank partials derived from the delta overlay.
    delta_cache: ResultCache,
    // Keeps the scratch directory alive for in-temp builds.
    _scratch: Option<ScratchDir>,
}

fn config_of(params: &TaleParams) -> NhIndexConfig {
    NhIndexConfig {
        sbit: params.sbit,
        buffer_frames: params.buffer_frames,
        parallel_build: params.parallel_build,
        bloom_hashes: params.bloom_hashes,
        use_edge_labels: params.use_edge_labels,
        io_workers: params.io_workers,
        prefetch_pages: params.prefetch_pages,
    }
}

impl TaleDatabase {
    fn assemble(db: GraphDb, index: GenerationalNhIndex, scratch: Option<ScratchDir>) -> Self {
        TaleDatabase {
            db: RwLock::new(Arc::new(db)),
            index,
            writer: Mutex::new(()),
            cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
            delta_cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
            _scratch: scratch,
        }
    }

    /// Builds generation 0 of the NH-Index for `db` into `dir` and
    /// persists the graphs alongside it, so [`TaleDatabase::open`] can
    /// restore everything.
    pub fn build(db: GraphDb, dir: &Path, params: &TaleParams) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let index = GenerationalNhIndex::build(dir, &db, &config_of(params))?;
        tale_graph::io::save_json(&db, &dir.join(DB_FILE))?;
        Ok(Self::assemble(db, index, None))
    }

    /// Builds into a self-cleaning scratch directory — convenient for
    /// experiments and tests. The index is still genuinely disk-based; it
    /// just lives in the OS temp dir for this process's lifetime.
    pub fn build_in_temp(db: GraphDb, params: &TaleParams) -> Result<Self> {
        let scratch = ScratchDir::new("tale-index")?;
        let index = GenerationalNhIndex::build(scratch.path(), &db, &config_of(params))?;
        Ok(Self::assemble(db, index, Some(scratch)))
    }

    /// Reopens a database previously built with [`TaleDatabase::build`],
    /// running crash recovery (discarding the report — use
    /// [`TaleDatabase::open_with_recovery`] to inspect it).
    pub fn open(dir: &Path, buffer_frames: usize) -> Result<Self> {
        Ok(Self::open_with_recovery(dir, buffer_frames)?.0)
    }

    /// Reopens a database, repairing any mutation interrupted by a crash.
    /// The multi-file journal reconciles `graphs.json` against the
    /// persisted logical mutation counter ([`crate::journal`]), then the
    /// generational index opens against the recovered graph store —
    /// running the current generation's (always-empty) WAL recovery,
    /// sweeping orphaned generation directories from unfinished folds,
    /// and re-deriving the in-memory delta overlay — so the pair can
    /// never be served out of sync.
    pub fn open_with_recovery(dir: &Path, buffer_frames: usize) -> Result<(Self, DbRecovery)> {
        let logical = GenerationalNhIndex::peek_logical(dir)?;
        let journal = MutationJournal::new(dir);
        let (journal_present, db_rolled_back) = journal.recover(logical)?;
        let db = tale_graph::io::load_json(&dir.join(DB_FILE))?;
        let (index, mvcc) = GenerationalNhIndex::open(dir, &db, buffer_frames)?;
        let report = DbRecovery {
            index: mvcc.index,
            journal_present,
            db_rolled_back,
            generations_swept: mvcc.swept.len(),
        };
        Ok((Self::assemble(db, index, None), report))
    }

    /// Adds a graph to the database — the growing-database scenario the
    /// paper's introduction motivates. The graph lands in the in-memory
    /// delta overlay (no on-disk index structure is touched) and is
    /// immediately queryable; a later [`TaleDatabase::fold`] moves it
    /// into the next on-disk generation. The graph must use this
    /// database's label vocabulary. Returns the new graph's id.
    ///
    /// In-flight queries are unaffected: they keep the snapshot they
    /// pinned. Cached results derived from the base generation remain
    /// valid **and reachable** — inserting cannot change what the
    /// immutable base answers, so only the delta's cache epoch rolls.
    ///
    /// For on-disk databases ([`TaleDatabase::build`]), the persisted
    /// graph set is updated too, so [`TaleDatabase::open`] sees the new
    /// graph after this call returns. The update is journaled
    /// ([`crate::journal`]): a crash anywhere inside this call leaves the
    /// directory recoverable to a consistent state — either both
    /// `graphs.json` and the index manifest reflect the insert, or
    /// neither does. After an error, drop this handle and reopen.
    pub fn insert_graph(&self, name: impl Into<String>, g: Graph) -> Result<GraphId> {
        let _w = self.writer.lock();
        let mut next = (**self.db.read()).clone();
        let gid = next.insert(name, g);
        let next = Arc::new(next);
        if self._scratch.is_none() {
            // persistent build: stage → save graphs.json → publish the db
            // → commit the index manifest (the overall commit point) →
            // clear the journal
            let dir = self.index.dir().to_owned();
            let journal = MutationJournal::new(&dir);
            journal.stage(
                &dir.join(DB_FILE),
                crate::journal::PendingMutation {
                    pre_generation: self.index.logical_generation(),
                    shard: None,
                },
            )?;
            tale_graph::io::save_json(&next, &dir.join(DB_FILE))?;
            *self.db.write() = Arc::clone(&next);
            self.index.insert_graph(&next, gid)?;
            journal.clear()?;
        } else {
            *self.db.write() = Arc::clone(&next);
            self.index.insert_graph(&next, gid)?;
        }
        Ok(gid)
    }

    /// Logically removes a graph from query results (a tombstone in the
    /// current MVCC state; space is reclaimed by [`TaleDatabase::fold`]).
    /// The graph's id and data remain readable through
    /// [`TaleDatabase::db`], and queries that already pinned a snapshot
    /// keep seeing it — that is the MVCC contract.
    ///
    /// No cache entry is evicted: removal can only *delete* matches, and
    /// the engine filters cached partial lists through the snapshot's
    /// tombstone set at read time, so every entry stays warm and exactly
    /// correct.
    pub fn remove_graph(&self, id: GraphId) -> Result<()> {
        let _w = self.writer.lock();
        self.db.read().try_graph(id)?;
        self.index.remove_graph(id)?;
        Ok(())
    }

    /// Folds the accumulated delta and tombstones into a new immutable
    /// on-disk generation (see [`GenerationalNhIndex::fold`]). Queries
    /// keep flowing throughout: the fold builds off to the side, commits
    /// with one atomic manifest flip, and the old generation's files are
    /// deleted only when the last query pinning them finishes.
    pub fn fold(&self) -> Result<FoldReport> {
        let _w = self.writer.lock();
        let db = self.db.read().clone();
        Ok(self.index.fold(&db)?)
    }

    /// Rebuilds the database without tombstoned graphs, reclaiming the
    /// dead posting space `remove_graph` leaves behind. Graph ids are
    /// re-assigned (compaction renumbers); vocabulary and group map are
    /// preserved. On-disk databases are rebuilt in place; in-temp
    /// databases get a fresh scratch directory.
    pub fn compact(self, params: &TaleParams) -> Result<TaleDatabase> {
        let TaleDatabase {
            db,
            index,
            _scratch,
            ..
        } = self;
        let db = db.into_inner();
        let mut fresh = GraphDb::new();
        for (_, name) in db.node_vocab().iter() {
            fresh.intern_node_label(name);
        }
        for (_, name) in db.edge_vocab().iter() {
            fresh.intern_edge_label(name);
        }
        if let Some(groups) = db.group_map() {
            fresh.set_group(groups.to_vec())?;
        }
        for (id, name, g) in db.iter() {
            if !index.is_removed(id) {
                fresh.insert(name.to_owned(), g.clone());
            }
        }
        let in_temp = _scratch.is_some();
        let dir = index.dir().to_owned();
        drop(index); // release page-file handles before truncating
        if in_temp {
            TaleDatabase::build_in_temp(fresh, params)
        } else {
            TaleDatabase::build(fresh, &dir, params)
        }
    }

    /// Interns a node label name into the database vocabulary (for
    /// authoring graphs to pass to [`TaleDatabase::insert_graph`]).
    ///
    /// Growing the vocabulary past `Sbit` after a deterministic-regime
    /// build keeps the index *correct* (bit positions wrap, which can only
    /// add filter false positives, never false negatives) but a rebuild
    /// regains the Bloom regime's precision.
    ///
    /// Cached results stay valid: interning is append-only (existing
    /// labels and effective mappings are untouched), and cache entries
    /// verify the exact query representation on lookup anyway.
    pub fn intern_node_label(&self, name: &str) -> tale_graph::NodeLabel {
        let _w = self.writer.lock();
        let mut next = (**self.db.read()).clone();
        let label = next.intern_node_label(name);
        *self.db.write() = Arc::new(next);
        label
    }

    /// The underlying graph database (a cheap `Arc` clone of the current
    /// published state; concurrent inserts publish fresh `Arc`s and never
    /// mutate one you hold).
    pub fn db(&self) -> Arc<GraphDb> {
        self.db.read().clone()
    }

    /// The generational NH-Index (for introspection: sizes, probe stats,
    /// live generations and their reader pins).
    pub fn index(&self) -> &GenerationalNhIndex {
        &self.index
    }

    /// On-disk index footprint in bytes.
    pub fn index_size_bytes(&self) -> u64 {
        self.index.size_bytes()
    }

    fn run(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        // Pin order matters: index snapshot first, then the db Arc.
        // Writers publish the db first, so the db we read always covers
        // every graph the snapshot can answer with.
        let snap = self.index.snapshot();
        let db = self.db.read().clone();
        let base = snap.base_reader();
        let delta = snap.delta_reader();
        let shards: [&dyn IndexReader; 2] = [&base, &delta];
        let caches = [&self.cache, &self.delta_cache];
        exec::run_batch(
            &db,
            &shards,
            opts.use_cache.then_some(&caches[..]),
            queries,
            opts,
        )
    }

    /// Describes — without executing — the plan the engine would choose
    /// for `query` under `opts`: probe order with row estimates, the
    /// readahead budget, and per-reader feasibility and score bounds.
    /// Render with [`PlanReport::render`](crate::PlanReport::render) or
    /// serialize to JSON.
    pub fn explain(&self, query: &Graph, opts: &QueryOptions) -> crate::PlanReport {
        let snap = self.index.snapshot();
        let db = self.db.read().clone();
        let base = snap.base_reader();
        let delta = snap.delta_reader();
        let shards: [&dyn IndexReader; 2] = [&base, &delta];
        crate::engine::plan::plan_report(&db, &shards, query, opts)
    }

    /// Runs an approximate subgraph query (the full §V pipeline, staged
    /// through [`crate::engine`]).
    ///
    /// The query graph's labels must come from this database's vocabulary
    /// (intern them via [`GraphDb::intern_node_label`] before building, or
    /// construct queries from database graphs).
    pub fn query(&self, query: &Graph, opts: &QueryOptions) -> Result<Vec<QueryMatch>> {
        Ok(self.query_with_stats(query, opts)?.0)
    }

    /// Like [`TaleDatabase::query`], also returning per-stage execution
    /// statistics (probe traffic, buffer-pool hit rate, wall clock).
    pub fn query_with_stats(
        &self,
        query: &Graph,
        opts: &QueryOptions,
    ) -> Result<(Vec<QueryMatch>, QueryStats)> {
        let (mut outputs, mut batch) = self.run(&[query], opts)?;
        Ok((outputs.remove(0), batch.per_query.remove(0)))
    }

    /// Runs a batch of queries through the staged engine. The returned
    /// vector is aligned with `queries`, and each entry is bit-identical
    /// to what a standalone [`TaleDatabase::query`] call would return —
    /// the batch only amortizes: duplicate queries run once, duplicate
    /// probe signatures hit the disk index once, and the thread pool fans
    /// over all per-graph work without syncing at query boundaries.
    pub fn query_batch(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<Vec<Vec<QueryMatch>>> {
        Ok(self.query_batch_with_stats(queries, opts)?.0)
    }

    /// Like [`TaleDatabase::query_batch`], also returning batch-level
    /// statistics (per-query traffic, amortization counters, stage times).
    pub fn query_batch_with_stats(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        self.run(queries, opts)
    }

    /// Combined counter snapshot of the base and delta result caches
    /// (hits, misses, insertions). Each query consults both caches — one
    /// per index reader — so a single fully-cached query counts two hits.
    pub fn result_cache_stats(&self) -> CacheStats {
        let b = self.cache.stats();
        let d = self.delta_cache.stats();
        CacheStats {
            entries: b.entries + d.entries,
            capacity: b.capacity + d.capacity,
            hits: b.hits + d.hits,
            misses: b.misses + d.misses,
            insertions: b.insertions + d.insertions,
            invalidations: b.invalidations + d.invalidations,
        }
    }

    /// Counter snapshot of the base-generation cache alone (whose entries
    /// are the ones that survive inserts).
    pub fn base_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result. No mutation path does this anymore —
    /// invalidation is generation-keyed — but explicit maintenance may
    /// still want a cold cache.
    pub fn clear_result_cache(&self) {
        self.cache.clear();
        self.delta_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn triangle_plus_tail(db: &mut GraphDb) -> Graph {
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let c = db.intern_node_label("C");
        let d = db.intern_node_label("D");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(c);
        let n3 = g.add_node(d);
        g.add_edge(n0, n1).unwrap();
        g.add_edge(n1, n2).unwrap();
        g.add_edge(n0, n2).unwrap();
        g.add_edge(n2, n3).unwrap();
        g
    }

    #[test]
    fn self_query_is_top_hit_with_full_match() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        // decoy: same labels, no edges
        let mut decoy = Graph::new_undirected();
        for n in g.nodes() {
            decoy.add_node(g.label(n));
        }
        db.insert("decoy", decoy);

        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res[0].graph_name, "target");
        assert_eq!(res[0].matched_nodes, 4);
        assert_eq!(res[0].matched_edges, 4);
    }

    #[test]
    fn top_k_truncates() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        for i in 0..6 {
            db.insert(format!("g{i}"), base.clone());
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions::default().with_top_k(3);
        let res = tale.query(&base, &opts).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn noisy_variant_still_found() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut db = GraphDb::new();
        for i in 0..8 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = gnm(&mut rng, 60, 120, 8);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 8);
        db.insert("noisy-home", noisy);
        // unrelated graphs
        for i in 0..4 {
            let other = gnm(&mut rng, 60, 120, 8);
            db.insert(format!("other{i}"), other);
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            rho: 0.25,
            p_imp: 0.25,
            ..Default::default()
        };
        let res = tale.query(&original, &opts).unwrap();
        assert!(!res.is_empty());
        // The mutated sibling should match more of the query than random
        // graphs; check it lands on top.
        assert_eq!(res[0].graph_name, "noisy-home");
        assert!(
            res[0].matched_nodes > 30,
            "matched {}",
            res[0].matched_nodes
        );
    }

    #[test]
    fn random_importance_is_worse_or_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut db = GraphDb::new();
        for i in 0..6 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = tale_graph::generate::preferential_attachment(&mut rng, 150, 2, 0.9, 6);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 6);
        db.insert("home", noisy);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let degree_opts = QueryOptions {
            p_imp: 0.15,
            ..Default::default()
        };
        let random_opts = QueryOptions {
            p_imp: 0.15,
            importance: crate::ImportanceMeasure::Random(3),
            ..Default::default()
        };
        let by_degree = tale.query(&original, &degree_opts).unwrap();
        let by_random = tale.query(&original, &random_opts).unwrap();
        // §VI-D's direction: degree centrality should not lose to random
        // on *structure* (preserved edges). Node counts alone can tie or
        // flip by a few either way — any sticking anchor lets growth add
        // nodes; edges capture whether the right paralogs were chosen.
        let ed = by_degree.first().map(|r| r.matched_edges).unwrap_or(0);
        let er = by_random.first().map(|r| r.matched_edges).unwrap_or(0);
        assert!(ed >= er, "degree edges {ed} < random edges {er}");
        assert!(ed > 0);
    }

    #[test]
    fn persist_and_reopen() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        let dir = tempfile::tempdir().unwrap();
        {
            let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
            let r = tale.query(&g, &QueryOptions::default()).unwrap();
            assert_eq!(r[0].matched_nodes, 4);
        }
        let tale = TaleDatabase::open(dir.path(), 256).unwrap();
        let r = tale.query(&g, &QueryOptions::default()).unwrap();
        assert_eq!(r[0].matched_nodes, 4);
        assert_eq!(tale.db().len(), 1);
        assert!(tale.index_size_bytes() > 0);
    }

    #[test]
    fn incremental_insert_is_queriable_and_persistent() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        db.insert("original", base.clone());
        let dir = tempfile::tempdir().unwrap();
        let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        // a second copy arrives later
        let gid = tale.insert_graph("late-arrival", base.clone()).unwrap();
        assert_eq!(tale.db().len(), 2);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&base, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert!(names.contains(&"late-arrival"), "{names:?}");
        assert!(names.contains(&"original"));
        let late = res.iter().find(|r| r.graph == gid).unwrap();
        assert_eq!(late.matched_nodes, 4);
        drop(tale);
        // reopen: the inserted graph survived on disk
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
        let res = tale.query(&base, &opts).unwrap();
        assert!(res.iter().any(|r| r.graph_name == "late-arrival"));
    }

    #[test]
    fn removed_graph_disappears_from_results() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        assert_eq!(tale.query(&g, &opts).unwrap().len(), 2);
        tale.remove_graph(GraphId(1)).unwrap();
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].graph_name, "keep");
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        db.insert("keep2", g.clone());
        let dir = tempfile::tempdir().unwrap();
        let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        let full_size = tale.index_size_bytes();
        tale.remove_graph(GraphId(1)).unwrap();
        let tale = tale.compact(&TaleParams::default()).unwrap();
        assert_eq!(tale.db().len(), 2);
        assert!(tale.db().find_by_name("drop").is_none());
        assert!(tale.index_size_bytes() <= full_size);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert_eq!(res.len(), 2, "{names:?}");
        assert!(names.contains(&"keep") && names.contains(&"keep2"));
        // the compacted on-disk form reopens cleanly
        drop(tale);
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let res = tale
            .query(&Graph::new_undirected(), &QueryOptions::default())
            .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn greedy_anchor_mode_runs() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g.clone());
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            greedy_anchors: true,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res[0].matched_nodes, 4);
    }

    #[test]
    fn unknown_label_query_matches_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let mut q = Graph::new_undirected();
        let x = q.add_node(NodeLabel(99)); // label never interned
        let y = q.add_node(NodeLabel(99));
        q.add_edge(x, y).unwrap();
        let res = tale.query(&q, &QueryOptions::default()).unwrap();
        assert!(res.is_empty());
    }
}
