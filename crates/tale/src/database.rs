//! [`TaleDatabase`]: the indexed graph database, now a facade over the
//! staged query engine in [`crate::engine`].

use crate::engine::cache::{CacheStats, ResultCache, DEFAULT_CACHE_ENTRIES};
use crate::engine::exec;
use crate::engine::stats::{BatchStats, QueryStats};
use crate::journal::{DbRecovery, MutationJournal};
use crate::params::{QueryOptions, TaleParams};
use crate::result::QueryMatch;
use crate::scratch::ScratchDir;
use crate::Result;
use std::path::Path;
use tale_graph::{Graph, GraphDb, GraphId};
use tale_nhindex::{NhIndex, NhIndexConfig};

pub(crate) const DB_FILE: &str = "graphs.json";

/// An indexed graph database ready for approximate subgraph queries.
///
/// Owns the [`GraphDb`] (graphs + vocabularies + optional §IV-E group map),
/// the disk-resident NH-Index built over it, and an LRU result cache
/// shared by every query issued through this handle.
pub struct TaleDatabase {
    db: GraphDb,
    index: NhIndex,
    cache: ResultCache,
    // Keeps the scratch directory alive for in-temp builds.
    _scratch: Option<ScratchDir>,
}

impl TaleDatabase {
    /// Builds the NH-Index for `db` into `dir` and persists the graphs
    /// alongside it, so [`TaleDatabase::open`] can restore everything.
    pub fn build(db: GraphDb, dir: &Path, params: &TaleParams) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let config = NhIndexConfig {
            sbit: params.sbit,
            buffer_frames: params.buffer_frames,
            parallel_build: params.parallel_build,
            bloom_hashes: params.bloom_hashes,
            use_edge_labels: params.use_edge_labels,
            io_workers: params.io_workers,
            prefetch_pages: params.prefetch_pages,
        };
        let index = NhIndex::build(dir, &db, &config)?;
        tale_graph::io::save_json(&db, &dir.join(DB_FILE))?;
        Ok(TaleDatabase {
            db,
            index,
            cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
            _scratch: None,
        })
    }

    /// Builds into a self-cleaning scratch directory — convenient for
    /// experiments and tests. The index is still genuinely disk-based; it
    /// just lives in the OS temp dir for this process's lifetime.
    pub fn build_in_temp(db: GraphDb, params: &TaleParams) -> Result<Self> {
        let scratch = ScratchDir::new("tale-index")?;
        let config = NhIndexConfig {
            sbit: params.sbit,
            buffer_frames: params.buffer_frames,
            parallel_build: params.parallel_build,
            bloom_hashes: params.bloom_hashes,
            use_edge_labels: params.use_edge_labels,
            io_workers: params.io_workers,
            prefetch_pages: params.prefetch_pages,
        };
        let index = NhIndex::build(scratch.path(), &db, &config)?;
        Ok(TaleDatabase {
            db,
            index,
            cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
            _scratch: Some(scratch),
        })
    }

    /// Reopens a database previously built with [`TaleDatabase::build`],
    /// running crash recovery (discarding the report — use
    /// [`TaleDatabase::open_with_recovery`] to inspect it).
    pub fn open(dir: &Path, buffer_frames: usize) -> Result<Self> {
        Ok(Self::open_with_recovery(dir, buffer_frames)?.0)
    }

    /// Reopens a database, repairing any mutation interrupted by a crash:
    /// first the index's own WAL recovery runs
    /// ([`NhIndex::open_with_recovery`]), then the multi-file journal
    /// reconciles `graphs.json` against the recovered index generation
    /// ([`crate::journal`]) — so the pair can never be served out of sync.
    pub fn open_with_recovery(dir: &Path, buffer_frames: usize) -> Result<(Self, DbRecovery)> {
        let (index, nh_report) = NhIndex::open_with_recovery(dir, buffer_frames)?;
        let journal = MutationJournal::new(dir);
        let (journal_present, db_rolled_back) = journal.recover(index.generation())?;
        let db = tale_graph::io::load_json(&dir.join(DB_FILE))?;
        let tale = TaleDatabase {
            db,
            index,
            cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
            _scratch: None,
        };
        let report = DbRecovery {
            index: nh_report,
            journal_present,
            db_rolled_back,
        };
        Ok((tale, report))
    }

    /// Adds a graph to the database and incrementally extends the
    /// NH-Index (no rebuild) — the growing-database scenario the paper's
    /// introduction motivates. The graph must use this database's label
    /// vocabulary. Returns the new graph's id.
    ///
    /// For on-disk databases ([`TaleDatabase::build`]), the persisted
    /// graph set is updated too, so [`TaleDatabase::open`] sees the new
    /// graph after this call returns. The update is journaled
    /// ([`crate::journal`]): a crash anywhere inside this call leaves the
    /// directory recoverable to a consistent state — either both
    /// `graphs.json` and the index reflect the insert, or neither does.
    /// After an error, drop this handle and reopen.
    pub fn insert_graph(&mut self, name: impl Into<String>, g: Graph) -> Result<GraphId> {
        self.cache.clear();
        let gid = self.db.insert(name, g);
        if self._scratch.is_none() {
            // persistent build: stage → save graphs.json → commit the
            // index (its generation bump is the overall commit point) →
            // clear the journal
            let dir = self.index_dir().to_owned();
            let journal = MutationJournal::new(&dir);
            journal.stage(
                &dir.join(DB_FILE),
                crate::journal::PendingMutation {
                    pre_generation: self.index.generation(),
                    shard: None,
                },
            )?;
            tale_graph::io::save_json(&self.db, &dir.join(DB_FILE))?;
            self.index.insert_graph(&self.db, gid)?;
            journal.clear()?;
        } else {
            self.index.insert_graph(&self.db, gid)?;
        }
        Ok(gid)
    }

    /// Logically removes a graph from query results (tombstone in the
    /// index; space is reclaimed by rebuilding). The graph's id and data
    /// remain readable through [`TaleDatabase::db`].
    ///
    /// Cache invalidation is scoped: removing a graph can only delete its
    /// own matches, so only cached entries whose result set contains `id`
    /// are evicted ([`ResultCache::evict_graph`]); disjoint entries stay
    /// resident and exactly correct.
    ///
    /// [`ResultCache::evict_graph`]: crate::engine::cache::ResultCache::evict_graph
    pub fn remove_graph(&mut self, id: GraphId) -> Result<()> {
        self.cache.evict_graph(id);
        self.index
            .remove_graph(id, self.db.effective_vocab_size() as u64)?;
        Ok(())
    }

    /// Rebuilds the database without tombstoned graphs, reclaiming the
    /// dead posting space `remove_graph` leaves behind. Graph ids are
    /// re-assigned (compaction renumbers); vocabulary and group map are
    /// preserved. On-disk databases are rebuilt in place; in-temp
    /// databases get a fresh scratch directory.
    pub fn compact(self, params: &TaleParams) -> Result<TaleDatabase> {
        let mut fresh = GraphDb::new();
        for (_, name) in self.db.node_vocab().iter() {
            fresh.intern_node_label(name);
        }
        for (_, name) in self.db.edge_vocab().iter() {
            fresh.intern_edge_label(name);
        }
        if let Some(groups) = self.db.group_map() {
            fresh.set_group(groups.to_vec())?;
        }
        for (id, name, g) in self.db.iter() {
            if !self.index.is_removed(id) {
                fresh.insert(name.to_owned(), g.clone());
            }
        }
        let in_temp = self._scratch.is_some();
        let dir = self.index.dir().to_owned();
        drop(self.index); // release page-file handles before truncating
        if in_temp {
            TaleDatabase::build_in_temp(fresh, params)
        } else {
            TaleDatabase::build(fresh, &dir, params)
        }
    }

    fn index_dir(&self) -> &Path {
        self.index.dir()
    }

    /// Interns a node label name into the database vocabulary (for
    /// authoring graphs to pass to [`TaleDatabase::insert_graph`]).
    ///
    /// Growing the vocabulary past `Sbit` after a deterministic-regime
    /// build keeps the index *correct* (bit positions wrap, which can only
    /// add filter false positives, never false negatives) but a rebuild
    /// regains the Bloom regime's precision.
    pub fn intern_node_label(&mut self, name: &str) -> tale_graph::NodeLabel {
        // Conservative: a vocabulary change can alter effective labels,
        // which the cache keys by.
        self.cache.clear();
        self.db.intern_node_label(name)
    }

    /// The underlying graph database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The NH-Index (for introspection: sizes, probe stats).
    pub fn index(&self) -> &NhIndex {
        &self.index
    }

    /// On-disk index footprint in bytes.
    pub fn index_size_bytes(&self) -> u64 {
        self.index.size_bytes()
    }

    fn run(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        let caches = [&self.cache];
        exec::run_batch(
            &self.db,
            &[&self.index],
            opts.use_cache.then_some(&caches[..]),
            queries,
            opts,
        )
    }

    /// Runs an approximate subgraph query (the full §V pipeline, staged
    /// through [`crate::engine`]).
    ///
    /// The query graph's labels must come from this database's vocabulary
    /// (intern them via [`GraphDb::intern_node_label`] before building, or
    /// construct queries from database graphs).
    pub fn query(&self, query: &Graph, opts: &QueryOptions) -> Result<Vec<QueryMatch>> {
        Ok(self.query_with_stats(query, opts)?.0)
    }

    /// Like [`TaleDatabase::query`], also returning per-stage execution
    /// statistics (probe traffic, buffer-pool hit rate, wall clock).
    pub fn query_with_stats(
        &self,
        query: &Graph,
        opts: &QueryOptions,
    ) -> Result<(Vec<QueryMatch>, QueryStats)> {
        let (mut outputs, mut batch) = self.run(&[query], opts)?;
        Ok((outputs.remove(0), batch.per_query.remove(0)))
    }

    /// Runs a batch of queries through the staged engine. The returned
    /// vector is aligned with `queries`, and each entry is bit-identical
    /// to what a standalone [`TaleDatabase::query`] call would return —
    /// the batch only amortizes: duplicate queries run once, duplicate
    /// probe signatures hit the disk index once, and the thread pool fans
    /// over all per-graph work without syncing at query boundaries.
    pub fn query_batch(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<Vec<Vec<QueryMatch>>> {
        Ok(self.query_batch_with_stats(queries, opts)?.0)
    }

    /// Like [`TaleDatabase::query_batch`], also returning batch-level
    /// statistics (per-query traffic, amortization counters, stage times).
    pub fn query_batch_with_stats(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        self.run(queries, opts)
    }

    /// Counter snapshot of the result cache (hits, misses, invalidations).
    pub fn result_cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result (the engine does this automatically on
    /// [`TaleDatabase::insert_graph`] / [`TaleDatabase::remove_graph`]).
    pub fn clear_result_cache(&self) {
        self.cache.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn triangle_plus_tail(db: &mut GraphDb) -> Graph {
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let c = db.intern_node_label("C");
        let d = db.intern_node_label("D");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(c);
        let n3 = g.add_node(d);
        g.add_edge(n0, n1).unwrap();
        g.add_edge(n1, n2).unwrap();
        g.add_edge(n0, n2).unwrap();
        g.add_edge(n2, n3).unwrap();
        g
    }

    #[test]
    fn self_query_is_top_hit_with_full_match() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        // decoy: same labels, no edges
        let mut decoy = Graph::new_undirected();
        for n in g.nodes() {
            decoy.add_node(g.label(n));
        }
        db.insert("decoy", decoy);

        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res[0].graph_name, "target");
        assert_eq!(res[0].matched_nodes, 4);
        assert_eq!(res[0].matched_edges, 4);
    }

    #[test]
    fn top_k_truncates() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        for i in 0..6 {
            db.insert(format!("g{i}"), base.clone());
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions::default().with_top_k(3);
        let res = tale.query(&base, &opts).unwrap();
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn noisy_variant_still_found() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut db = GraphDb::new();
        for i in 0..8 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = gnm(&mut rng, 60, 120, 8);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 8);
        db.insert("noisy-home", noisy);
        // unrelated graphs
        for i in 0..4 {
            let other = gnm(&mut rng, 60, 120, 8);
            db.insert(format!("other{i}"), other);
        }
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            rho: 0.25,
            p_imp: 0.25,
            ..Default::default()
        };
        let res = tale.query(&original, &opts).unwrap();
        assert!(!res.is_empty());
        // The mutated sibling should match more of the query than random
        // graphs; check it lands on top.
        assert_eq!(res[0].graph_name, "noisy-home");
        assert!(
            res[0].matched_nodes > 30,
            "matched {}",
            res[0].matched_nodes
        );
    }

    #[test]
    fn random_importance_is_worse_or_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let mut db = GraphDb::new();
        for i in 0..6 {
            db.intern_node_label(&format!("L{i}"));
        }
        let original = tale_graph::generate::preferential_attachment(&mut rng, 150, 2, 0.9, 6);
        let (noisy, _) = mutate(&mut rng, &original, &MutationRates::mild(), 6);
        db.insert("home", noisy);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let degree_opts = QueryOptions {
            p_imp: 0.15,
            ..Default::default()
        };
        let random_opts = QueryOptions {
            p_imp: 0.15,
            importance: crate::ImportanceMeasure::Random(3),
            ..Default::default()
        };
        let by_degree = tale.query(&original, &degree_opts).unwrap();
        let by_random = tale.query(&original, &random_opts).unwrap();
        // §VI-D's direction: degree centrality should not lose to random
        // on *structure* (preserved edges). Node counts alone can tie or
        // flip by a few either way — any sticking anchor lets growth add
        // nodes; edges capture whether the right paralogs were chosen.
        let ed = by_degree.first().map(|r| r.matched_edges).unwrap_or(0);
        let er = by_random.first().map(|r| r.matched_edges).unwrap_or(0);
        assert!(ed >= er, "degree edges {ed} < random edges {er}");
        assert!(ed > 0);
    }

    #[test]
    fn persist_and_reopen() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("target", g.clone());
        let dir = tempfile::tempdir().unwrap();
        {
            let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
            let r = tale.query(&g, &QueryOptions::default()).unwrap();
            assert_eq!(r[0].matched_nodes, 4);
        }
        let tale = TaleDatabase::open(dir.path(), 256).unwrap();
        let r = tale.query(&g, &QueryOptions::default()).unwrap();
        assert_eq!(r[0].matched_nodes, 4);
        assert_eq!(tale.db().len(), 1);
        assert!(tale.index_size_bytes() > 0);
    }

    #[test]
    fn incremental_insert_is_queriable_and_persistent() {
        let mut db = GraphDb::new();
        let base = triangle_plus_tail(&mut db);
        db.insert("original", base.clone());
        let dir = tempfile::tempdir().unwrap();
        let mut tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        // a second copy arrives later
        let gid = tale.insert_graph("late-arrival", base.clone()).unwrap();
        assert_eq!(tale.db().len(), 2);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&base, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert!(names.contains(&"late-arrival"), "{names:?}");
        assert!(names.contains(&"original"));
        let late = res.iter().find(|r| r.graph == gid).unwrap();
        assert_eq!(late.matched_nodes, 4);
        drop(tale);
        // reopen: the inserted graph survived on disk
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
        let res = tale.query(&base, &opts).unwrap();
        assert!(res.iter().any(|r| r.graph_name == "late-arrival"));
    }

    #[test]
    fn removed_graph_disappears_from_results() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        let mut tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        assert_eq!(tale.query(&g, &opts).unwrap().len(), 2);
        tale.remove_graph(GraphId(1)).unwrap();
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].graph_name, "keep");
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("keep", g.clone());
        db.insert("drop", g.clone());
        db.insert("keep2", g.clone());
        let dir = tempfile::tempdir().unwrap();
        let mut tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
        let full_size = tale.index_size_bytes();
        tale.remove_graph(GraphId(1)).unwrap();
        let tale = tale.compact(&TaleParams::default()).unwrap();
        assert_eq!(tale.db().len(), 2);
        assert!(tale.db().find_by_name("drop").is_none());
        assert!(tale.index_size_bytes() <= full_size);
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        let names: Vec<&str> = res.iter().map(|r| r.graph_name.as_str()).collect();
        assert_eq!(res.len(), 2, "{names:?}");
        assert!(names.contains(&"keep") && names.contains(&"keep2"));
        // the compacted on-disk form reopens cleanly
        drop(tale);
        let tale = TaleDatabase::open(dir.path(), 128).unwrap();
        assert_eq!(tale.db().len(), 2);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let res = tale
            .query(&Graph::new_undirected(), &QueryOptions::default())
            .unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn greedy_anchor_mode_runs() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g.clone());
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let opts = QueryOptions {
            greedy_anchors: true,
            ..Default::default()
        };
        let res = tale.query(&g, &opts).unwrap();
        assert_eq!(res[0].matched_nodes, 4);
    }

    #[test]
    fn unknown_label_query_matches_nothing() {
        let mut db = GraphDb::new();
        let g = triangle_plus_tail(&mut db);
        db.insert("t", g);
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
        let mut q = Graph::new_undirected();
        let x = q.add_node(NodeLabel(99)); // label never interned
        let y = q.add_node(NodeLabel(99));
        q.add_edge(x, y).unwrap();
        let res = tale.query(&q, &QueryOptions::default()).unwrap();
        assert!(res.is_empty());
    }
}
