//! The query-result cache.
//!
//! Repeated-pattern workloads (the same motif queried against a growing
//! database, dashboards re-issuing canned queries) pay the full §V
//! pipeline for every repeat. The [`ResultCache`] short-circuits them:
//! results are stored under `(canonical query signature, options
//! fingerprint)` and a **hit returns without touching the disk index at
//! all** — verifiable through [`NhIndex::counters`](tale_nhindex::NhIndex::counters).
//!
//! ## Key scheme
//!
//! * The *canonical signature* ([`super::plan::canonical_signature`]) is a 1-WL
//!   hash over effective labels, invariant under query-node relabeling, so
//!   renumbered copies of one pattern land on the same key.
//! * The *options fingerprint* ([`options_fingerprint`]) folds every
//!   result-affecting [`QueryOptions`] field, plus the planner knobs
//!   ([`QueryOptions::plan`]) and the [`PLAN_VERSION`] — so a plan change
//!   can never serve a ranking cached under a different plan shape.
//!   `threads` is excluded on purpose: results are bit-identical at every
//!   thread count, so a serial and a parallel run of the same query share
//!   one entry.
//! * Each entry additionally stores the **exact** query representation
//!   (direction, effective labels, labeled edge list). A lookup must match
//!   it byte for byte; a 1-WL collision — or a relabeled variant whose
//!   node mapping would not transfer — therefore misses and recomputes.
//!   Collisions cost time, never correctness.
//!
//! ## Stored value: pre-rank partial results
//!
//! Entries store the **pre-rank** match list of one index shard (the whole
//! database is one shard in the unsharded case): every [`QueryMatch`] the
//! match stage produced for graphs owned by that shard, before the global
//! sort and `top_k` truncation. A hit therefore re-runs only the rank
//! stage — a deterministic in-memory sort — so hits are still bit-identical
//! and still touch zero disk probes. Caching pre-rank partials is what
//! makes *scoped* invalidation sound under sharding: a mutation of shard
//! `s` can only change shard `s`'s partial lists, never another shard's.
//!
//! ## Invalidation: generation-keyed, not clear-on-write
//!
//! Nothing ever clears the cache on a mutation. Each key carries the
//! answering reader's [`cache_generation`] at lookup time; a mutation
//! that could change a reader's answers moves that reader to a fresh
//! generation, so its old entries simply become unreachable and age out
//! through LRU. Crucially, an insert into the MVCC delta does **not**
//! advance the base generation's epoch — every base-derived entry keeps
//! its key and stays warm, which is the fix for the old
//! "insert wholesale-clears the cache" bug (proven by the probe-counter
//! test: a repeat query after an insert still answers with zero disk
//! probes). [`ResultCache::evict_graph`] remains available for in-place
//! removals on the sharded path: entries that never matched the removed
//! graph stay exactly correct and resident.
//!
//! [`cache_generation`]: tale_nhindex::IndexReader::cache_generation
//!
//! Eviction is LRU over a fixed entry budget; the implementation is a
//! plain map + monotonic ticks (no external LRU crate in the vendored
//! dependency set).

use crate::params::QueryOptions;
use crate::result::QueryMatch;
use std::collections::HashMap;
use std::sync::Mutex;
use tale_graph::centrality::ImportanceMeasure;
use tale_graph::{Graph, GraphDb, NodeId};

/// Default entry budget of a [`TaleDatabase`](crate::TaleDatabase)'s cache.
pub const DEFAULT_CACHE_ENTRIES: usize = 128;

/// Exact query representation stored alongside each entry for
/// verification on lookup: direction, per-node effective labels, and the
/// labeled edge list, all in node-id order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryRepr {
    directed: bool,
    labels: Vec<u32>,
    /// `(u, v, edge label + 1)` per edge; unlabeled edges store 0.
    edges: Vec<(u32, u32, u32)>,
}

/// Builds the exact representation of `query` under `db`'s vocabulary.
pub fn query_repr(db: &GraphDb, query: &Graph) -> QueryRepr {
    QueryRepr {
        directed: query.is_directed(),
        labels: query
            .nodes()
            .map(|n: NodeId| db.effective_of_raw(query.label(n)))
            .collect(),
        edges: query
            .edges()
            .map(|(u, v, l)| (u.0, v.0, l.map(|l| l.0 + 1).unwrap_or(0)))
            .collect(),
    }
}

/// Cache key: canonical query signature × options fingerprint × the
/// reader's cache generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The relabeling-invariant 1-WL query signature.
    pub canonical: u64,
    /// The [`options_fingerprint`] of the query's options.
    pub options: u64,
    /// The answering reader's
    /// [`cache_generation`](tale_nhindex::IndexReader::cache_generation)
    /// at lookup time. A mutation that could change the reader's answers
    /// moves it to a fresh generation, so stale entries become
    /// unreachable without any explicit invalidation — and entries for
    /// readers the mutation did not touch keep their keys and stay warm.
    pub generation: u64,
}

fn fnv(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprint of every result-affecting field of [`QueryOptions`].
///
/// `threads` and `use_cache` are excluded: neither changes results.
/// Similarity models are identified by [`SimilarityModel::name`] — custom
/// models must use distinct names (or distinct parameters must appear in
/// the name) to occupy distinct cache entries.
///
/// [`SimilarityModel::name`]: tale_matching::similarity::SimilarityModel::name
pub fn options_fingerprint(opts: &QueryOptions) -> u64 {
    let mut h = fnv(0xcbf29ce484222325, opts.rho.to_bits());
    h = fnv(h, opts.p_imp.to_bits());
    let (tag, seed) = match opts.importance {
        ImportanceMeasure::Degree => (0u64, 0u64),
        ImportanceMeasure::Closeness => (1, 0),
        ImportanceMeasure::Betweenness => (2, 0),
        ImportanceMeasure::Eigenvector => (3, 0),
        ImportanceMeasure::Random(s) => (4, s),
    };
    h = fnv(h, tag);
    h = fnv(h, seed);
    h = fnv(h, opts.hops as u64);
    h = fnv(h, opts.greedy_anchors as u64);
    h = fnv(h, opts.match_edge_labels as u64);
    h = fnv(
        h,
        match opts.top_k {
            Some(k) => k as u64 + 1,
            None => 0,
        },
    );
    for b in opts.similarity.name().bytes() {
        h = fnv(h, b as u64);
    }
    // Planner coverage: the plan version (bumped whenever planning logic
    // changes shape) and the plan mode. Planning is proven
    // result-identical, but an entry produced under one plan shape must
    // never satisfy a lookup under another — if a future planner bug
    // broke identity, the fingerprint keeps it from being *served* across
    // plan shapes, and the version bump retires every pre-change entry.
    h = fnv(h, PLAN_VERSION);
    h = fnv(h, opts.plan.name().len() as u64);
    for b in opts.plan.name().bytes() {
        h = fnv(h, b as u64);
    }
    h
}

/// Version of the planning logic covered by [`options_fingerprint`].
/// Bump on any change to how plans are chosen or executed.
pub const PLAN_VERSION: u64 = 1;

struct Entry {
    repr: QueryRepr,
    results: Vec<QueryMatch>,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    invalidations: u64,
}

/// Observable cache counters (see [`ResultCache::stats`]).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Entry budget.
    pub capacity: usize,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Results stored (including LRU replacements).
    pub insertions: u64,
    /// Explicit clears (database mutations).
    pub invalidations: u64,
}

/// LRU result cache keyed by `(canonical signature, options fingerprint)`
/// with exact-query verification, holding one shard's pre-rank partial
/// match lists. Interior-mutable and thread-safe so concurrent queries
/// through `&TaleDatabase` share it.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// storage entirely — every lookup misses).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                invalidations: 0,
            }),
            capacity,
        }
    }

    /// Looks up `key`, verifying the stored query equals `repr` exactly.
    /// A hit clones the stored partial list (cheap next to the pipeline)
    /// and refreshes the entry's LRU position.
    pub fn get(&self, key: &CacheKey, repr: &QueryRepr) -> Option<Vec<QueryMatch>> {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) if e.repr == *repr => {
                e.last_used = tick;
                let out = e.results.clone();
                inner.hits += 1;
                Some(out)
            }
            _ => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores one shard's pre-rank partial list under `key`, evicting the
    /// least-recently-used entry when over budget.
    pub fn put(&self, key: CacheKey, repr: QueryRepr, results: Vec<QueryMatch>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("result cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.insertions += 1;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // O(n) eviction scan: capacity is small (hundreds) and puts
            // are rare next to the pipeline work they cap.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                repr,
                results,
                last_used: tick,
            },
        );
    }

    /// Drops every entry. No mutation path calls this anymore —
    /// invalidation is generation-keyed (see the module docs) — but
    /// explicit maintenance (compaction, tests) may still want a cold
    /// cache.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        inner.map.clear();
        inner.invalidations += 1;
    }

    /// Drops only the entries whose stored partial list contains `graph` —
    /// the remove-side invalidation. Removing a graph can only delete its
    /// own matches, so an entry that never matched it is still exactly
    /// correct and stays resident. Returns how many entries were evicted.
    pub fn evict_graph(&self, graph: tale_graph::GraphId) -> usize {
        let mut inner = self.inner.lock().expect("result cache poisoned");
        let before = inner.map.len();
        inner
            .map
            .retain(|_, e| e.results.iter().all(|m| m.graph != graph));
        let evicted = before - inner.map.len();
        if evicted > 0 {
            inner.invalidations += 1;
        }
        evicted
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("result cache poisoned");
        CacheStats {
            entries: inner.map.len(),
            capacity: self.capacity,
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            invalidations: inner.invalidations,
        }
    }

    /// Entry budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}
