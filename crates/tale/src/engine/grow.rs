//! The grow stage: the per-candidate-graph match driver (§V, step 2).
//!
//! One call = one candidate database graph: resolve the probe hits into
//! one-to-one anchors, grow the match (Algorithms 2–4), then iteratively
//! re-anchor the still-unmatched residue until a fixpoint, and score the
//! result under the query's similarity model. Pure with respect to its
//! inputs, which is what lets [`exec`](crate::engine::exec) fan calls out
//! across threads with bit-identical results.

use crate::engine::anchor::resolve_anchors;
use crate::params::QueryOptions;
use crate::result::QueryMatch;
use std::collections::HashMap;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_matching::grow::{grow_match, Anchor, CandidateScorer, GrowConfig, GrowInput};
use tale_matching::similarity::MatchContext;

/// Matches one query against one candidate graph. `hits` is the graph's
/// probe bucket: `(important-node index, db node id, Eq. IV.5 quality)`.
/// Returns `None` when no anchor sticks or growth matches nothing.
pub(crate) fn match_one_graph(
    db: &GraphDb,
    query: &Graph,
    important: &[NodeId],
    gid: u32,
    hits: &[(usize, u32, f64)],
    opts: &QueryOptions,
) -> Option<QueryMatch> {
    let graph_id = GraphId(gid);
    let target = db.graph(graph_id);
    let anchors = resolve_anchors(query, target, important, hits, &[], opts);
    if anchors.is_empty() {
        return None;
    }
    let q_label = |n: NodeId| db.effective_of_raw(query.label(n));
    let t_label = |n: NodeId| db.effective_label(graph_id, n);
    let input = GrowInput {
        query,
        target,
        q_label: &q_label,
        t_label: &t_label,
    };
    let grow_cfg = GrowConfig {
        rho: opts.rho,
        hops: opts.hops,
        match_edge_labels: opts.match_edge_labels,
    };
    let mut m = grow_match(&input, &grow_cfg, &anchors);
    if m.pairs.is_empty() {
        return None;
    }
    // Residual re-anchoring: §V-C growth only reaches nodes whose
    // connecting edges survived in *both* graphs, so noisy regions
    // stall unmatched even when their nodes have clean one-to-one
    // counterparts. Re-anchor the residue directly — evaluate the
    // index conditions exactly against still-unmatched db nodes,
    // resolve one-to-one with the committed pairs as conservation
    // evidence — and grow again until a fixpoint.
    let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for t in target.nodes() {
        by_label.entry(t_label(t)).or_default().push(t);
    }
    let mut scorer = CandidateScorer::new(&input);
    loop {
        let mut t_taken = vec![false; target.node_count()];
        let mut q_taken = vec![false; query.node_count()];
        for p in &m.pairs {
            q_taken[p.query.idx()] = true;
            t_taken[p.target.idx()] = true;
        }
        let residual: Vec<NodeId> = query.nodes().filter(|n| !q_taken[n.idx()]).collect();
        if residual.is_empty() {
            break;
        }
        let mut rhits: Vec<(usize, u32, f64)> = Vec::new();
        for (qi, &q) in residual.iter().enumerate() {
            let Some(cands) = by_label.get(&q_label(q)) else {
                continue;
            };
            for &t in cands {
                if t_taken[t.idx()] {
                    continue;
                }
                if let Some(w) = scorer.quality(&input, &grow_cfg, q, t) {
                    rhits.push((qi, t.0, w));
                }
            }
        }
        if rhits.is_empty() {
            break;
        }
        let fixed: Vec<(NodeId, NodeId)> = m.pairs.iter().map(|p| (p.query, p.target)).collect();
        let extra = resolve_anchors(query, target, &residual, &rhits, &fixed, opts);
        if extra.is_empty() {
            break;
        }
        let mut seeds: Vec<Anchor> = m
            .pairs
            .iter()
            .map(|p| Anchor {
                query: p.query,
                target: p.target,
                quality: p.quality,
            })
            .collect();
        seeds.extend(extra);
        let grown = grow_match(&input, &grow_cfg, &seeds);
        if grown.matched_nodes() <= m.matched_nodes() {
            break;
        }
        m = grown;
    }
    let ctx = MatchContext {
        query,
        target,
        m: &m,
    };
    let score = opts.similarity.score(&ctx);
    let matched_nodes = m.matched_nodes();
    let matched_edges = m.matched_edges(query, target);
    Some(QueryMatch {
        graph: graph_id,
        graph_name: db.name(graph_id).to_owned(),
        m,
        score,
        matched_nodes,
        matched_edges,
    })
}
