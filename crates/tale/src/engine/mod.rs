//! The staged query engine.
//!
//! [`TaleDatabase::query`](crate::TaleDatabase::query) used to be one
//! monolithic function; it is now an explicit pipeline of stages, each in
//! its own module, orchestrated by [`exec`]:
//!
//! 1. [`plan`] — per query: importance selection (§V-B), the NH-Index
//!    probe signature of every important node, and a canonical
//!    (relabeling-invariant) query signature used as the cache key. In
//!    cost mode (the default) the plan additionally carries an explicit
//!    plan tree derived from per-index statistics: selectivity-ordered
//!    probes, a readahead budget, and per-shard feasibility + score
//!    bounds that let [`exec`] prune shards with a proof they cannot
//!    change the result. `tale-cli explain` renders it.
//! 2. [`cache`] — the [`ResultCache`](cache::ResultCache) lookup, keyed by
//!    `(canonical signature, options fingerprint)` and verified against the
//!    exact query so hash collisions can never serve wrong results.
//! 3. [`probe`] — the NH-Index probe stage (conditions IV.1–IV.4,
//!    Eq. IV.5 scoring). Identical probe signatures across the batch hit
//!    the disk index once and share the answer.
//! 4. [`anchor`] — one-to-one anchor resolution per candidate graph
//!    (maximum-weight bipartite matching + conservation-aware refinement).
//! 5. [`grow`] — the per-graph match driver: grow from anchors
//!    (Algorithms 2–4) and iteratively re-anchor the residue to a fixpoint.
//! 6. [`exec`] — scatter/gather over index *shards* and worker threads
//!    with a deterministic index-ordered merge, then per-query ranking.
//!    The unsharded database is simply the one-shard case. Batch output is
//!    bit-identical to running each query alone at any thread count and
//!    any shard count (see the determinism argument in [`exec`]).
//!
//! [`stats`] threads per-stage observability (probe counters, buffer-pool
//! hit rates from `tale-storage`, per-shard [`stats::ShardStats`], wall
//! clocks) through every layer.

pub mod anchor;
pub mod cache;
pub mod exec;
pub mod grow;
pub mod plan;
pub mod probe;
pub mod stats;
