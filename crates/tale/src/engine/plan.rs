//! The plan stage: importance selection + signatures, computed once per
//! query.
//!
//! A [`QueryPlan`] carries everything later stages need that depends only
//! on the query and the options: the important nodes (§V-B), their
//! NH-Index probe signatures, and a *canonical signature* — a
//! relabeling-invariant hash over effective labels that keys the
//! [`ResultCache`](crate::engine::cache::ResultCache).

use crate::params::QueryOptions;
use tale_graph::centrality::select_important_covering;
use tale_graph::{Graph, GraphDb, NodeId};
use tale_nhindex::{IndexReader, QuerySignature};

/// Everything the engine derives from one query before touching the index.
#[derive(Debug)]
pub struct QueryPlan {
    /// Important query nodes, in selection order (§V-B).
    pub important: Vec<NodeId>,
    /// One probe signature per important node, aligned with `important`.
    pub signatures: Vec<QuerySignature>,
    /// Canonical query signature over effective labels — invariant under
    /// node-id relabeling of the query graph.
    pub canonical: u64,
}

/// Runs the plan stage for one query.
pub(crate) fn plan_query(
    db: &GraphDb,
    index: &dyn IndexReader,
    query: &Graph,
    opts: &QueryOptions,
) -> QueryPlan {
    let important = select_important_covering(query, opts.importance, opts.p_imp);
    let q_label = |n: NodeId| db.effective_of_raw(query.label(n));
    let signatures = important
        .iter()
        .map(|&n| index.signature(query, n, &q_label))
        .collect();
    QueryPlan {
        canonical: canonical_signature(query, &q_label),
        important,
        signatures,
    }
}

/// FNV-1a over a u64 stream — stable across runs and platforms.
fn fnv(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const SEED: u64 = 0xcbf29ce484222325;
const WL_ROUNDS: usize = 3;

/// Canonical query signature: a 1-WL color-refinement hash over the
/// query's *effective* labels (group labels under §IV-E) and edge labels,
/// folded into the sorted final color multiset plus node/edge counts and
/// direction.
///
/// Invariant under any relabeling of the query's node ids (the refinement
/// reads colors by node, and the final fold sorts the multiset), which is
/// the property the result cache needs: the same pattern submitted with
/// its nodes in a different order maps to the same cache key. Like any
/// 1-WL hash, distinct graphs may collide — which is why cache entries
/// also store the exact query for verification and a collision can only
/// cost a recomputation, never a wrong answer.
pub fn canonical_signature(query: &Graph, label_of: &dyn Fn(NodeId) -> u32) -> u64 {
    let mut colors: Vec<u64> = query
        .nodes()
        .map(|n| fnv(SEED, label_of(n) as u64))
        .collect();
    let mut next = colors.clone();
    for _ in 0..WL_ROUNDS {
        for n in query.nodes() {
            // Fold each incident edge's label into the neighbor's color so
            // edge relabelings change the signature too.
            let mut outs: Vec<u64> = query
                .neighbor_edges(n)
                .map(|(v, eid)| {
                    let el = query.edge_label(eid).map(|l| l.0 as u64 + 1).unwrap_or(0);
                    fnv(colors[v.idx()], el)
                })
                .collect();
            outs.sort_unstable();
            let mut h = fnv(SEED, colors[n.idx()]);
            for c in outs {
                h = fnv(h, c);
            }
            if query.is_directed() {
                let mut ins: Vec<u64> = query.in_neighbors(n).map(|v| colors[v.idx()]).collect();
                ins.sort_unstable();
                h = fnv(h, 0xD1F); // domain separation between out and in
                for c in ins {
                    h = fnv(h, c);
                }
            }
            next[n.idx()] = h;
        }
        std::mem::swap(&mut colors, &mut next);
    }
    colors.sort_unstable();
    let mut h = fnv(SEED, query.node_count() as u64);
    h = fnv(h, query.edge_count() as u64);
    h = fnv(h, query.is_directed() as u64);
    for c in colors {
        h = fnv(h, c);
    }
    h
}
