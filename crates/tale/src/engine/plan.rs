//! The plan stage: importance selection, signatures, and — in cost mode —
//! an explicit plan tree derived from per-index statistics.
//!
//! A [`QueryPlan`] carries everything later stages need that depends only
//! on the query, the options, and the readers' statistics: the important
//! nodes (§V-B), their NH-Index probe signatures, a *canonical signature*
//! (a relabeling-invariant hash keying the
//! [`ResultCache`](crate::engine::cache::ResultCache)), and the planner's
//! decisions:
//!
//! * [`probe_order`](QueryPlan::probe_order) — probes sorted by estimated
//!   selectivity (fewest estimated posting rows first), so the cheapest
//!   evidence lands first in the readahead queue. Buckets are still
//!   filled per important-node position, so reordering cannot change any
//!   result.
//! * [`prefetch_hint`](QueryPlan::prefetch_hint) — an estimated posting
//!   count that sizes the IoPool readahead budget for this query's
//!   probes.
//! * [`shard_plans`](QueryPlan::shard_plans) — per-reader feasibility,
//!   row estimates, and a similarity score upper bound supporting top-K
//!   shard pruning (see `engine::exec` for the safety argument).
//!
//! In [`PlanMode::Fixed`] all of that collapses to the identity: original
//! probe order, no hints, no shard plans — the baseline pipeline.

use crate::params::{PlanMode, QueryOptions};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use tale_graph::centrality::select_important_covering;
use tale_graph::{Graph, GraphDb, NodeId};
use tale_matching::similarity::BoundContext;
use tale_nhindex::{IndexReader, IndexStatistics, NhIndex, QuerySignature};

/// One reader's ("shard's") entry in a cost-mode plan.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShardPlan {
    /// Reader index in the executor's shard order.
    pub shard: usize,
    /// Whether the reader exposed statistics; without them the planner
    /// treats it as opaque (everything feasible, nothing prunable).
    pub has_stats: bool,
    /// Probe signatures the statistics say *can* return candidates here
    /// (label present with sufficient max degree). Zero with `has_stats`
    /// proves every probe answers empty on this shard.
    pub feasible_probes: usize,
    /// Estimated posting rows all probes together would visit.
    pub est_rows: u64,
    /// Upper bound on any result score from this shard under the query's
    /// similarity model, when the model can bound itself.
    pub score_bound: Option<f64>,
}

/// Everything the engine derives from one query before touching the index.
#[derive(Debug)]
pub struct QueryPlan {
    /// Important query nodes, in selection order (§V-B).
    pub important: Vec<NodeId>,
    /// One probe signature per important node, aligned with `important`.
    pub signatures: Vec<QuerySignature>,
    /// Canonical query signature over effective labels — invariant under
    /// node-id relabeling of the query graph.
    pub canonical: u64,
    /// Probe execution order: a permutation of `0..signatures.len()`.
    /// Identity in fixed mode; ascending estimated rows (ties by original
    /// position) in cost mode.
    pub probe_order: Vec<usize>,
    /// Estimated posting rows per signature (summed over readers with
    /// statistics), aligned with `signatures`. Empty when no reader has
    /// statistics or in fixed mode.
    pub est_rows: Vec<u64>,
    /// Estimated postings this query's probes would fetch — the readahead
    /// budget. `None` when any reader lacks statistics (unbounded).
    pub prefetch_hint: Option<u64>,
    /// Per-reader cost entries; empty in fixed mode.
    pub shard_plans: Vec<ShardPlan>,
}

impl QueryPlan {
    /// True when cost planning moved any probe off its original position.
    pub fn is_reordered(&self) -> bool {
        self.probe_order.iter().enumerate().any(|(i, &o)| i != o)
    }

    /// Total estimated posting rows across all probes (0 without stats).
    pub fn total_est_rows(&self) -> u64 {
        self.est_rows.iter().sum()
    }
}

/// Runs the plan stage for one query against the executor's full reader
/// set (`readers[0]` supplies the signature scheme — all readers share
/// it).
pub(crate) fn plan_query(
    db: &GraphDb,
    readers: &[&dyn IndexReader],
    query: &Graph,
    opts: &QueryOptions,
) -> QueryPlan {
    let important = select_important_covering(query, opts.importance, opts.p_imp);
    let q_label = |n: NodeId| db.effective_of_raw(query.label(n));
    let signatures: Vec<QuerySignature> = important
        .iter()
        .map(|&n| readers[0].signature(query, n, &q_label))
        .collect();
    let mut plan = QueryPlan {
        canonical: canonical_signature(query, &q_label),
        probe_order: (0..signatures.len()).collect(),
        est_rows: Vec::new(),
        prefetch_hint: None,
        shard_plans: Vec::new(),
        important,
        signatures,
    };
    if opts.plan == PlanMode::Cost {
        cost_annotate(&mut plan, db, readers, query, opts);
    }
    plan
}

/// Fills the cost-mode fields of `plan` from the readers' statistics.
fn cost_annotate(
    plan: &mut QueryPlan,
    db: &GraphDb,
    readers: &[&dyn IndexReader],
    query: &Graph,
    opts: &QueryOptions,
) {
    let stats: Vec<Option<Arc<IndexStatistics>>> = readers.iter().map(|r| r.statistics()).collect();
    let any_stats = stats.iter().any(|s| s.is_some());
    let all_stats = stats.iter().all(|s| s.is_some());

    // Per-probe lower degree bound of the range scan (condition IV.2).
    let deg_mins: Vec<u32> = plan
        .signatures
        .iter()
        .map(|sig| sig.degree - NhIndex::miss_budgets(sig.degree, opts.rho).0)
        .collect();

    if any_stats {
        // Row estimates summed over stats-bearing readers; opaque readers
        // contribute nothing to the ordering (they cost the same for
        // every order).
        plan.est_rows = plan
            .signatures
            .iter()
            .zip(&deg_mins)
            .map(|(sig, &dm)| {
                stats
                    .iter()
                    .flatten()
                    .map(|s| s.estimate_rows(sig.label, dm))
                    .sum()
            })
            .collect();
        let mut order: Vec<usize> = (0..plan.signatures.len()).collect();
        order.sort_by_key(|&i| (plan.est_rows[i], i));
        plan.probe_order = order;
    }
    if all_stats {
        plan.prefetch_hint = Some(
            plan.signatures
                .iter()
                .zip(&deg_mins)
                .map(|(sig, &dm)| {
                    stats
                        .iter()
                        .flatten()
                        .map(|s| s.estimate_postings(sig.label, dm))
                        .sum::<u64>()
                })
                .sum(),
        );
    }

    // Query effective-label histogram for the matched-pairs bound.
    let mut q_labels: HashMap<u32, u64> = HashMap::new();
    for n in query.nodes() {
        *q_labels
            .entry(db.effective_of_raw(query.label(n)))
            .or_insert(0) += 1;
    }
    let query_nodes = query.node_count();
    let query_edges = query.edge_count();

    plan.shard_plans = stats
        .iter()
        .enumerate()
        .map(|(shard, s)| match s {
            None => ShardPlan {
                shard,
                has_stats: false,
                feasible_probes: plan.signatures.len(),
                est_rows: 0,
                score_bound: None,
            },
            Some(s) => {
                let feasible_probes = plan
                    .signatures
                    .iter()
                    .zip(&deg_mins)
                    .filter(|(sig, &dm)| s.matchable(sig.label, dm))
                    .count();
                let est_rows = plan
                    .signatures
                    .iter()
                    .zip(&deg_mins)
                    .map(|(sig, &dm)| s.estimate_rows(sig.label, dm))
                    .sum();
                // Growth only pairs equal effective labels, so any single
                // graph yields at most Σ_label min(query, shard) pairs.
                let max_pairs: u64 = q_labels
                    .iter()
                    .map(|(&l, &qc)| qc.min(s.label_nodes(l)))
                    .sum();
                let score_bound = opts.similarity.score_upper_bound(&BoundContext {
                    query_nodes,
                    query_edges,
                    max_pairs: max_pairs.min(usize::MAX as u64) as usize,
                    min_target_size: s.min_graph_size.map(|v| v.min(usize::MAX as u64) as usize),
                });
                ShardPlan {
                    shard,
                    has_stats: true,
                    feasible_probes,
                    est_rows,
                    score_bound,
                }
            }
        })
        .collect();
}

/// FNV-1a over a u64 stream — stable across runs and platforms.
fn fnv(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const SEED: u64 = 0xcbf29ce484222325;
const WL_ROUNDS: usize = 3;

/// Canonical query signature: a 1-WL color-refinement hash over the
/// query's *effective* labels (group labels under §IV-E) and edge labels,
/// folded into the sorted final color multiset plus node/edge counts and
/// direction.
///
/// Invariant under any relabeling of the query's node ids (the refinement
/// reads colors by node, and the final fold sorts the multiset), which is
/// the property the result cache needs: the same pattern submitted with
/// its nodes in a different order maps to the same cache key. Like any
/// 1-WL hash, distinct graphs may collide — which is why cache entries
/// also store the exact query for verification and a collision can only
/// cost a recomputation, never a wrong answer.
pub fn canonical_signature(query: &Graph, label_of: &dyn Fn(NodeId) -> u32) -> u64 {
    let mut colors: Vec<u64> = query
        .nodes()
        .map(|n| fnv(SEED, label_of(n) as u64))
        .collect();
    let mut next = colors.clone();
    for _ in 0..WL_ROUNDS {
        for n in query.nodes() {
            // Fold each incident edge's label into the neighbor's color so
            // edge relabelings change the signature too.
            let mut outs: Vec<u64> = query
                .neighbor_edges(n)
                .map(|(v, eid)| {
                    let el = query.edge_label(eid).map(|l| l.0 as u64 + 1).unwrap_or(0);
                    fnv(colors[v.idx()], el)
                })
                .collect();
            outs.sort_unstable();
            let mut h = fnv(SEED, colors[n.idx()]);
            for c in outs {
                h = fnv(h, c);
            }
            if query.is_directed() {
                let mut ins: Vec<u64> = query.in_neighbors(n).map(|v| colors[v.idx()]).collect();
                ins.sort_unstable();
                h = fnv(h, 0xD1F); // domain separation between out and in
                for c in ins {
                    h = fnv(h, c);
                }
            }
            next[n.idx()] = h;
        }
        std::mem::swap(&mut colors, &mut next);
    }
    colors.sort_unstable();
    let mut h = fnv(SEED, query.node_count() as u64);
    h = fnv(h, query.edge_count() as u64);
    h = fnv(h, query.is_directed() as u64);
    for c in colors {
        h = fnv(h, c);
    }
    h
}

/// One node of the rendered plan tree (`explain` output).
#[derive(Debug, Clone, Serialize)]
pub struct PlanNode {
    /// Operator name (`rank`, `scatter`, `shard`, `probe`, …).
    pub op: String,
    /// Human-readable cost/shape annotation.
    pub detail: String,
    /// Estimated posting rows under this node (0 when unknown).
    pub est_rows: u64,
    /// Child operators.
    pub children: Vec<PlanNode>,
}

/// One probe's entry in a [`PlanReport`], in execution order.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeReport {
    /// Position in the execution order (0 = probed first).
    pub order: usize,
    /// Original important-node position this probe fills.
    pub position: usize,
    /// Query node id.
    pub node: u32,
    /// Effective label of the probe signature.
    pub label: u32,
    /// Degree of the probe signature.
    pub degree: u32,
    /// Estimated posting rows, when statistics were available.
    pub est_rows: Option<u64>,
}

/// A serializable, renderable description of the plan the engine chose
/// for one query — the payload of `tale-cli explain` / `query --explain`.
#[derive(Debug, Clone, Serialize)]
pub struct PlanReport {
    /// Plan mode name (`fixed` / `cost`).
    pub mode: String,
    /// Canonical (relabeling-invariant) query signature, hex.
    pub canonical: String,
    /// Important query nodes selected (§V-B).
    pub important_nodes: usize,
    /// Whether cost planning moved any probe off its original position.
    pub reordered: bool,
    /// Readahead budget in postings, when statistics allowed one.
    pub prefetch_hint: Option<u64>,
    /// Probes in execution order.
    pub probes: Vec<ProbeReport>,
    /// Per-shard cost entries (empty in fixed mode).
    pub shards: Vec<ShardPlan>,
    /// The operator tree with cost annotations.
    pub tree: PlanNode,
}

impl PlanReport {
    /// Pretty-prints the operator tree with cost annotations.
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan mode={} canonical={} important={} reordered={}{}\n",
            self.mode,
            self.canonical,
            self.important_nodes,
            self.reordered,
            match self.prefetch_hint {
                Some(h) => format!(" prefetch_budget={h}"),
                None => String::new(),
            }
        );
        fn walk(node: &PlanNode, prefix: &str, last: bool, out: &mut String) {
            let branch = if last { "└─ " } else { "├─ " };
            out.push_str(&format!(
                "{prefix}{branch}{} [{}] est_rows={}\n",
                node.op, node.detail, node.est_rows
            ));
            let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
            for (i, c) in node.children.iter().enumerate() {
                walk(c, &child_prefix, i + 1 == node.children.len(), out);
            }
        }
        walk(&self.tree, "", true, &mut out);
        out
    }
}

/// Builds the explain report for one query against `readers` — the
/// same `plan_query` the executor runs, rendered instead of executed.
/// Public so sharded front ends (`tale-shard`) can explain against their
/// own reader sets; library users should prefer
/// [`TaleDatabase::explain`](crate::TaleDatabase::explain).
pub fn plan_report(
    db: &GraphDb,
    readers: &[&dyn IndexReader],
    query: &Graph,
    opts: &QueryOptions,
) -> PlanReport {
    let plan = plan_query(db, readers, query, opts);
    let probes: Vec<ProbeReport> = plan
        .probe_order
        .iter()
        .enumerate()
        .map(|(order, &position)| {
            let sig = &plan.signatures[position];
            ProbeReport {
                order,
                position,
                node: plan.important[position].0,
                label: sig.label,
                degree: sig.degree,
                est_rows: plan.est_rows.get(position).copied(),
            }
        })
        .collect();

    let probe_children = || -> Vec<PlanNode> {
        probes
            .iter()
            .map(|p| PlanNode {
                op: "probe".into(),
                detail: format!("node={} label={} degree={}", p.node, p.label, p.degree),
                est_rows: p.est_rows.unwrap_or(0),
                children: Vec::new(),
            })
            .collect()
    };

    let shard_nodes: Vec<PlanNode> = if plan.shard_plans.is_empty() {
        (0..readers.len())
            .map(|s| PlanNode {
                op: "shard".into(),
                detail: format!("shard={s} fixed"),
                est_rows: 0,
                children: probe_children(),
            })
            .collect()
    } else {
        plan.shard_plans
            .iter()
            .map(|sp| PlanNode {
                op: "shard".into(),
                detail: format!(
                    "shard={} {}feasible={}/{}{}",
                    sp.shard,
                    if sp.has_stats { "" } else { "no-stats " },
                    sp.feasible_probes,
                    plan.signatures.len(),
                    match sp.score_bound {
                        Some(b) => format!(" score_bound={b:.3}"),
                        None => String::new(),
                    }
                ),
                est_rows: sp.est_rows,
                children: if sp.has_stats && sp.feasible_probes == 0 {
                    vec![PlanNode {
                        op: "pruned".into(),
                        detail: "no feasible probe — provably empty".into(),
                        est_rows: 0,
                        children: Vec::new(),
                    }]
                } else {
                    probe_children()
                },
            })
            .collect()
    };

    let total_est = plan.total_est_rows();
    let tree = PlanNode {
        op: "rank".into(),
        detail: match opts.top_k {
            Some(k) => format!("top_k={k} similarity={}", opts.similarity.name()),
            None => format!("all similarity={}", opts.similarity.name()),
        },
        est_rows: total_est,
        children: vec![PlanNode {
            op: "scatter".into(),
            detail: format!("shards={} threads={}", readers.len(), opts.threads),
            est_rows: total_est,
            children: shard_nodes,
        }],
    };

    PlanReport {
        mode: opts.plan.name().to_string(),
        canonical: format!("{:016x}", plan.canonical),
        important_nodes: plan.important.len(),
        reordered: plan.is_reordered(),
        prefetch_hint: plan.prefetch_hint,
        probes,
        shards: plan.shard_plans.clone(),
        tree,
    }
}
