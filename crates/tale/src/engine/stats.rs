//! Per-stage observability for the query engine.
//!
//! Every query (and every batch) reports what each pipeline stage did and
//! cost: probe counts against the disk index, postings scanned, the
//! buffer-pool hit rate underneath, and per-stage wall clocks. The CLI
//! surfaces these via `tale-cli query --stats`; the bench harness records
//! them in `BENCH_speedup.json`.

use serde::Serialize;
use tale_storage::PoolStats;

/// Wall-clock seconds spent in each engine stage.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageTimes {
    /// Importance selection + signature construction (plan stage).
    pub plan_secs: f64,
    /// NH-Index probing (probe stage).
    pub probe_secs: f64,
    /// Anchor resolution + growth over candidate graphs (match stage).
    pub match_secs: f64,
    /// Similarity ranking and truncation (rank stage).
    pub rank_secs: f64,
    /// End-to-end, including cache lookups and result assembly.
    pub total_secs: f64,
}

/// Buffer-pool traffic attributed to one query or batch (fetch-taxonomy
/// deltas of the index's pools over the span of the run). Every page
/// fetch lands in exactly one bucket, so
/// `hits + coalesced + misses + prefetched` is the access count and
/// `misses` is exactly the demand disk reads the run performed.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PoolDelta {
    /// Page fetches served from a resident frame.
    pub hits: u64,
    /// Page fetches that waited on another thread's in-flight load
    /// instead of issuing their own read (the inflight-wait counter).
    pub coalesced: u64,
    /// Page fetches that performed a synchronous disk read.
    pub misses: u64,
    /// Page fetches satisfied by the async prefetcher's staging area —
    /// the read happened, but off the query's critical path.
    pub prefetched: u64,
}

impl PoolDelta {
    /// Fraction of fetches that found the page already in (or entering)
    /// the pool — `(hits + coalesced) / accesses` — in `[0, 1]`; zero
    /// accesses count as rate 0.
    pub fn hit_rate(&self) -> f64 {
        PoolStats {
            hits: self.hits,
            coalesced: self.coalesced,
            misses: self.misses,
            prefetched: self.prefetched,
        }
        .hit_rate()
    }
}

impl From<PoolStats> for PoolDelta {
    fn from(p: PoolStats) -> Self {
        PoolDelta {
            hits: p.hits,
            coalesced: p.coalesced,
            misses: p.misses,
            prefetched: p.prefetched,
        }
    }
}

/// What one query cost, stage by stage.
///
/// In a batch, stage wall clocks and the pool delta are those of the
/// *enclosing batch* (stages run batch-wide, so per-query slices are not
/// individually timeable); the probe counters are per query: each probe
/// signature the query needed is credited to it exactly as a standalone
/// run would, with [`QueryStats::probes_shared`] recording how many of
/// those answers were amortized across the batch instead of hitting the
/// disk index again.
#[derive(Debug, Clone, Default, Serialize)]
pub struct QueryStats {
    /// Important query nodes selected by the plan stage (§V-B).
    pub important_nodes: usize,
    /// Probe signatures this query needed answered.
    pub probes: u64,
    /// Of those, answered by a probe another signature already paid for
    /// (batch dedup), rather than a fresh disk probe.
    pub probes_shared: u64,
    /// B+-tree keys visited on this query's behalf.
    pub keys_scanned: u64,
    /// Postings fetched on this query's behalf.
    pub postings_fetched: u64,
    /// Postings the label-pair pre-filter skipped on this query's behalf
    /// before any blob prefetch (see `tale_nhindex::filter`).
    pub postings_filtered: u64,
    /// Bitmap rows examined by Algorithm 1 on this query's behalf.
    pub rows_examined: u64,
    /// Candidate node matches surviving conditions IV.1–IV.4.
    pub candidates: u64,
    /// Database graphs with at least one candidate (match-stage fan-out).
    pub candidate_graphs: usize,
    /// Matches returned (after ranking and `top_k`).
    pub matches: usize,
    /// True when the result came from the [`ResultCache`] — the engine
    /// never touched the disk index (all probe counters are zero).
    ///
    /// [`ResultCache`]: crate::engine::cache::ResultCache
    pub cache_hit: bool,
    /// The planner's posting-row estimate for this query (0 in fixed mode
    /// or without statistics) — compare against the actual
    /// [`rows_examined`](QueryStats::rows_examined) to judge the cost
    /// model's calibration.
    pub est_rows: u64,
    /// Shards the planner skipped for this query with a proof they could
    /// not change the result (infeasible probes or top-K score bound).
    pub shards_pruned: usize,
    /// True when cost planning executed this query's probes in a
    /// different order than important-node selection produced.
    pub probes_reordered: bool,
    /// Stage wall clocks (of the enclosing batch when batched).
    pub stages: StageTimes,
    /// Buffer-pool traffic (of the enclosing batch when batched).
    pub pool: PoolDelta,
}

/// What one index shard did for one batch: the scatter/gather executor
/// runs probe + match per shard on its own thread(s) and records each
/// shard's traffic, wall clock, and buffer-pool delta here. The unsharded
/// path reports exactly one entry (the whole index is shard 0).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ShardStats {
    /// Shard ordinal (index into the shard set).
    pub shard: usize,
    /// Unique queries that executed on this shard (missed its result
    /// cache) this batch.
    pub uniques_executed: usize,
    /// Disk probes issued against this shard (after signature dedup).
    pub probes: u64,
    /// B+-tree keys visited on this shard.
    pub keys_scanned: u64,
    /// Postings fetched from this shard.
    pub postings_fetched: u64,
    /// Postings the label-pair pre-filter skipped on this shard.
    pub postings_filtered: u64,
    /// Bitmap rows examined on this shard.
    pub rows_examined: u64,
    /// Candidate node matches this shard's probes returned.
    pub candidates: u64,
    /// `(query, graph)` match tasks grown against this shard's graphs.
    pub match_items: usize,
    /// Partial matches this shard contributed before global ranking.
    pub matches: usize,
    /// Unique queries the planner pruned off this shard (proved unable to
    /// contribute) instead of executing.
    pub pruned_uniques: usize,
    /// This shard's buffer-pool traffic.
    pub pool: PoolDelta,
    /// Seconds this shard spent probing.
    pub probe_secs: f64,
    /// Seconds this shard spent in anchor + grow.
    pub match_secs: f64,
    /// This shard's end-to-end wall clock inside the scatter phase.
    pub wall_secs: f64,
}

/// What one batch cost end to end, plus per-query breakdowns.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries answered straight from the [`ResultCache`]
    /// (no index traffic at all).
    ///
    /// [`ResultCache`]: crate::engine::cache::ResultCache
    pub cache_hits: usize,
    /// Distinct queries actually executed after cache hits and
    /// exact-duplicate folding.
    pub unique_queries: usize,
    /// Probe signatures requested across all executed queries.
    pub probes_requested: u64,
    /// Probes that actually hit the disk index (after signature dedup);
    /// `probes_requested - probes_issued` is the batch's amortization.
    pub probes_issued: u64,
    /// `(unique query, shard)` executions the planner skipped with a
    /// conservative proof (infeasible probes, or a top-K score bound
    /// strictly below the query's K-th score).
    pub shards_pruned: u64,
    /// Executed unique queries whose probes ran in cost order rather than
    /// important-node order.
    pub probes_reordered: u64,
    /// Stage wall clocks for the whole batch.
    pub stages: StageTimes,
    /// Buffer-pool traffic for the whole batch.
    pub pool: PoolDelta,
    /// Per-shard breakdowns of the scatter phase, in shard order (one
    /// entry when unsharded).
    pub shards: Vec<ShardStats>,
    /// Per-query breakdowns, in input order.
    pub per_query: Vec<QueryStats>,
}

impl BatchStats {
    /// Scatter-phase skew: the slowest shard's wall clock over the mean
    /// shard wall clock (`1.0` = perfectly balanced; `0.0` when no shard
    /// did timed work). Large values mean the partitioning policy left one
    /// shard holding most of the batch's work.
    pub fn shard_skew(&self) -> f64 {
        if self.shards.is_empty() {
            return 0.0;
        }
        let max = self.shards.iter().map(|s| s.wall_secs).fold(0.0, f64::max);
        let mean = self.shards.iter().map(|s| s.wall_secs).sum::<f64>() / self.shards.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}
