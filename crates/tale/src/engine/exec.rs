//! The exec stage: consumes each query's [`QueryPlan`] and orchestrates
//! cache → probe → anchor/grow → rank for a whole batch, scattering work
//! across index shards and worker threads and gathering with a
//! deterministic index-ordered merge.
//!
//! Batch semantics are exact: the output of [`run_batch`] is bit-identical
//! to running each query alone through the same pipeline, at every thread
//! count **and at every shard count**. The batch only *amortizes* —
//! duplicate queries are executed once, duplicate probe signatures are
//! probed once per shard, and the thread pool fans over the union of all
//! per-graph work items instead of syncing at each query boundary.
//!
//! ## Why sharding cannot change results
//!
//! Every database graph belongs to exactly one shard, all shards share one
//! neighbor-array scheme (chosen from the full database vocabulary at
//! build time), and a probe answer is a pure function of `(signature, ρ)`
//! over the rows present in the index. A shard's probe answer is therefore
//! exactly the subsequence of the unsharded answer whose graphs live in
//! that shard, so each `(query, graph)` match task receives a byte-equal
//! candidate bucket regardless of shard count. The final rank comparator —
//! score descending, graph id ascending — is a total order over matches
//! (graph ids are unique per query), so merging the shards' disjoint
//! partial lists in *any* order sorts to the same ranked output.
//!
//! ## Why cost planning cannot change results
//!
//! In [`PlanMode::Cost`] the executor may skip a `(unique query, shard)`
//! execution entirely, substituting an empty partial list. Both prunes
//! carry a proof:
//!
//! * **Infeasible shards.** A probe's range scan only visits keys with
//!   the signature's label and degree ≥ its IV.2 lower bound; the shard's
//!   statistics track the exact per-label max degree (they only ever
//!   overestimate — see `tale_nhindex::stats`). If no probe signature is
//!   feasible, every probe answers empty, no match task is ever spawned,
//!   and the shard's partial is empty by construction.
//! * **Top-K threshold.** Shards are visited sequentially in descending
//!   score-bound order. A shard is skipped for a query only once the
//!   query has gathered ≥ K results and the shard's score bound — an
//!   upper bound on *any* score it could contribute, from the
//!   label-equality matched-pairs bound (`SimilarityModel::score_upper_bound`)
//!   — is **strictly** below the K-th score seen so far. The K-th score
//!   of a subset never exceeds the K-th score of the full multiset, so
//!   every skipped match would have sorted strictly below rank K and been
//!   truncated; strictness keeps equal-score candidates (which could win
//!   the graph-id tiebreak) alive.
//!
//! An infeasible prune's empty list is the shard's *true* pre-rank
//! partial, so it is written to the result cache like an executed one. A
//! threshold prune's is not (the shard could hold sub-threshold matches),
//! so threshold-pruned partials are **never** cached.
//!
//! [`PlanMode::Cost`]: crate::params::PlanMode::Cost

use crate::engine::cache::{self, CacheKey, QueryRepr, ResultCache};
use crate::engine::plan::{plan_query, QueryPlan};
use crate::engine::stats::{BatchStats, QueryStats, ShardStats, StageTimes};
use crate::engine::{grow, probe};
use crate::params::{PlanMode, QueryOptions};
use crate::result::QueryMatch;
use crate::Result;
use std::time::Instant;
use tale_graph::{Graph, GraphDb};
use tale_nhindex::IndexReader;

/// Per-unique-query index traffic, summed over the shards the query
/// actually executed on (a standalone unsharded run reports the same
/// totals: shard answers partition the unsharded answer).
#[derive(Default, Clone, Copy)]
struct UniqueTraffic {
    probes: u64,
    probes_shared: u64,
    keys_scanned: u64,
    postings_fetched: u64,
    postings_filtered: u64,
    rows_examined: u64,
    candidates: u64,
    candidate_graphs: usize,
}

/// One shard's contribution to the batch, computed inside the scatter
/// phase on that shard's thread(s).
struct ShardOutcome {
    /// The unique slots this shard actually executed (cache misses minus
    /// planner prunes), in ascending order.
    sel: Vec<usize>,
    /// Pre-rank partial match lists, aligned with `sel`.
    partials: Vec<Vec<QueryMatch>>,
    /// Per-executed-unique traffic, aligned with `sel`.
    traffic: Vec<UniqueTraffic>,
    probes_requested: u64,
    probes_issued: u64,
    stats: ShardStats,
}

/// Probes + grows one shard's selected uniques — the scatter body, shared
/// by the parallel (fixed-shape) and sequential (top-K threshold) paths.
#[allow(clippy::too_many_arguments)]
fn exec_shard(
    db: &GraphDb,
    index: &dyn IndexReader,
    s: usize,
    sel: Vec<usize>,
    uniques: &[usize],
    plans: &[QueryPlan],
    queries: &[&Graph],
    opts: &QueryOptions,
    inner_threads: usize,
) -> Result<ShardOutcome> {
    let t_shard = Instant::now();
    let counters_before = index.counters();
    let pool_before = index.pool_stats();
    let shard_plans: Vec<&QueryPlan> = sel.iter().map(|&u| &plans[uniques[u]]).collect();
    // Readahead budget: the summed posting estimates of the plans this
    // shard executes, when every plan has one (a hint — identity-safe at
    // any value).
    let prefetch_cap = if opts.plan == PlanMode::Cost {
        shard_plans.iter().try_fold(0u64, |acc, p| {
            p.prefetch_hint.map(|h| acc.saturating_add(h))
        })
    } else {
        None
    };
    let t = Instant::now();
    let probed = probe::run_probe(index, &shard_plans, opts.rho, inner_threads, prefetch_cap)?;
    let probe_secs = t.elapsed().as_secs_f64();

    // Match: anchor + grow per (query, candidate graph), flattened
    // across this shard's queries. `parallel_map` returns in item
    // order and items are (unique, sorted gid), so the per-query
    // gather below is byte-identical to a serial per-query loop.
    let t = Instant::now();
    let mut items: Vec<(usize, u32)> = Vec::new();
    for (lu, p) in probed.per_query.iter().enumerate() {
        let mut gids: Vec<u32> = p.per_graph.keys().copied().collect();
        gids.sort_unstable();
        items.extend(gids.into_iter().map(|g| (lu, g)));
    }
    let matched: Vec<Option<QueryMatch>> =
        tale_par::parallel_map(inner_threads, items.len(), |i| {
            let (lu, gid) = items[i];
            let qi = uniques[sel[lu]];
            grow::match_one_graph(
                db,
                queries[qi],
                &plans[qi].important,
                gid,
                &probed.per_query[lu].per_graph[&gid],
                opts,
            )
        });
    let match_secs = t.elapsed().as_secs_f64();
    let match_items = items.len();
    let mut out: Vec<Vec<QueryMatch>> = vec![Vec::new(); sel.len()];
    for ((lu, _), m) in items.into_iter().zip(matched) {
        if let Some(m) = m {
            out[lu].push(m);
        }
    }
    let traffic: Vec<UniqueTraffic> = probed
        .per_query
        .iter()
        .map(|p| UniqueTraffic {
            probes: p.probes,
            probes_shared: p.probes_shared,
            keys_scanned: p.keys_scanned,
            postings_fetched: p.postings_fetched,
            postings_filtered: p.postings_filtered,
            rows_examined: p.rows_examined,
            candidates: p.candidates,
            candidate_graphs: p.per_graph.len(),
        })
        .collect();
    let counters = index.counters().since(counters_before);
    let matches = out.iter().map(Vec::len).sum();
    Ok(ShardOutcome {
        stats: ShardStats {
            shard: s,
            uniques_executed: sel.len(),
            probes: counters.probes,
            keys_scanned: counters.keys_scanned,
            postings_fetched: counters.postings_fetched,
            postings_filtered: counters.postings_filtered,
            rows_examined: counters.rows_examined,
            candidates: traffic.iter().map(|t| t.candidates).sum(),
            match_items,
            matches,
            pruned_uniques: 0, // patched by the caller, which owns the grid
            pool: index.pool_stats().since(pool_before).into(),
            probe_secs,
            match_secs,
            wall_secs: t_shard.elapsed().as_secs_f64(),
        },
        sel,
        partials: out,
        traffic,
        probes_requested: probed.probes_requested,
        probes_issued: probed.probes_issued,
    })
}

/// The engine's deterministic gather: sorts a merged multiset of
/// per-shard partial matches into rank order — score descending, graph id
/// ascending — and truncates to `top_k`.
///
/// The comparator is a total order over any one query's matches (every
/// database graph belongs to exactly one shard, so graph ids are unique
/// across the merged partials), which is why the shards' disjoint lists
/// can be concatenated in *any* order and still sort to the same ranked
/// output. Truncation composes: a shard's own top-K (under this same
/// order) always contains that shard's contribution to the global top-K,
/// so merging per-shard **ranked, truncated** lists and re-ranking here is
/// bit-identical to ranking the untruncated union. [`run_batch`] uses
/// this for its in-process gather; the networked frontend
/// (`tale-server`) uses it to merge partial result lists fetched from
/// remote shard workers.
pub fn rank_matches(mut all: Vec<QueryMatch>, top_k: Option<usize>) -> Vec<QueryMatch> {
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.graph.cmp(&b.graph))
    });
    if let Some(k) = top_k {
        all.truncate(k);
    }
    all
}

/// Runs a batch of queries through the staged pipeline over one or more
/// index readers. `shards` must be non-empty and every reader must cover a
/// set of graphs disjoint from every other reader's, under one shared
/// neighbor-array scheme — true both for the sharded path (one [`NhIndex`]
/// per shard) and for the MVCC path (base generation + delta overlay as
/// two readers). Pass `caches: None` to bypass the result cache entirely;
/// otherwise provide exactly one cache per reader. Cache keys fold in each
/// reader's [`cache_generation`](IndexReader::cache_generation), so a
/// mutated reader's old entries are unreachable while untouched readers'
/// entries keep hitting.
///
/// [`NhIndex`]: tale_nhindex::NhIndex
pub fn run_batch(
    db: &GraphDb,
    shards: &[&dyn IndexReader],
    caches: Option<&[&ResultCache]>,
    queries: &[&Graph],
    opts: &QueryOptions,
) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
    let t_total = Instant::now();
    let nshards = shards.len();
    assert!(nshards > 0, "run_batch needs at least one index shard");
    if let Some(c) = caches {
        assert_eq!(c.len(), nshards, "one result cache per shard");
    }
    let threads = tale_par::effective_threads(opts.threads);
    let cost = opts.plan == PlanMode::Cost;

    // Plan: importance + signatures + canonical signature, plus — in cost
    // mode — probe order, readahead budget, and per-shard feasibility and
    // score bounds from the readers' statistics.
    let t = Instant::now();
    let plans: Vec<QueryPlan> = tale_par::parallel_map(threads, queries.len(), |i| {
        plan_query(db, shards, queries[i], opts)
    });
    let reprs: Vec<QueryRepr> = queries.iter().map(|q| cache::query_repr(db, q)).collect();
    let plan_secs = t.elapsed().as_secs_f64();

    // Exact-duplicate folding: `uniques` holds the input index of each
    // distinct query; `alias[i]` maps every input to its unique slot.
    // Cache generations are sampled once per reader for the whole batch,
    // so every lookup and store in this run agrees on the key space.
    let opt_fp = cache::options_fingerprint(opts);
    let generations: Vec<u64> = shards.iter().map(|s| s.cache_generation()).collect();
    let key_for = |qi: usize, s: usize| CacheKey {
        canonical: plans[qi].canonical,
        options: opt_fp,
        generation: generations[s],
    };
    let mut alias: Vec<usize> = Vec::with_capacity(queries.len());
    let mut uniques: Vec<usize> = Vec::new();
    let mut first_of: std::collections::HashMap<&QueryRepr, usize> =
        std::collections::HashMap::new();
    for repr in &reprs {
        let u = *first_of.entry(repr).or_insert_with(|| {
            uniques.push(alias.len());
            uniques.len() - 1
        });
        alias.push(u);
    }

    // Per-(unique, shard) cache lookups. `partials[u][s]` is that shard's
    // pre-rank partial list when cached; a query is a full cache hit only
    // when every shard hits.
    let mut partials: Vec<Vec<Option<Vec<QueryMatch>>>> = uniques
        .iter()
        .map(|_| (0..nshards).map(|_| None).collect())
        .collect();
    if let Some(caches) = caches {
        for (u, &qi) in uniques.iter().enumerate() {
            for (s, c) in caches.iter().enumerate() {
                partials[u][s] = c.get(&key_for(qi, s), &reprs[qi]).map(|mut list| {
                    // Tombstones that grew since this entry was stored can
                    // only *delete* matches; reproduce the deletion here so
                    // the entry stays exactly correct without eviction.
                    list.retain(|m| shards[s].is_visible(m.graph.0));
                    list
                });
            }
        }
    }
    let fully_cached: Vec<bool> = partials
        .iter()
        .map(|p| p.iter().all(Option::is_some))
        .collect();

    // Planner prune #1 — infeasible shards: statistics prove every probe
    // of this unique answers empty on this shard, so its partial is
    // empty without probing (see the module doc for the proof). Unlike a
    // threshold prune, the empty list here *is* the shard's true pre-rank
    // partial, so it may be cached — repeat queries then fully hit.
    let mut pruned: Vec<Vec<bool>> = uniques.iter().map(|_| vec![false; nshards]).collect();
    let mut shards_pruned = 0u64;
    if cost {
        for (u, &qi) in uniques.iter().enumerate() {
            for s in 0..nshards {
                if partials[u][s].is_none() {
                    if let Some(sp) = plans[qi].shard_plans.get(s) {
                        if sp.has_stats && sp.feasible_probes == 0 {
                            if let Some(caches) = caches {
                                caches[s].put(key_for(qi, s), reprs[qi].clone(), Vec::new());
                            }
                            partials[u][s] = Some(Vec::new());
                            pruned[u][s] = true;
                            shards_pruned += 1;
                        }
                    }
                }
            }
        }
    }

    // Scatter: each shard probes + grows the uniques that missed its
    // cache, on its own slice of the thread budget. Per-shard traffic is
    // exact — a shard's index is only touched by its own execution here.
    let need: Vec<Vec<usize>> = (0..nshards)
        .map(|s| {
            (0..uniques.len())
                .filter(|&u| partials[u][s].is_none())
                .collect()
        })
        .collect();

    // Planner prune #2 — the top-K threshold — needs shards visited
    // sequentially (each visit tightens the thresholds for the next), so
    // cost mode with a K and multiple shards trades scatter parallelism
    // for pruning and gives each visit the full thread budget instead.
    let threshold_k = match opts.top_k {
        Some(k) if cost && nshards > 1 => Some(k),
        _ => None,
    };
    let mut shard_outcomes: Vec<ShardOutcome>;
    if let Some(k) = threshold_k {
        let bound = |u: usize, s: usize| -> Option<f64> {
            plans[uniques[u]]
                .shard_plans
                .get(s)
                .and_then(|p| p.score_bound)
        };
        // Visit order: descending best-case bound over the shard's needed
        // uniques (unbounded first), ties by shard index. Purely a
        // heuristic — correctness only needs the strict-threshold rule.
        let shard_key = |s: usize| -> f64 {
            need[s]
                .iter()
                .map(|&u| bound(u, s).unwrap_or(f64::INFINITY))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let mut order: Vec<usize> = (0..nshards).collect();
        order.sort_by(|&a, &b| {
            shard_key(b)
                .partial_cmp(&shard_key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        // Scores gathered so far per unique, seeded from cached and
        // infeasible-pruned partials.
        let mut scores: Vec<Vec<f64>> = partials
            .iter()
            .map(|per_shard| {
                per_shard
                    .iter()
                    .flatten()
                    .flat_map(|list| list.iter().map(|m| m.score))
                    .collect()
            })
            .collect();
        let kth = |v: &mut Vec<f64>| -> Option<f64> {
            if k == 0 {
                return Some(f64::INFINITY); // top-0: everything truncates
            }
            if v.len() < k {
                return None;
            }
            v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
            Some(v[k - 1])
        };
        let mut outcomes: Vec<Option<ShardOutcome>> = (0..nshards).map(|_| None).collect();
        for &s in &order {
            let mut sel = Vec::with_capacity(need[s].len());
            for &u in &need[s] {
                let skip = match (kth(&mut scores[u]), bound(u, s)) {
                    (Some(kth_score), Some(b)) => b < kth_score,
                    _ => false,
                };
                if skip {
                    partials[u][s] = Some(Vec::new());
                    pruned[u][s] = true;
                    shards_pruned += 1;
                } else {
                    sel.push(u);
                }
            }
            let outcome = exec_shard(
                db, shards[s], s, sel, &uniques, &plans, queries, opts, threads,
            )?;
            for (lu, &u) in outcome.sel.iter().enumerate() {
                scores[u].extend(outcome.partials[lu].iter().map(|m| m.score));
            }
            outcomes[s] = Some(outcome);
        }
        shard_outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every shard visited"))
            .collect();
    } else {
        let inner_threads = if nshards == 1 {
            threads
        } else {
            (threads / nshards).max(1)
        };
        let outer_threads = threads.min(nshards).max(1);
        let shard_runs: Vec<Result<ShardOutcome>> =
            tale_par::parallel_map(outer_threads, nshards, |s| {
                exec_shard(
                    db,
                    shards[s],
                    s,
                    need[s].clone(),
                    &uniques,
                    &plans,
                    queries,
                    opts,
                    inner_threads,
                )
            });
        shard_outcomes = Vec::with_capacity(nshards);
        for r in shard_runs {
            shard_outcomes.push(r?);
        }
    }
    for (s, o) in shard_outcomes.iter_mut().enumerate() {
        o.stats.pruned_uniques = pruned.iter().filter(|p| p[s]).count();
    }

    // Gather + rank: store fresh partials, merge each unique's disjoint
    // shard lists, sort by (score desc, graph id asc) — a total order, so
    // merge order is irrelevant — and truncate to top_k. Only genuinely
    // executed partials are cached (a pruned substitute is not the
    // shard's true pre-rank list).
    let t = Instant::now();
    let mut unique_traffic: Vec<UniqueTraffic> = vec![UniqueTraffic::default(); uniques.len()];
    let mut executed_any: Vec<bool> = vec![false; uniques.len()];
    for (s, out) in shard_outcomes.iter_mut().enumerate() {
        let sel = std::mem::take(&mut out.sel);
        for (lu, &u) in sel.iter().enumerate() {
            executed_any[u] = true;
            let list = std::mem::take(&mut out.partials[lu]);
            if let Some(caches) = caches {
                caches[s].put(
                    key_for(uniques[u], s),
                    reprs[uniques[u]].clone(),
                    list.clone(),
                );
            }
            let t = &out.traffic[lu];
            let agg = &mut unique_traffic[u];
            agg.probes += t.probes;
            agg.probes_shared += t.probes_shared;
            agg.keys_scanned += t.keys_scanned;
            agg.postings_fetched += t.postings_fetched;
            agg.postings_filtered += t.postings_filtered;
            agg.rows_examined += t.rows_examined;
            agg.candidates += t.candidates;
            agg.candidate_graphs += t.candidate_graphs;
            partials[u][s] = Some(list);
        }
        out.sel = sel;
    }
    let mut unique_results: Vec<Vec<QueryMatch>> = Vec::with_capacity(uniques.len());
    for per_shard in partials {
        let mut all: Vec<QueryMatch> = Vec::new();
        for p in per_shard {
            all.extend(p.expect("every shard answered, was cached, or was pruned"));
        }
        unique_results.push(rank_matches(all, opts.top_k));
    }
    let rank_secs = t.elapsed().as_secs_f64();

    // Assemble outputs in input order; the last user of each unique slot
    // takes the vector, earlier aliases clone.
    let mut users_left: Vec<usize> = vec![0; uniques.len()];
    for &u in &alias {
        users_left[u] += 1;
    }
    let shard_stats: Vec<ShardStats> = shard_outcomes.iter().map(|o| o.stats).collect();
    let stages = StageTimes {
        plan_secs,
        // probe/match run per shard, possibly overlapped: report the summed
        // per-shard clocks (equal to elapsed time when unsharded).
        probe_secs: shard_stats.iter().map(|s| s.probe_secs).sum(),
        match_secs: shard_stats.iter().map(|s| s.match_secs).sum(),
        rank_secs,
        total_secs: t_total.elapsed().as_secs_f64(),
    };
    let pool = shard_stats
        .iter()
        .fold(crate::engine::stats::PoolDelta::default(), |acc, s| {
            crate::engine::stats::PoolDelta {
                hits: acc.hits + s.pool.hits,
                coalesced: acc.coalesced + s.pool.coalesced,
                misses: acc.misses + s.pool.misses,
                prefetched: acc.prefetched + s.pool.prefetched,
            }
        });
    let mut per_query: Vec<QueryStats> = Vec::with_capacity(queries.len());
    let mut outputs: Vec<Vec<QueryMatch>> = Vec::with_capacity(queries.len());
    let mut cache_hits = 0usize;
    for (i, &u) in alias.iter().enumerate() {
        users_left[u] -= 1;
        let results = if users_left[u] == 0 {
            std::mem::take(&mut unique_results[u])
        } else {
            unique_results[u].clone()
        };
        let hit = fully_cached[u];
        if hit {
            cache_hits += 1;
        }
        let tr = &unique_traffic[u];
        per_query.push(QueryStats {
            important_nodes: plans[i].important.len(),
            probes: tr.probes,
            probes_shared: tr.probes_shared,
            keys_scanned: tr.keys_scanned,
            postings_fetched: tr.postings_fetched,
            postings_filtered: tr.postings_filtered,
            rows_examined: tr.rows_examined,
            candidates: tr.candidates,
            candidate_graphs: tr.candidate_graphs,
            matches: results.len(),
            cache_hit: hit,
            est_rows: plans[i].total_est_rows(),
            shards_pruned: pruned[u].iter().filter(|&&p| p).count(),
            probes_reordered: plans[i].is_reordered(),
            stages,
            pool,
        });
        outputs.push(results);
    }

    let probes_reordered = uniques
        .iter()
        .enumerate()
        .filter(|&(u, &qi)| executed_any[u] && plans[qi].is_reordered())
        .count() as u64;
    let batch = BatchStats {
        queries: queries.len(),
        cache_hits,
        unique_queries: fully_cached.iter().filter(|&&h| !h).count(),
        probes_requested: shard_outcomes.iter().map(|o| o.probes_requested).sum(),
        probes_issued: shard_outcomes.iter().map(|o| o.probes_issued).sum(),
        shards_pruned,
        probes_reordered,
        stages,
        pool,
        shards: shard_stats,
        per_query,
    };
    Ok((outputs, batch))
}
