//! The exec stage: orchestrates plan → cache → probe → anchor/grow →
//! rank for a whole batch, scattering work across threads and gathering
//! with a deterministic index-ordered merge.
//!
//! Batch semantics are exact: the output of [`run_batch`] is bit-identical
//! to running each query alone through the same pipeline, at every thread
//! count. The batch only *amortizes* — duplicate queries are executed
//! once, duplicate probe signatures are probed once, and the thread pool
//! fans over the union of all per-graph work items instead of syncing at
//! each query boundary.

use crate::engine::cache::{self, CacheKey, QueryRepr, ResultCache};
use crate::engine::plan::{plan_query, QueryPlan};
use crate::engine::stats::{BatchStats, QueryStats, StageTimes};
use crate::engine::{grow, probe};
use crate::params::QueryOptions;
use crate::result::QueryMatch;
use crate::Result;
use std::time::Instant;
use tale_graph::{Graph, GraphDb};
use tale_nhindex::NhIndex;

/// How each input query gets its results.
enum Outcome {
    /// Served from the cache.
    Cached(Vec<QueryMatch>),
    /// Computed as (an alias of) the given unique-query slot.
    Computed(usize),
}

/// Runs a batch of queries through the staged pipeline. Pass
/// `cache: None` to bypass the result cache entirely (no lookups, no
/// insertions).
pub(crate) fn run_batch(
    db: &GraphDb,
    index: &NhIndex,
    cache: Option<&ResultCache>,
    queries: &[&Graph],
    opts: &QueryOptions,
) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
    let t_total = Instant::now();
    let pool_before = index.pool_stats();
    let threads = tale_par::effective_threads(opts.threads);

    // Plan: importance + signatures + canonical signature, per query.
    let t = Instant::now();
    let plans: Vec<QueryPlan> = tale_par::parallel_map(threads, queries.len(), |i| {
        plan_query(db, index, queries[i], opts)
    });
    let reprs: Vec<QueryRepr> = queries.iter().map(|q| cache::query_repr(db, q)).collect();
    let plan_secs = t.elapsed().as_secs_f64();

    // Cache lookups + exact-duplicate folding. `uniques` holds the input
    // index of each distinct query that must actually run.
    let opt_fp = cache::options_fingerprint(opts);
    let keys: Vec<CacheKey> = plans
        .iter()
        .map(|p| CacheKey {
            canonical: p.canonical,
            options: opt_fp,
        })
        .collect();
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(queries.len());
    let mut uniques: Vec<usize> = Vec::new();
    let mut first_of: std::collections::HashMap<&QueryRepr, usize> =
        std::collections::HashMap::new();
    let mut cache_hits = 0usize;
    for i in 0..queries.len() {
        if let Some(c) = cache {
            if let Some(hit) = c.get(&keys[i], &reprs[i]) {
                outcomes.push(Outcome::Cached(hit));
                cache_hits += 1;
                continue;
            }
        }
        let u = *first_of.entry(&reprs[i]).or_insert_with(|| {
            uniques.push(i);
            uniques.len() - 1
        });
        outcomes.push(Outcome::Computed(u));
    }

    // Probe: every distinct signature across the uncached uniques hits
    // the disk index once.
    let t = Instant::now();
    let unique_plans: Vec<&QueryPlan> = uniques.iter().map(|&i| &plans[i]).collect();
    let probed = probe::run_probe(index, &unique_plans, opts.rho, opts.threads)?;
    let probe_secs = t.elapsed().as_secs_f64();

    // Match: anchor + grow per (query, candidate graph), flattened across
    // the batch so threads never idle at query boundaries. `parallel_map`
    // returns in item order and items are (unique, sorted gid), so the
    // per-query gather below is byte-identical to a serial per-query loop.
    let t = Instant::now();
    let mut items: Vec<(usize, u32)> = Vec::new();
    for (u, p) in probed.per_query.iter().enumerate() {
        let mut gids: Vec<u32> = p.per_graph.keys().copied().collect();
        gids.sort_unstable();
        items.extend(gids.into_iter().map(|g| (u, g)));
    }
    let matched: Vec<Option<QueryMatch>> = tale_par::parallel_map(threads, items.len(), |i| {
        let (u, gid) = items[i];
        let qi = uniques[u];
        grow::match_one_graph(
            db,
            queries[qi],
            &plans[qi].important,
            gid,
            &probed.per_query[u].per_graph[&gid],
            opts,
        )
    });
    let match_secs = t.elapsed().as_secs_f64();

    // Rank: per unique query, sort by (score desc, graph id asc) and
    // truncate to top_k.
    let t = Instant::now();
    let mut unique_results: Vec<Vec<QueryMatch>> = vec![Vec::new(); uniques.len()];
    for ((u, _), m) in items.into_iter().zip(matched) {
        if let Some(m) = m {
            unique_results[u].push(m);
        }
    }
    for results in unique_results.iter_mut() {
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.graph.cmp(&b.graph))
        });
        if let Some(k) = opts.top_k {
            results.truncate(k);
        }
    }
    if let Some(c) = cache {
        for (u, &qi) in uniques.iter().enumerate() {
            c.put(keys[qi], reprs[qi].clone(), unique_results[u].clone());
        }
    }
    let rank_secs = t.elapsed().as_secs_f64();

    // Assemble outputs in input order; the last user of each unique slot
    // takes the vector, earlier aliases clone.
    let mut users_left: Vec<usize> = vec![0; uniques.len()];
    for o in &outcomes {
        if let Outcome::Computed(u) = o {
            users_left[*u] += 1;
        }
    }
    let stages = StageTimes {
        plan_secs,
        probe_secs,
        match_secs,
        rank_secs,
        total_secs: t_total.elapsed().as_secs_f64(),
    };
    let pool = index.pool_stats().since(pool_before).into();
    let mut per_query: Vec<QueryStats> = Vec::with_capacity(queries.len());
    let mut outputs: Vec<Vec<QueryMatch>> = Vec::with_capacity(queries.len());
    for (i, o) in outcomes.into_iter().enumerate() {
        let (results, mut qs) = match o {
            Outcome::Cached(r) => (
                r,
                QueryStats {
                    cache_hit: true,
                    ..QueryStats::default()
                },
            ),
            Outcome::Computed(u) => {
                users_left[u] -= 1;
                let r = if users_left[u] == 0 {
                    std::mem::take(&mut unique_results[u])
                } else {
                    unique_results[u].clone()
                };
                let p = &probed.per_query[u];
                (
                    r,
                    QueryStats {
                        probes: p.probes,
                        probes_shared: p.probes_shared,
                        keys_scanned: p.keys_scanned,
                        postings_fetched: p.postings_fetched,
                        rows_examined: p.rows_examined,
                        candidates: p.candidates,
                        candidate_graphs: p.per_graph.len(),
                        ..QueryStats::default()
                    },
                )
            }
        };
        qs.important_nodes = plans[i].important.len();
        qs.matches = results.len();
        qs.stages = stages;
        qs.pool = pool;
        per_query.push(qs);
        outputs.push(results);
    }

    let batch = BatchStats {
        queries: queries.len(),
        cache_hits,
        unique_queries: uniques.len(),
        probes_requested: probed.probes_requested,
        probes_issued: probed.probes_issued,
        stages,
        pool,
        per_query,
    };
    Ok((outputs, batch))
}
