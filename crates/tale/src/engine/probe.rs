//! The probe stage: answer every plan's signatures against the NH-Index,
//! probing each *distinct* signature once per batch.
//!
//! A probe is a pure function of `(signature, ρ)` over the read-only
//! index, and Eq. IV.5 scoring depends only on the signature's degree and
//! neighbor connection — both part of the dedup key — so sharing one
//! probe's answer across every query that requested the same signature is
//! exact, not approximate. This is the batch API's amortization: queries
//! drawn from a common motif vocabulary (the repeated-pattern workloads
//! the paper's BIND scenario implies) re-request the same signatures
//! constantly.

use crate::engine::plan::QueryPlan;
use crate::Result;
use std::collections::HashMap;
use tale_nhindex::{node_match_quality, IndexReader, NodeCandidate, QuerySignature};

/// Dedup key: the full signature content. Two query nodes with equal keys
/// receive byte-identical probe answers and scores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SigKey {
    label: u32,
    degree: u32,
    nb_connection: u32,
    nb_array: Vec<u64>,
}

impl SigKey {
    fn of(sig: &QuerySignature) -> SigKey {
        SigKey {
            label: sig.label,
            degree: sig.degree,
            nb_connection: sig.nb_connection,
            nb_array: sig.nb_array.clone(),
        }
    }
}

/// One query's probe outcome: candidate buckets plus the index traffic
/// that answered it (shared probes are credited to every requester, as a
/// standalone run would report).
pub(crate) struct PerQueryProbe {
    /// Per candidate graph: `(important-node index, db node, quality)`.
    pub per_graph: HashMap<u32, Vec<(usize, u32, f64)>>,
    /// Signatures this query asked for.
    pub probes: u64,
    /// Of those, answered by a probe first paid for elsewhere in the batch.
    pub probes_shared: u64,
    pub keys_scanned: u64,
    pub postings_fetched: u64,
    pub postings_filtered: u64,
    pub rows_examined: u64,
    /// Candidate node matches across all of this query's signatures.
    pub candidates: u64,
}

/// The whole batch's probe outcome.
pub(crate) struct ProbeOutcome {
    /// Aligned with the `plans` argument of [`run_probe`].
    pub per_query: Vec<PerQueryProbe>,
    /// Signatures requested across the batch.
    pub probes_requested: u64,
    /// Distinct signatures that actually hit the disk index.
    pub probes_issued: u64,
}

/// Probes the index for every plan, deduplicating identical signatures
/// across (and within) queries. Buckets are filled in important-node
/// order, making each graph's bucket byte-identical to a per-query serial
/// probe loop.
///
/// Signatures are *interned* in each plan's
/// [`probe_order`](QueryPlan::probe_order), so a cost-mode plan puts its
/// most selective probes at the front of the batch — and therefore at the
/// front of the readahead queue. `prefetch_cap` bounds that readahead
/// (`None` = unbounded). Neither changes any answer: interning order only
/// permutes which distinct signature gets which slot, and the per-query
/// buckets below are filled by important-node *position*, not slot.
pub(crate) fn run_probe(
    index: &dyn IndexReader,
    plans: &[&QueryPlan],
    rho: f64,
    threads: usize,
    prefetch_cap: Option<u64>,
) -> Result<ProbeOutcome> {
    // Intern distinct signatures in first-seen order (per plan: the
    // planner's probe order); remember which query first requested each
    // one so sharing can be attributed.
    let mut key_of: HashMap<SigKey, usize> = HashMap::new();
    let mut unique_sigs: Vec<QuerySignature> = Vec::new();
    let mut first_requester: Vec<usize> = Vec::new();
    let mut refs: Vec<Vec<usize>> = Vec::with_capacity(plans.len());
    for (qi, plan) in plans.iter().enumerate() {
        let mut r = vec![usize::MAX; plan.signatures.len()];
        for &ni in &plan.probe_order {
            let sig = &plan.signatures[ni];
            let idx = *key_of.entry(SigKey::of(sig)).or_insert_with(|| {
                unique_sigs.push(sig.clone());
                first_requester.push(qi);
                unique_sigs.len() - 1
            });
            r[ni] = idx;
        }
        refs.push(r);
    }

    // One disk probe per distinct signature, fanned across threads, then
    // scored once with Eq. IV.5 (the score depends only on the signature
    // and the candidate row, so every requester shares it).
    // per unique signature: scored (graph, node, quality) hits + traffic
    type ScoredProbe = (Vec<(u32, u32, f64)>, tale_nhindex::ProbeStats);
    let probed = index.probe_batch_budgeted(&unique_sigs, rho, threads, prefetch_cap)?;
    let scored: Vec<ScoredProbe> = probed
        .into_iter()
        .zip(unique_sigs.iter())
        .map(|((candidates, stats), sig)| {
            let mut out = Vec::with_capacity(candidates.len());
            for NodeCandidate {
                node,
                nb_miss,
                db_degree: _,
                db_nb_connection,
            } in candidates
            {
                let nbc_miss = sig.nb_connection.saturating_sub(db_nb_connection);
                let w = node_match_quality(sig.degree, sig.nb_connection, nb_miss, nbc_miss);
                // Eq. IV.5 cannot separate the true counterpart from a
                // node whose neighborhood strictly dominates the query's
                // (both score a perfect 2.0). Leave such ties to the
                // growth phase: its conservation bonus replaces a queued
                // anchor with an equal-quality candidate that conserves
                // more committed edges, which only works while anchor
                // qualities live on the same Eq. IV.5 scale growth uses.
                out.push((node.graph, node.node, w));
            }
            (out, stats)
        })
        .collect();

    let per_query = refs
        .iter()
        .enumerate()
        .map(|(qi, sig_refs)| {
            let mut p = PerQueryProbe {
                per_graph: HashMap::new(),
                probes: sig_refs.len() as u64,
                probes_shared: 0,
                keys_scanned: 0,
                postings_fetched: 0,
                postings_filtered: 0,
                rows_examined: 0,
                candidates: 0,
            };
            for (ni, &si) in sig_refs.iter().enumerate() {
                let (hits, stats) = &scored[si];
                if first_requester[si] != qi || sig_refs[..ni].contains(&si) {
                    p.probes_shared += 1;
                }
                p.keys_scanned += stats.keys_scanned;
                p.postings_fetched += stats.postings_fetched;
                p.postings_filtered += stats.postings_filtered;
                p.rows_examined += stats.rows_examined;
                p.candidates += hits.len() as u64;
                for &(graph, node, w) in hits {
                    p.per_graph.entry(graph).or_default().push((ni, node, w));
                }
            }
            p
        })
        .collect();

    Ok(ProbeOutcome {
        per_query,
        probes_requested: refs.iter().map(|r| r.len() as u64).sum(),
        probes_issued: unique_sigs.len() as u64,
    })
}
