//! The anchor stage: resolve many-to-many index hits into one-to-one
//! anchors (§V, step 1c).

use crate::params::QueryOptions;
use std::collections::HashMap;
use tale_graph::{Graph, NodeId};
use tale_matching::bipartite::{greedy_matching, max_weight_matching, WeightedEdge};
use tale_matching::grow::Anchor;

/// Resolves many-to-many index hits into one-to-one anchors via
/// maximum-weight bipartite matching (Hungarian, or greedy when the
/// instance is large / the ablation asks for it). `hits` pairs indexes
/// into `important` with db node ids and Eq. IV.5 qualities; `fixed`
/// carries already-committed pairs whose conservation evidence steers the
/// refinement during residual re-anchoring.
pub(crate) fn resolve_anchors(
    query: &Graph,
    target: &Graph,
    important: &[NodeId],
    hits: &[(usize, u32, f64)],
    fixed: &[(NodeId, NodeId)],
    opts: &QueryOptions,
) -> Vec<Anchor> {
    // Dense right-side ids for the db nodes that appear.
    let mut right_of: HashMap<u32, usize> = HashMap::new();
    let mut right_nodes: Vec<u32> = Vec::new();
    let mut edges: Vec<WeightedEdge> = Vec::with_capacity(hits.len());
    for &(qi, dbn, w) in hits {
        let r = *right_of.entry(dbn).or_insert_with(|| {
            right_nodes.push(dbn);
            right_nodes.len() - 1
        });
        edges.push((qi, r, w));
    }
    let n_left = important.len();
    let n_right = right_nodes.len();
    // Hungarian is O(max(nl,nr)^3); past a few thousand candidates the
    // greedy 1/2-approximation is the practical choice.
    const HUNGARIAN_LIMIT: usize = 2000;
    let mut assignment = if opts.greedy_anchors || n_left.max(n_right) > HUNGARIAN_LIMIT {
        greedy_matching(n_left, n_right, &edges)
    } else {
        max_weight_matching(n_left, n_right, &edges)
    };
    let mut best_w: HashMap<(usize, usize), f64> = HashMap::new();
    for &(l, r, w) in &edges {
        let e = best_w.entry((l, r)).or_insert(0.0);
        if w > *e {
            *e = w;
        }
    }
    refine_assignment(
        query,
        target,
        important,
        &right_nodes,
        &best_w,
        fixed,
        &mut assignment,
    );
    assignment
        .into_iter()
        .enumerate()
        .filter_map(|(qi, r)| {
            r.map(|r| Anchor {
                query: important[qi],
                target: NodeId(right_nodes[r]),
                quality: best_w.get(&(qi, r)).copied().unwrap_or(0.0),
            })
        })
        .collect()
}

/// Conservation-aware refinement of the anchor assignment.
///
/// Eq. IV.5 quality ties are common — any db node whose neighborhood
/// dominates the query node's scores the same perfect 2.0 as the true
/// counterpart — and the bipartite matching picks arbitrarily among tied
/// optima. Ties must be settled *globally*: once growth commits a wrong
/// anchor (or two anchors swap each other's counterparts) the one-to-one
/// invariant blocks any later repair. So, keeping the total weight optimal,
/// greedily apply single reassignments (to an unused candidate of no lower
/// quality) and pairwise target swaps (of no lower summed quality) while
/// they strictly increase the number of query edges conserved between
/// anchored pairs. Each accepted move raises that integer count, so the
/// loop terminates; fixed iteration order keeps it deterministic.
fn refine_assignment(
    query: &Graph,
    target: &Graph,
    important: &[NodeId],
    right_nodes: &[u32],
    w: &HashMap<(usize, usize), f64>,
    fixed: &[(NodeId, NodeId)],
    assignment: &mut [Option<usize>],
) {
    let nl = assignment.len();
    // Query adjacency restricted to anchored (important) nodes, with edge
    // direction preserved: adj[li] = (lj, li-is-source). Query edges into
    // `fixed` pairs (an already-committed match being extended by residual
    // re-anchoring) conserve against those pairs' pinned images instead.
    let mut left_of: HashMap<u32, usize> = HashMap::new();
    for (li, q) in important.iter().enumerate() {
        left_of.insert(q.0, li);
    }
    let fixed_of: HashMap<u32, NodeId> = fixed.iter().map(|&(q, t)| (q.0, t)).collect();
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); nl];
    let mut fixed_adj: Vec<Vec<(NodeId, bool)>> = vec![Vec::new(); nl];
    for (u, v, _) in query.edges() {
        match (left_of.get(&u.0), left_of.get(&v.0)) {
            (Some(&lu), Some(&lv)) => {
                adj[lu].push((lv, true));
                adj[lv].push((lu, false));
            }
            (Some(&lu), None) => {
                if let Some(&tv) = fixed_of.get(&v.0) {
                    fixed_adj[lu].push((tv, true));
                }
            }
            (None, Some(&lv)) => {
                if let Some(&tu) = fixed_of.get(&u.0) {
                    fixed_adj[lv].push((tu, false));
                }
            }
            (None, None) => {}
        }
    }
    let mut cands: Vec<Vec<usize>> = vec![Vec::new(); nl];
    for &(li, r) in w.keys() {
        cands[li].push(r);
    }
    for c in cands.iter_mut() {
        c.sort_unstable();
    }
    let mut owner: Vec<Option<usize>> = vec![None; right_nodes.len()];
    for (li, a) in assignment.iter().enumerate() {
        if let Some(r) = *a {
            owner[r] = Some(li);
        }
    }
    // Query edges from `li` (mapped to right node `r`) conserved in the
    // target under the current assignment of the other endpoints.
    let conserved = |assignment: &[Option<usize>], li: usize, r: usize| -> usize {
        let tn = NodeId(right_nodes[r]);
        adj[li]
            .iter()
            .filter(|&&(lj, out)| {
                assignment[lj].is_some_and(|rj| {
                    let tj = NodeId(right_nodes[rj]);
                    if out {
                        target.has_edge(tn, tj)
                    } else {
                        target.has_edge(tj, tn)
                    }
                })
            })
            .count()
            + fixed_adj[li]
                .iter()
                .filter(|&&(tj, out)| {
                    if out {
                        target.has_edge(tn, tj)
                    } else {
                        target.has_edge(tj, tn)
                    }
                })
                .count()
    };
    const EPS: f64 = 1e-9;
    loop {
        let mut improved = false;
        // Single moves to an unused candidate of no lower quality.
        for li in 0..nl {
            let Some(cur) = assignment[li] else { continue };
            let cur_w = w.get(&(li, cur)).copied().unwrap_or(0.0);
            let cur_c = conserved(assignment, li, cur);
            let mut best: Option<(usize, usize)> = None; // (conserved, right)
            for &r in &cands[li] {
                if r == cur || owner[r].is_some() {
                    continue;
                }
                if w[&(li, r)] < cur_w - EPS {
                    continue;
                }
                let c = conserved(assignment, li, r);
                if c > cur_c && !best.is_some_and(|(bc, _)| c <= bc) {
                    best = Some((c, r));
                }
            }
            if let Some((_, r)) = best {
                owner[cur] = None;
                owner[r] = Some(li);
                assignment[li] = Some(r);
                improved = true;
            }
        }
        // Length-2 chains of no lower summed quality: `li` takes one of its
        // candidates `rj` from its owner `lj`, while `lj` falls back to
        // `li`'s old target (a plain swap) or to an unused candidate of its
        // own (an augmenting rotation — needed when a tangle's repair
        // passes through a conserved-neutral intermediate no single move
        // would take). Only (li, lj) pairs sharing a candidate are visited,
        // keeping the pass near-linear in the candidate-list total.
        for li in 0..nl {
            for ci in 0..cands[li].len() {
                let Some(ri) = assignment[li] else { break };
                let rj = cands[li][ci];
                let Some(lj) = owner[rj] else { continue };
                if lj == li {
                    continue;
                }
                let wij = w[&(li, rj)];
                let old_sum = w[&(li, ri)] + w[&(lj, rj)];
                let mut before = None;
                for &fb in std::iter::once(&ri).chain(cands[lj].iter().filter(|&&r| r != ri)) {
                    if fb != ri && (fb == rj || owner[fb].is_some()) {
                        continue;
                    }
                    let Some(&wjf) = w.get(&(lj, fb)) else {
                        continue;
                    };
                    if wij + wjf < old_sum - EPS {
                        continue;
                    }
                    let before = *before.get_or_insert_with(|| {
                        conserved(assignment, li, ri) + conserved(assignment, lj, rj)
                    });
                    assignment[li] = Some(rj);
                    assignment[lj] = Some(fb);
                    let after = conserved(assignment, li, rj) + conserved(assignment, lj, fb);
                    if after > before {
                        owner[ri] = None;
                        owner[rj] = Some(li);
                        owner[fb] = Some(lj);
                        improved = true;
                        break;
                    }
                    assignment[li] = Some(ri);
                    assignment[lj] = Some(rj);
                }
            }
        }
        if !improved {
            break;
        }
    }
}
