//! Self-cleaning scratch directories for in-temp index builds.
//!
//! [`TaleDatabase::build_in_temp`](crate::TaleDatabase::build_in_temp)
//! needs a throwaway directory without dragging a temp-dir crate into the
//! library's public dependency set. Uniqueness comes from the process id
//! plus a process-wide counter.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory removed (recursively) on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Creates a fresh scratch directory under the OS temp dir.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{}", std::process::id(), n));
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let p;
        {
            let s = ScratchDir::new("tale-test").unwrap();
            p = s.path().to_owned();
            assert!(p.is_dir());
            std::fs::write(p.join("f"), b"x").unwrap();
        }
        assert!(!p.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = ScratchDir::new("tale-test").unwrap();
        let b = ScratchDir::new("tale-test").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
