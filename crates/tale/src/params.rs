//! Build- and query-time parameters.
//!
//! TALE has three user-facing knobs (§VI-A): the neighbor array width
//! `Sbit` (index-build time), the approximation ratio `ρ` and the
//! important-node fraction `Pimp` (query time). The paper's settings:
//! `Sbit = 96, ρ = 25%, Pimp = 15%` for BIND; `Sbit = 32, ρ = 25%,
//! Pimp = 25%` for ASTRAL.

use std::sync::Arc;
use tale_graph::centrality::ImportanceMeasure;
use tale_matching::similarity::{QualitySum, SimilarityModel};

/// Index-build parameters.
#[derive(Debug, Clone)]
pub struct TaleParams {
    /// Neighbor array width in bits (`Sbit`).
    pub sbit: u32,
    /// Buffer pool frames per index page file (8 KiB each).
    pub buffer_frames: usize,
    /// Parallelize indexing-unit extraction across graphs.
    pub parallel_build: bool,
    /// Bloom hash functions per neighbor label (§IV-A precision
    /// extension; 1 = the paper's setting).
    pub bloom_hashes: u8,
    /// Fold incident edge labels into neighborhood signatures (the
    /// extended paper's labeled-edge adaptation). Pair with
    /// `QueryOptions::match_edge_labels` for end-to-end edge-label
    /// semantics.
    pub use_edge_labels: bool,
    /// Async read-path worker threads per index (`0` disables
    /// prefetching). Sharded databases share one worker pool across all
    /// shards, so this bounds total I/O concurrency, not per-shard.
    pub io_workers: usize,
    /// Prefetch staging capacity in pages (8 KiB each), per page file.
    pub prefetch_pages: usize,
}

impl Default for TaleParams {
    fn default() -> Self {
        TaleParams {
            sbit: 64,
            buffer_frames: 4096,
            parallel_build: true,
            bloom_hashes: 1,
            use_edge_labels: false,
            io_workers: tale_nhindex::DEFAULT_IO_WORKERS,
            prefetch_pages: tale_nhindex::DEFAULT_PREFETCH_PAGES,
        }
    }
}

impl TaleParams {
    /// The paper's BIND configuration (`Sbit = 96`).
    pub fn bind() -> Self {
        TaleParams {
            sbit: 96,
            ..Default::default()
        }
    }

    /// The paper's ASTRAL configuration (`Sbit = 32`).
    pub fn astral() -> Self {
        TaleParams {
            sbit: 32,
            ..Default::default()
        }
    }
}

/// How the engine turns a query into an execution plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanMode {
    /// The original hard-coded pipeline: probe every important node in
    /// selection order against every shard, unbounded readahead. The
    /// baseline the bit-identity oracles compare against.
    Fixed,
    /// Cost-based planning from per-index statistics: probes ordered by
    /// estimated selectivity, readahead sized from posting estimates,
    /// shards skipped when statistics prove they cannot contribute
    /// (infeasible probes, or a top-K score bound below the current
    /// K-th score). Results are bit-identical to [`PlanMode::Fixed`] —
    /// planning only reorders and elides work whose outcome is proven.
    /// Readers without statistics degrade to the fixed behavior.
    #[default]
    Cost,
}

impl PlanMode {
    /// Stable name (CLI flags, explain output, cache fingerprint tag).
    pub fn name(self) -> &'static str {
        match self {
            PlanMode::Fixed => "fixed",
            PlanMode::Cost => "cost",
        }
    }
}

/// Query-time parameters.
#[derive(Clone)]
pub struct QueryOptions {
    /// Approximation ratio ρ: fraction of a query node's neighbors allowed
    /// to have no counterpart (§IV-B). The paper uses 25%.
    pub rho: f64,
    /// Fraction of query nodes treated as important (§V-B). The paper uses
    /// 15% (BIND) / 25% (ASTRAL).
    pub p_imp: f64,
    /// Node-importance measure (degree centrality in the paper; Random
    /// gives the §VI-D TALE-Random ablation).
    pub importance: ImportanceMeasure,
    /// Extension radius in hops (the paper fixes 2).
    pub hops: u8,
    /// Use greedy anchor assignment instead of Hungarian (ablation).
    pub greedy_anchors: bool,
    /// Require matched edges to carry equal labels during growth (the
    /// extended paper's labeled-edge matching; unlabeled edges match only
    /// unlabeled edges).
    pub match_edge_labels: bool,
    /// Keep only the best K matches (`None` = all, as in the Fig. 6
    /// experiment, which does "not restrict the number of results").
    pub top_k: Option<usize>,
    /// Worker threads for the query pipeline: `0` = one per available
    /// core, `1` = fully serial, `n` = exactly `n`. Results are identical
    /// at every setting — per-graph work is pure and merged in a
    /// deterministic order — so this is purely a latency knob.
    pub threads: usize,
    /// Consult (and populate) the database's result cache. Caching never
    /// changes results — hits are verified against the exact query — so
    /// this is a knob for benchmarking cold paths, not correctness.
    pub use_cache: bool,
    /// Similarity model ranking the results (§III: user-customizable).
    pub similarity: Arc<dyn SimilarityModel>,
    /// Plan selection (see [`PlanMode`]). Purely a performance knob:
    /// results are bit-identical in every mode.
    pub plan: PlanMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            rho: 0.25,
            p_imp: 0.15,
            importance: ImportanceMeasure::Degree,
            hops: 2,
            greedy_anchors: false,
            match_edge_labels: false,
            top_k: None,
            threads: 0,
            use_cache: true,
            similarity: Arc::new(QualitySum),
            plan: PlanMode::default(),
        }
    }
}

impl std::fmt::Debug for QueryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryOptions")
            .field("rho", &self.rho)
            .field("p_imp", &self.p_imp)
            .field("importance", &self.importance)
            .field("hops", &self.hops)
            .field("greedy_anchors", &self.greedy_anchors)
            .field("top_k", &self.top_k)
            .field("threads", &self.threads)
            .field("use_cache", &self.use_cache)
            .field("similarity", &self.similarity.name())
            .field("plan", &self.plan)
            .finish()
    }
}

impl QueryOptions {
    /// The paper's BIND query settings (ρ = 25%, Pimp = 15%).
    pub fn bind() -> Self {
        QueryOptions::default()
    }

    /// The paper's ASTRAL query settings (ρ = 25%, Pimp = 25%).
    pub fn astral() -> Self {
        QueryOptions {
            p_imp: 0.25,
            ..Default::default()
        }
    }

    /// Builder-style: set `top_k`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Builder-style: set the similarity model.
    pub fn with_similarity(mut self, s: Arc<dyn SimilarityModel>) -> Self {
        self.similarity = s;
        self
    }

    /// Builder-style: set the importance measure.
    pub fn with_importance(mut self, m: ImportanceMeasure) -> Self {
        self.importance = m;
        self
    }

    /// Builder-style: set the worker-thread count (`0` = auto, `1` =
    /// serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: enable or disable the result cache.
    pub fn with_cache(mut self, use_cache: bool) -> Self {
        self.use_cache = use_cache;
        self
    }

    /// Builder-style: set the plan mode.
    pub fn with_plan(mut self, plan: PlanMode) -> Self {
        self.plan = plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        assert_eq!(TaleParams::bind().sbit, 96);
        assert_eq!(TaleParams::astral().sbit, 32);
        assert_eq!(QueryOptions::bind().p_imp, 0.15);
        assert_eq!(QueryOptions::astral().p_imp, 0.25);
        assert_eq!(QueryOptions::bind().rho, 0.25);
    }

    #[test]
    fn builders() {
        let o = QueryOptions::default()
            .with_top_k(20)
            .with_importance(ImportanceMeasure::Closeness)
            .with_plan(PlanMode::Fixed);
        assert_eq!(o.top_k, Some(20));
        assert_eq!(o.importance, ImportanceMeasure::Closeness);
        assert_eq!(o.plan, PlanMode::Fixed);
        assert_eq!(QueryOptions::default().plan, PlanMode::Cost);
        assert_eq!(PlanMode::Cost.name(), "cost");
        assert_eq!(PlanMode::Fixed.name(), "fixed");
    }

    #[test]
    fn debug_impl_includes_model_name() {
        let s = format!("{:?}", QueryOptions::default());
        assert!(s.contains("quality-sum"));
    }
}
