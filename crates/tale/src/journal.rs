//! Multi-file mutation journal.
//!
//! A persistent [`crate::TaleDatabase`] keeps two durable artifacts that
//! must stay consistent: the graph store (`graphs.json`) and the NH-Index.
//! Each is individually crash-safe (atomic rename; WAL), but a crash
//! *between* their commit points could otherwise leave an index that
//! references a graph the store lacks, or vice versa — a corrupted-but-
//! served state no single-file mechanism can see.
//!
//! The journal closes that window. Before a graph insert touches anything
//! durable it *stages*: the current `graphs.json` is copied to a fsynced
//! backup and a `pending.json` marker recording the index's pre-mutation
//! generation is atomically written. Then the new `graphs.json` is saved,
//! the index mutation commits (the atomic manifest write bumping the
//! logical counter for the generational index; a WAL transaction for the
//! sharded in-place path), and the journal is cleared. Recovery on open
//! keys off that generation counter — the *last* commit point in the
//! sequence:
//!
//! * generation unchanged → the index mutation never committed (its WAL
//!   already rolled the page files back); restore `graphs.json` from the
//!   backup. Everything is bit-identical to the pre-insert state.
//! * generation advanced → the index committed; the already-saved
//!   `graphs.json` is exactly the post-insert state. Discard the backup.
//!
//! Graph removals tombstone only the index and never touch `graphs.json`,
//! so they need no journal. Clearing is crash-safe too: the marker is
//! deleted before the backup, and a stale backup without a marker is
//! swept harmlessly on the next open.

use crate::Result;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Marker file recording an in-flight multi-file mutation.
pub const JOURNAL_FILE: &str = "pending.json";
/// Pre-mutation copy of `graphs.json` while a mutation is in flight.
pub const DB_BACKUP_FILE: &str = "graphs.json.pre";

/// Contents of the `pending.json` marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingMutation {
    /// Index generation observed *before* the mutation began — the
    /// *logical* mutation counter for the generational single-index
    /// database, the shard's in-place generation for sharded databases.
    /// Recovery compares it to the reopened index's counter to decide
    /// whether the mutation committed.
    pub pre_generation: u64,
    /// For sharded databases: the shard the mutation routed to (whose
    /// generation `pre_generation` refers to). `None` for the single-index
    /// database.
    #[serde(default)]
    pub shard: Option<u32>,
}

/// What [`crate::TaleDatabase::open_with_recovery`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DbRecovery {
    /// The current generation's own WAL recovery outcome (always a no-op
    /// transaction-wise — generations are immutable once built).
    pub index: tale_nhindex::RecoveryReport,
    /// A `pending.json` marker was present (a multi-file mutation was in
    /// flight at crash time).
    pub journal_present: bool,
    /// `graphs.json` was restored from its pre-mutation backup.
    pub db_rolled_back: bool,
    /// Orphaned generation directories swept from `gens/` — unfinished
    /// folds, or retired generations whose GC never ran.
    pub generations_swept: usize,
}

/// Handle to the journal files of one database directory.
pub struct MutationJournal {
    dir: PathBuf,
}

impl MutationJournal {
    /// Journal for the database persisted in `dir`.
    pub fn new(dir: &Path) -> Self {
        MutationJournal {
            dir: dir.to_owned(),
        }
    }

    fn marker(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    fn backup(&self) -> PathBuf {
        self.dir.join(DB_BACKUP_FILE)
    }

    /// Stages a mutation: backs up `db_file` (fsynced) and atomically
    /// writes the marker. After this returns, a crash at any later point
    /// is recoverable by [`MutationJournal::recover`] (or by the sharded
    /// layer's own reconciliation built on [`MutationJournal::load`] /
    /// [`MutationJournal::roll_back_db`]).
    pub fn stage(&self, db_file: &Path, marker: PendingMutation) -> Result<()> {
        std::fs::copy(db_file, self.backup())?;
        let f = std::fs::File::open(self.backup())?;
        f.sync_all()?;
        drop(f);
        let json = serde_json::to_string_pretty(&marker).expect("marker serializes");
        tale_storage::atomic::write_atomic(&self.marker(), json.as_bytes())?;
        Ok(())
    }

    /// Reads the marker, if present.
    pub fn load(&self) -> Result<Option<PendingMutation>> {
        let marker = self.marker();
        if !marker.exists() {
            return Ok(None);
        }
        let raw = std::fs::read_to_string(&marker)?;
        let pending: PendingMutation = serde_json::from_str(&raw)
            .map_err(|e| crate::TaleError::Io(std::io::Error::other(format!("journal: {e}"))))?;
        Ok(Some(pending))
    }

    /// Restores `db_file` from the staged backup (atomic rename). Returns
    /// whether a backup existed to restore.
    pub fn roll_back_db(&self, db_file: &Path) -> Result<bool> {
        if !self.backup().exists() {
            return Ok(false);
        }
        std::fs::rename(self.backup(), db_file)?;
        tale_storage::atomic::sync_dir(&self.dir)?;
        Ok(true)
    }

    /// Removes the marker, then the backup. Deleting the marker first
    /// makes the clear atomic from recovery's point of view: once the
    /// marker is gone the mutation is fully committed, and an orphaned
    /// backup is just swept.
    pub fn clear(&self) -> Result<()> {
        remove_if_present(&self.marker())?;
        tale_storage::atomic::sync_dir(&self.dir)?;
        remove_if_present(&self.backup())?;
        Ok(())
    }

    /// Repairs the directory after a crash. `post_generation` is the index
    /// generation *after* its own WAL recovery ran. Returns whether a
    /// journal was present and whether `graphs.json` was rolled back.
    pub fn recover(&self, post_generation: u64) -> Result<(bool, bool)> {
        let Some(pending) = self.load()? else {
            // No mutation in flight; sweep a stale backup if the previous
            // clear() died between its two deletes.
            remove_if_present(&self.backup())?;
            return Ok((false, false));
        };
        let mut db_rolled_back = false;
        if post_generation == pending.pre_generation {
            // Index mutation never committed: put the pre-mutation
            // graphs.json back (rename is atomic; the backup was fsynced
            // at stage time).
            db_rolled_back = self.roll_back_db(&self.dir.join(crate::database::DB_FILE))?;
        }
        self.clear()?;
        Ok((true, db_rolled_back))
    }
}

fn remove_if_present(path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_recover_rolls_db_back_when_generation_unchanged() {
        let d = tempfile::tempdir().unwrap();
        let db_file = d.path().join(crate::database::DB_FILE);
        std::fs::write(&db_file, b"old").unwrap();
        let j = MutationJournal::new(d.path());
        j.stage(
            &db_file,
            PendingMutation {
                pre_generation: 7,
                shard: None,
            },
        )
        .unwrap();
        std::fs::write(&db_file, b"new").unwrap(); // the mutation's save
                                                   // crash; index recovery left generation at 7 → roll back
        let (present, rolled) = j.recover(7).unwrap();
        assert!(present && rolled);
        assert_eq!(std::fs::read(&db_file).unwrap(), b"old");
        assert!(!d.path().join(JOURNAL_FILE).exists());
        assert!(!d.path().join(DB_BACKUP_FILE).exists());
    }

    #[test]
    fn stage_recover_keeps_db_when_generation_advanced() {
        let d = tempfile::tempdir().unwrap();
        let db_file = d.path().join(crate::database::DB_FILE);
        std::fs::write(&db_file, b"old").unwrap();
        let j = MutationJournal::new(d.path());
        j.stage(
            &db_file,
            PendingMutation {
                pre_generation: 7,
                shard: None,
            },
        )
        .unwrap();
        std::fs::write(&db_file, b"new").unwrap();
        // index committed (generation 8) → keep the new file
        let (present, rolled) = j.recover(8).unwrap();
        assert!(present && !rolled);
        assert_eq!(std::fs::read(&db_file).unwrap(), b"new");
        assert!(!d.path().join(DB_BACKUP_FILE).exists());
    }

    #[test]
    fn orphan_backup_is_swept() {
        let d = tempfile::tempdir().unwrap();
        std::fs::write(d.path().join(DB_BACKUP_FILE), b"stale").unwrap();
        let j = MutationJournal::new(d.path());
        let (present, rolled) = j.recover(0).unwrap();
        assert!(!present && !rolled);
        assert!(!d.path().join(DB_BACKUP_FILE).exists());
    }

    #[test]
    fn clear_is_idempotent() {
        let d = tempfile::tempdir().unwrap();
        let j = MutationJournal::new(d.path());
        j.clear().unwrap();
        j.clear().unwrap();
    }
}
