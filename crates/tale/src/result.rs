//! Query results.

use serde::Serialize;
use tale_graph::GraphId;
use tale_matching::grow::GraphMatch;

/// One ranked approximate subgraph match.
#[derive(Debug, Clone, Serialize)]
pub struct QueryMatch {
    /// The matched database graph.
    pub graph: GraphId,
    /// Name of the matched graph in the database.
    pub graph_name: String,
    /// The node mapping grown by Algorithms 2–4.
    pub m: GraphMatch,
    /// Similarity score under the query's model (higher = better).
    pub score: f64,
    /// Matched node count (cached from `m`).
    pub matched_nodes: usize,
    /// Preserved query-edge count (cached).
    pub matched_edges: usize,
}
