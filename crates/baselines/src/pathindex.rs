//! A GraphGrep-style path index for exact subgraph containment
//! (Shasha, Wang & Giugno, PODS 2002 — cited in §II).
//!
//! The classical filter-and-verify pipeline the paper's related work
//! contrasts TALE with: index all label-paths up to a length bound; a
//! query's paths prune the database (any graph missing a query path, or
//! holding fewer occurrences, cannot contain the query); survivors are
//! verified with Ullmann. Exact containment only — no approximation —
//! which is precisely the limitation motivating TALE (§I).

use crate::ullmann::find_embedding;
use std::collections::HashMap;
use tale_graph::{Graph, NodeId};

/// A canonical label-path feature: the lexicographically smaller of the
/// label sequence and its reverse (paths are undirected features).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PathFeature(Vec<u32>);

impl PathFeature {
    fn canonical(mut seq: Vec<u32>) -> PathFeature {
        let mut rev = seq.clone();
        rev.reverse();
        if rev < seq {
            seq = rev;
        }
        PathFeature(seq)
    }
}

/// Per-graph feature table: feature → occurrence count.
type FeatureCounts = HashMap<PathFeature, u32>;

/// Enumerates label-paths of `g` with up to `max_edges` edges (simple
/// paths, each counted once per direction-canonical occurrence).
fn path_features(g: &Graph, max_edges: usize) -> FeatureCounts {
    let mut counts: FeatureCounts = HashMap::new();
    // DFS from every node, tracking the visited set along the path
    fn dfs(
        g: &Graph,
        node: NodeId,
        labels: &mut Vec<u32>,
        on_path: &mut Vec<bool>,
        max_edges: usize,
        counts: &mut FeatureCounts,
    ) {
        if labels.len() > 1 {
            // record the path (canonical form counts each undirected
            // occurrence twice — once per direction — so halve implicitly
            // by only recording when the forward form is canonical, or
            // the path is a palindrome)
            let mut rev = labels.clone();
            rev.reverse();
            if *labels <= rev {
                *counts
                    .entry(PathFeature::canonical(labels.clone()))
                    .or_insert(0) += 1;
            }
        }
        if labels.len() > max_edges {
            return;
        }
        for nb in g.neighbors(node) {
            if !on_path[nb.idx()] {
                on_path[nb.idx()] = true;
                labels.push(g.label(nb).0);
                dfs(g, nb, labels, on_path, max_edges, counts);
                labels.pop();
                on_path[nb.idx()] = false;
            }
        }
    }
    let mut on_path = vec![false; g.node_count()];
    for n in g.nodes() {
        // single-node features
        *counts.entry(PathFeature(vec![g.label(n).0])).or_insert(0) += 1;
        on_path[n.idx()] = true;
        let mut labels = vec![g.label(n).0];
        dfs(g, n, &mut labels, &mut on_path, max_edges, &mut counts);
        on_path[n.idx()] = false;
    }
    counts
}

/// The path index over a set of graphs.
pub struct PathIndex {
    graphs: Vec<Graph>,
    tables: Vec<FeatureCounts>,
    max_edges: usize,
}

impl PathIndex {
    /// Indexes `graphs` with paths of up to `max_edges` edges (GraphGrep's
    /// `lp` parameter; 3 is a reasonable default).
    pub fn build(graphs: Vec<Graph>, max_edges: usize) -> PathIndex {
        let tables = graphs.iter().map(|g| path_features(g, max_edges)).collect();
        PathIndex {
            graphs,
            tables,
            max_edges,
        }
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Total distinct features across all graphs (index size driver —
    /// note it can grow super-linearly with path length, the blow-up
    /// §IV-A contrasts the NH-Index's linear size with).
    pub fn total_features(&self) -> usize {
        self.tables.iter().map(HashMap::len).sum()
    }

    /// Filter step: graphs whose feature tables dominate the query's.
    /// Guaranteed superset of the true containment answer set.
    pub fn candidates(&self, query: &Graph) -> Vec<usize> {
        let q = path_features(query, self.max_edges);
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| q.iter().all(|(f, &c)| t.get(f).copied().unwrap_or(0) >= c))
            .map(|(i, _)| i)
            .collect()
    }

    /// Filter + verify: graphs that exactly contain `query` (subgraph
    /// isomorphism, matched by raw labels).
    pub fn exact_matches(&self, query: &Graph) -> Vec<usize> {
        self.candidates(query)
            .into_iter()
            .filter(|&i| {
                let target = &self.graphs[i];
                let ql = |n: NodeId| query.label(n).0;
                let tl = |n: NodeId| target.label(n).0;
                find_embedding(query, target, &ql, &tl).is_some()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::gnm;
    use tale_graph::labels::NodeLabel;

    fn path_graph(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn features_of_a_path() {
        let g = path_graph(&[0, 1, 2]);
        let f = path_features(&g, 3);
        // single nodes: [0],[1],[2]; edges: [0,1],[1,2]; path [0,1,2]
        assert_eq!(f.get(&PathFeature(vec![0])), Some(&1));
        assert_eq!(f.get(&PathFeature(vec![0, 1])), Some(&1));
        assert_eq!(f.get(&PathFeature(vec![0, 1, 2])), Some(&1));
        // reversed form canonicalizes onto the same feature
        assert_eq!(f.get(&PathFeature(vec![2, 1, 0])), None);
    }

    #[test]
    fn filter_is_sound_no_false_negatives() {
        // graphs that contain the query must always pass the filter
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        for _ in 0..10 {
            let host = gnm(&mut rng, 30, 55, 4);
            // query = induced subgraph of host → certainly contained
            let nodes: Vec<NodeId> = host.nodes().take(8).collect();
            let (query, _) = host.induced_subgraph(&nodes);
            if query.edge_count() == 0 {
                continue;
            }
            let idx = PathIndex::build(vec![host], 3);
            assert_eq!(
                idx.candidates(&query),
                vec![0],
                "filter dropped a true host"
            );
        }
    }

    #[test]
    fn filter_prunes_label_mismatches() {
        let host = path_graph(&[0, 1, 2]);
        let other = path_graph(&[3, 4, 5]);
        let idx = PathIndex::build(vec![host, other], 3);
        let q = path_graph(&[0, 1]);
        assert_eq!(idx.candidates(&q), vec![0]);
    }

    #[test]
    fn exact_matches_verify() {
        // The filter alone can admit false positives; verification must
        // remove them. A triangle query vs a path host with the same
        // feature-ish content.
        let mut tri = Graph::new_undirected();
        let a = tri.add_node(NodeLabel(0));
        let b = tri.add_node(NodeLabel(0));
        let c = tri.add_node(NodeLabel(0));
        tri.add_edge(a, b).unwrap();
        tri.add_edge(b, c).unwrap();
        tri.add_edge(a, c).unwrap();
        let host_with = {
            let mut g = tri.clone();
            let d = g.add_node(NodeLabel(1));
            g.add_edge(a, d).unwrap();
            g
        };
        let host_without = path_graph(&[0, 0, 0, 0, 0, 0]); // paths only
        let idx = PathIndex::build(vec![host_with, host_without], 3);
        assert_eq!(idx.exact_matches(&tri), vec![0]);
    }

    #[test]
    fn pruning_power_on_random_db() {
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let mut graphs: Vec<Graph> = (0..30).map(|_| gnm(&mut rng, 25, 45, 6)).collect();
        // plant the query in graph 7
        let query = gnm(&mut rng, 6, 9, 6);
        {
            let host = &mut graphs[7];
            let base = host.node_count() as u32;
            for n in query.nodes() {
                host.add_node(query.label(n));
            }
            for (u, v, _) in query.edges() {
                host.add_edge(NodeId(base + u.0), NodeId(base + v.0))
                    .unwrap();
            }
        }
        let idx = PathIndex::build(graphs, 3);
        let cands = idx.candidates(&query);
        assert!(cands.contains(&7), "planted host pruned");
        assert!(
            cands.len() < 15,
            "filter should prune at least half the db: {cands:?}"
        );
        let exact = idx.exact_matches(&query);
        assert!(exact.contains(&7));
        assert!(exact.len() <= cands.len());
    }

    #[test]
    fn empty_and_degenerate() {
        let idx = PathIndex::build(Vec::new(), 3);
        assert!(idx.is_empty());
        let q = path_graph(&[0]);
        assert!(idx.candidates(&q).is_empty());
        // empty query matches everything (vacuous containment)
        let idx = PathIndex::build(vec![path_graph(&[0, 1])], 3);
        let empty = Graph::new_undirected();
        assert_eq!(idx.candidates(&empty), vec![0]);
        assert_eq!(idx.exact_matches(&empty), vec![0]);
    }
}
