//! A Graemlin-like seed-and-extend pairwise network aligner.
//!
//! Stands in for Graemlin (Flannick et al., Genome Res. 2006) in the
//! Table II comparison. The real tool is a closed pipeline needing a
//! phylogeny and trained scoring parameters; what the paper's comparison
//! actually exercises is the *design point*: an index-free aligner that
//! enumerates seed pairs exhaustively and extends each locally — hence
//! minutes-to-hours on large PINs where TALE answers in seconds. This
//! implementation occupies that design point honestly:
//!
//! 1. **Seeding**: every pair `(u ∈ G1, v ∈ G2)` with the same ortholog
//!    group label is a seed (exhaustive `O(|V1|·|V2|)` enumeration).
//! 2. **Extension**: greedy BFS around each seed matching neighbors by
//!    group label, scoring by conserved edges.
//! 3. **Selection**: seeds are ranked by extension score; non-overlapping
//!    alignments are kept greedily and merged into one global mapping.
//!
//! Node labels are compared through the caller-provided group functions,
//! the same §IV-E ortholog-group model TALE uses.

use std::collections::HashMap;
use tale_graph::{Graph, NodeId};

/// A pairwise alignment: an injective partial mapping `G1 → G2`.
#[derive(Debug, Clone, Default)]
pub struct Alignment {
    /// Matched pairs `(node in G1, node in G2)`.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Conserved edge count under the mapping.
    pub conserved_edges: usize,
}

impl Alignment {
    /// Number of aligned node pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when nothing aligned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The G2 partner of a G1 node.
    pub fn image_of(&self, n: NodeId) -> Option<NodeId> {
        self.pairs.iter().find(|(a, _)| *a == n).map(|(_, b)| *b)
    }
}

/// The aligner. Construct once, call [`SeedExtendAligner::align`].
#[derive(Debug, Clone)]
pub struct SeedExtendAligner {
    /// Minimum extension score (conserved edges) for a seed's local
    /// alignment to be considered at all.
    pub min_seed_score: usize,
    /// Maximum BFS extension radius around a seed.
    pub max_radius: u32,
}

impl Default for SeedExtendAligner {
    fn default() -> Self {
        // Defaults model Graemlin's significance filtering: a local
        // alignment must conserve several interactions before it is
        // reported. Lower `min_seed_score` for a recall-oriented aligner.
        SeedExtendAligner {
            min_seed_score: 4,
            max_radius: 2,
        }
    }
}

impl SeedExtendAligner {
    /// Aligns `g1` against `g2`, comparing nodes via the group-label
    /// functions. Exhaustive over same-group seed pairs — deliberately
    /// index-free (see module docs).
    pub fn align(
        &self,
        g1: &Graph,
        g2: &Graph,
        group1: &dyn Fn(NodeId) -> u32,
        group2: &dyn Fn(NodeId) -> u32,
    ) -> Alignment {
        // bucket G2 nodes by group for seed enumeration
        let mut g2_by_group: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for v in g2.nodes() {
            g2_by_group.entry(group2(v)).or_default().push(v);
        }

        // 1) enumerate and score every seed
        let mut scored: Vec<(usize, NodeId, NodeId)> = Vec::new();
        for u in g1.nodes() {
            let Some(cands) = g2_by_group.get(&group1(u)) else {
                continue;
            };
            for &v in cands {
                let local = self.extend(g1, g2, u, v, group1, group2, None, None);
                if local.conserved_edges >= self.min_seed_score {
                    scored.push((local.conserved_edges, u, v));
                }
            }
        }
        // 2) greedy selection of non-overlapping seeds, re-extending under
        // the global used-sets so alignments merge consistently
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut used1 = vec![false; g1.node_count()];
        let mut used2 = vec![false; g2.node_count()];
        let mut global = Alignment::default();
        for (_, u, v) in scored {
            if used1[u.idx()] || used2[v.idx()] {
                continue;
            }
            let local = self.extend(g1, g2, u, v, group1, group2, Some(&used1), Some(&used2));
            if local.conserved_edges < self.min_seed_score {
                continue;
            }
            for (a, b) in &local.pairs {
                used1[a.idx()] = true;
                used2[b.idx()] = true;
            }
            global.pairs.extend(local.pairs);
        }
        global.conserved_edges = conserved_edges(g1, g2, &global.pairs);
        global
    }

    /// Greedy BFS extension from seed `(u, v)` within `max_radius`,
    /// optionally avoiding globally used nodes.
    #[allow(clippy::too_many_arguments)]
    fn extend(
        &self,
        g1: &Graph,
        g2: &Graph,
        u: NodeId,
        v: NodeId,
        group1: &dyn Fn(NodeId) -> u32,
        group2: &dyn Fn(NodeId) -> u32,
        avoid1: Option<&[bool]>,
        avoid2: Option<&[bool]>,
    ) -> Alignment {
        let blocked1 = |n: NodeId| avoid1.is_some_and(|a| a[n.idx()]);
        let blocked2 = |n: NodeId| avoid2.is_some_and(|a| a[n.idx()]);
        if blocked1(u) || blocked2(v) {
            return Alignment::default();
        }
        let mut m1: HashMap<NodeId, NodeId> = HashMap::new();
        let mut used2l: HashMap<NodeId, NodeId> = HashMap::new();
        m1.insert(u, v);
        used2l.insert(v, u);
        let mut frontier = vec![(u, v, 0u32)];
        while let Some((a, b, d)) = frontier.pop() {
            if d >= self.max_radius {
                continue;
            }
            for an in g1.neighbors(a) {
                if m1.contains_key(&an) || blocked1(an) {
                    continue;
                }
                let target_group = group1(an);
                let best = g2
                    .neighbors(b)
                    .filter(|bn| {
                        !used2l.contains_key(bn) && !blocked2(*bn) && group2(*bn) == target_group
                    })
                    .max_by_key(|bn| {
                        // prefer partners that conserve more already-mapped edges
                        let score = g2.neighbors(*bn).filter(|x| used2l.contains_key(x)).count();
                        (score, std::cmp::Reverse(bn.0))
                    });
                if let Some(bn) = best {
                    m1.insert(an, bn);
                    used2l.insert(bn, an);
                    frontier.push((an, bn, d + 1));
                }
            }
        }
        let pairs: Vec<(NodeId, NodeId)> = m1.into_iter().collect();
        let ce = conserved_edges(g1, g2, &pairs);
        Alignment {
            pairs,
            conserved_edges: ce,
        }
    }
}

/// Edges of `g1` preserved by the pair list in `g2`.
pub fn conserved_edges(g1: &Graph, g2: &Graph, pairs: &[(NodeId, NodeId)]) -> usize {
    let mut map = vec![None; g1.node_count()];
    for (a, b) in pairs {
        map[a.idx()] = Some(*b);
    }
    g1.edges()
        .filter(|&(x, y, _)| {
            matches!(
                (map[x.idx()], map[y.idx()]),
                (Some(mx), Some(my)) if g2.has_edge(mx, my)
            )
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn raw(g: &Graph) -> impl Fn(NodeId) -> u32 + '_ {
        move |n| g.label(n).0
    }

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    /// Permissive settings for tiny fixtures (default thresholds model
    /// significance filtering and reject alignments under 4 edges).
    fn lenient() -> SeedExtendAligner {
        SeedExtendAligner {
            min_seed_score: 1,
            max_radius: 3,
        }
    }

    #[test]
    fn identical_path_fully_aligned() {
        let a = path(&[0, 1, 2, 3]);
        let b = path(&[0, 1, 2, 3]);
        let ga = raw(&a);
        let gb = raw(&b);
        let al = lenient().align(&a, &b, &ga, &gb);
        assert_eq!(al.len(), 4);
        assert_eq!(al.conserved_edges, 3);
    }

    #[test]
    fn default_thresholds_reject_small_alignments() {
        let a = path(&[0, 1, 2, 3]);
        let b = path(&[0, 1, 2, 3]);
        let ga = raw(&a);
        let gb = raw(&b);
        // 3 conserved edges < min_seed_score 4 → filtered out entirely
        let al = SeedExtendAligner::default().align(&a, &b, &ga, &gb);
        assert!(al.is_empty());
    }

    #[test]
    fn injective_and_group_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let a = gnm(&mut rng, 40, 70, 5);
        let b = gnm(&mut rng, 40, 70, 5);
        let ga = raw(&a);
        let gb = raw(&b);
        let al = SeedExtendAligner::default().align(&a, &b, &ga, &gb);
        let mut seen1 = std::collections::HashSet::new();
        let mut seen2 = std::collections::HashSet::new();
        for (x, y) in &al.pairs {
            assert!(seen1.insert(*x), "g1 node aligned twice");
            assert!(seen2.insert(*y), "g2 node aligned twice");
            assert_eq!(a.label(*x).0, b.label(*y).0, "group mismatch");
        }
    }

    #[test]
    fn mutated_sibling_aligns_substantially() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let a = gnm(&mut rng, 60, 120, 6);
        let (b, _) = mutate(&mut rng, &a, &MutationRates::mild(), 6);
        let ga = raw(&a);
        let gb = raw(&b);
        let al = SeedExtendAligner::default().align(&a, &b, &ga, &gb);
        assert!(
            al.conserved_edges > 40,
            "only {} conserved",
            al.conserved_edges
        );
    }

    #[test]
    fn no_shared_groups_no_alignment() {
        let a = path(&[0, 1]);
        let b = path(&[5, 6]);
        let ga = raw(&a);
        let gb = raw(&b);
        let al = SeedExtendAligner::default().align(&a, &b, &ga, &gb);
        assert!(al.is_empty());
        assert_eq!(al.conserved_edges, 0);
    }

    #[test]
    fn image_of_lookup() {
        let a = path(&[0, 1]);
        let b = path(&[0, 1]);
        let ga = raw(&a);
        let gb = raw(&b);
        let al = lenient().align(&a, &b, &ga, &gb);
        assert_eq!(al.image_of(NodeId(0)), Some(NodeId(0)));
        assert_eq!(al.image_of(NodeId(5)), None);
    }

    #[test]
    fn min_seed_score_filters_isolated_pairs() {
        // two isolated same-label nodes: zero conserved edges, filtered
        let mut a = Graph::new_undirected();
        a.add_node(NodeLabel(0));
        let mut b = Graph::new_undirected();
        b.add_node(NodeLabel(0));
        let ga = raw(&a);
        let gb = raw(&b);
        let al = SeedExtendAligner::default().align(&a, &b, &ga, &gb);
        assert!(al.is_empty());
    }
}
