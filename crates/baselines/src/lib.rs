//! Baselines TALE is evaluated against in the paper.
//!
//! * [`ullmann`] — Ullmann's exact subgraph-isomorphism algorithm
//!   (§II cites it as the classical state-space search). Used here both as
//!   a correctness oracle for TALE at `ρ = 0` and as the exact-matching
//!   reference point.
//! * [`ctree`] — a closure-tree (C-Tree, He & Singh, ICDE 2006): the
//!   R-tree-like graph index the paper compares against on ASTRAL
//!   (§VI-B.2, Fig. 5). Memory-resident, exactly the limitation the paper
//!   highlights.
//! * [`aligner`] — a Graemlin-like seed-and-extend pairwise network
//!   aligner standing in for Graemlin in the Table II comparison (the real
//!   Graemlin is a closed pipeline requiring phylogeny and trained
//!   scoring; see DESIGN.md §4 for the substitution argument).
//! * [`saga`] — a SAGA-like fragment index (the authors' earlier matcher;
//!   §II: efficient for small queries, expensive for large ones — the
//!   asymmetry the `saga_vs_tale` experiment reproduces).
//! * [`pathindex`] — a GraphGrep-style path index (§II's classical
//!   filter-and-verify exact containment pipeline).

pub mod aligner;
pub mod ctree;
pub mod pathindex;
pub mod saga;
pub mod ullmann;

pub use aligner::{Alignment, SeedExtendAligner};
pub use ctree::{CTree, CTreeConfig};
pub use pathindex::PathIndex;
pub use saga::{FragmentIndex, SagaMatch};
pub use ullmann::{count_embeddings, find_embedding};
