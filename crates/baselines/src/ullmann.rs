//! Ullmann's subgraph-isomorphism algorithm (J. ACM 1976).
//!
//! The classical exact matcher the paper's related work starts from
//! ("a state space search method with backtracking", §II). We use it as
//! the ground-truth oracle in tests — TALE at `ρ = 0` on a planted exact
//! subgraph must agree with Ullmann — and as a baseline for the exact-vs-
//! approximate benches.
//!
//! Implementation: candidate lists per query node (label equality + degree
//! feasibility), most-constrained-first ordering (prefer query nodes
//! adjacent to already-placed ones, then higher degree), and the standard
//! refinement that every placed neighbor must stay adjacent.

use tale_graph::{Graph, NodeId};

struct Search<'a> {
    query: &'a Graph,
    target: &'a Graph,
    order: Vec<NodeId>,
    candidates: Vec<Vec<NodeId>>,
    assignment: Vec<Option<NodeId>>,
    used: Vec<bool>,
    found: Vec<Vec<NodeId>>,
    limit: usize,
    node_budget: Option<u64>,
}

impl Search<'_> {
    fn run(&mut self, depth: usize) -> bool {
        // returns true when the search should stop (limit hit / budget out)
        if depth == self.order.len() {
            let emb: Vec<NodeId> = self
                .assignment
                .iter()
                .map(|a| a.expect("complete assignment"))
                .collect();
            self.found.push(emb);
            return self.found.len() >= self.limit;
        }
        if let Some(b) = self.node_budget.as_mut() {
            if *b == 0 {
                return true;
            }
            *b -= 1;
        }
        let q = self.order[depth];
        // iterate candidates; reuse the precomputed per-node list
        let cands = self.candidates[q.idx()].clone();
        for t in cands {
            if self.used[t.idx()] {
                continue;
            }
            if !self.feasible(q, t) {
                continue;
            }
            self.assignment[q.idx()] = Some(t);
            self.used[t.idx()] = true;
            if self.run(depth + 1) {
                return true;
            }
            self.assignment[q.idx()] = None;
            self.used[t.idx()] = false;
        }
        false
    }

    /// Every already-placed query neighbor of `q` must map to a target
    /// neighbor of `t` (and, for directed graphs, respect direction).
    fn feasible(&self, q: NodeId, t: NodeId) -> bool {
        for qn in self.query.neighbors(q) {
            if let Some(tn) = self.assignment[qn.idx()] {
                if !self.target.has_edge(t, tn) {
                    return false;
                }
            }
        }
        if self.query.is_directed() {
            for qn in self.query.in_neighbors(q) {
                if let Some(tn) = self.assignment[qn.idx()] {
                    if !self.target.has_edge(tn, t) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

fn build_search<'a>(
    query: &'a Graph,
    target: &'a Graph,
    q_label: &'a dyn Fn(NodeId) -> u32,
    t_label: &'a dyn Fn(NodeId) -> u32,
    limit: usize,
    node_budget: Option<u64>,
) -> Option<Search<'a>> {
    // Candidate sets: label equality, degree feasibility.
    let mut candidates: Vec<Vec<NodeId>> = Vec::with_capacity(query.node_count());
    for q in query.nodes() {
        let ql = q_label(q);
        let qd = query.degree(q);
        let c: Vec<NodeId> = target
            .nodes()
            .filter(|&t| t_label(t) == ql && target.degree(t) >= qd)
            .collect();
        if c.is_empty() {
            return None;
        }
        candidates.push(c);
    }
    // Most-constrained-first ordering: start from the node with the fewest
    // candidates, then grow through the query graph preferring placed
    // adjacency (keeps the refinement effective).
    let n = query.node_count();
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    if n > 0 {
        let first = query
            .nodes()
            .min_by_key(|q| {
                (
                    candidates[q.idx()].len(),
                    std::cmp::Reverse(query.degree(*q)),
                )
            })
            .expect("non-empty");
        order.push(first);
        placed[first.idx()] = true;
        while order.len() < n {
            let next = query
                .nodes()
                .filter(|q| !placed[q.idx()])
                .min_by_key(|q| {
                    let adj_placed = query.neighbors(*q).filter(|nb| placed[nb.idx()]).count();
                    (
                        std::cmp::Reverse(adj_placed),
                        candidates[q.idx()].len(),
                        q.0,
                    )
                })
                .expect("remaining node");
            order.push(next);
            placed[next.idx()] = true;
        }
    }
    Some(Search {
        query,
        target,
        order,
        candidates,
        assignment: vec![None; n],
        used: vec![false; target.node_count()],
        found: Vec::new(),
        limit,
        node_budget,
    })
}

/// Finds one exact subgraph embedding of `query` in `target`, if any.
/// Returns the target node for each query node (indexed by query id).
///
/// ```
/// use tale_baselines::ullmann::find_embedding;
/// use tale_graph::{Graph, NodeLabel, NodeId};
///
/// let mut host = Graph::new_undirected();
/// let a = host.add_node(NodeLabel(0));
/// let b = host.add_node(NodeLabel(1));
/// let c = host.add_node(NodeLabel(2));
/// host.add_edge(a, b).unwrap();
/// host.add_edge(b, c).unwrap();
///
/// let mut q = Graph::new_undirected();
/// let x = q.add_node(NodeLabel(1));
/// let y = q.add_node(NodeLabel(2));
/// q.add_edge(x, y).unwrap();
///
/// let ql = |n: NodeId| q.label(n).0;
/// let hl = |n: NodeId| host.label(n).0;
/// let emb = find_embedding(&q, &host, &ql, &hl).unwrap();
/// assert_eq!(emb, vec![b, c]);
/// ```
pub fn find_embedding(
    query: &Graph,
    target: &Graph,
    q_label: &dyn Fn(NodeId) -> u32,
    t_label: &dyn Fn(NodeId) -> u32,
) -> Option<Vec<NodeId>> {
    if query.node_count() == 0 {
        return Some(Vec::new());
    }
    let mut s = build_search(query, target, q_label, t_label, 1, None)?;
    s.run(0);
    s.found.into_iter().next()
}

/// Counts exact embeddings, stopping at `limit` (embeddings, not search
/// nodes). `node_budget` caps explored search-tree nodes to keep worst
/// cases bounded; `None` = unbounded.
pub fn count_embeddings(
    query: &Graph,
    target: &Graph,
    q_label: &dyn Fn(NodeId) -> u32,
    t_label: &dyn Fn(NodeId) -> u32,
    limit: usize,
    node_budget: Option<u64>,
) -> usize {
    if query.node_count() == 0 {
        return 1;
    }
    match build_search(query, target, q_label, t_label, limit, node_budget) {
        Some(mut s) => {
            s.run(0);
            s.found.len()
        }
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tale_graph::labels::NodeLabel;

    fn raw(g: &Graph) -> impl Fn(NodeId) -> u32 + '_ {
        move |n| g.label(n).0
    }

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn cycle(labels: &[u32]) -> Graph {
        let mut g = path(labels);
        g.add_edge(NodeId(0), NodeId(labels.len() as u32 - 1))
            .unwrap();
        g
    }

    #[test]
    fn finds_planted_subgraph() {
        let q = path(&[0, 1, 2]);
        let t = cycle(&[0, 1, 2, 3, 4, 5]);
        let ql = raw(&q);
        let tl = raw(&t);
        let emb = find_embedding(&q, &t, &ql, &tl).unwrap();
        // verify it is a genuine embedding
        for (u, v, _) in q.edges() {
            assert!(t.has_edge(emb[u.idx()], emb[v.idx()]));
        }
        for (i, e) in emb.iter().enumerate() {
            assert_eq!(t.label(*e).0, q.label(NodeId(i as u32)).0);
        }
    }

    #[test]
    fn rejects_absent_subgraph() {
        let q = cycle(&[0, 0, 0]); // triangle
        let t = path(&[0, 0, 0, 0]); // no triangle
        let ql = raw(&q);
        let tl = raw(&t);
        assert!(find_embedding(&q, &t, &ql, &tl).is_none());
    }

    #[test]
    fn label_constraint_matters() {
        let q = path(&[7, 8]);
        let t = path(&[7, 9]);
        let ql = raw(&q);
        let tl = raw(&t);
        assert!(find_embedding(&q, &t, &ql, &tl).is_none());
    }

    #[test]
    fn counts_automorphisms_of_triangle() {
        let q = cycle(&[0, 0, 0]);
        let t = cycle(&[0, 0, 0]);
        let ql = raw(&q);
        let tl = raw(&t);
        // 3! = 6 embeddings of a triangle onto itself
        assert_eq!(count_embeddings(&q, &t, &ql, &tl, 100, None), 6);
    }

    #[test]
    fn count_respects_limit() {
        let q = path(&[0, 0]);
        let t = cycle(&[0, 0, 0, 0]); // many embeddings
        let ql = raw(&q);
        let tl = raw(&t);
        assert_eq!(count_embeddings(&q, &t, &ql, &tl, 3, None), 3);
    }

    #[test]
    fn node_budget_bounds_search() {
        let q = path(&[0; 8]);
        let t = cycle(&[0; 30]);
        let ql = raw(&q);
        let tl = raw(&t);
        // tiny budget: may find nothing, must not hang or overcount
        let n = count_embeddings(&q, &t, &ql, &tl, usize::MAX, Some(5));
        assert!(n <= 5);
    }

    #[test]
    fn empty_query_trivially_embeds() {
        let q = Graph::new_undirected();
        let t = path(&[0]);
        let ql = raw(&q);
        let tl = raw(&t);
        assert_eq!(find_embedding(&q, &t, &ql, &tl), Some(vec![]));
        assert_eq!(count_embeddings(&q, &t, &ql, &tl, 10, None), 1);
    }

    #[test]
    fn directed_edges_respected() {
        let mut q = Graph::new_directed();
        let a = q.add_node(NodeLabel(0));
        let b = q.add_node(NodeLabel(0));
        q.add_edge(a, b).unwrap();
        let mut t = Graph::new_directed();
        let x = t.add_node(NodeLabel(0));
        let y = t.add_node(NodeLabel(0));
        t.add_edge(y, x).unwrap(); // reversed
        let ql = raw(&q);
        let tl = raw(&t);
        let emb = find_embedding(&q, &t, &ql, &tl).unwrap();
        // only valid embedding maps a→y, b→x
        assert_eq!(emb, vec![y, x]);
        // triangle direction check: directed 3-cycle does not embed in
        // a directed path
        let mut q2 = Graph::new_directed();
        let n: Vec<_> = (0..3).map(|_| q2.add_node(NodeLabel(0))).collect();
        q2.add_edge(n[0], n[1]).unwrap();
        q2.add_edge(n[1], n[2]).unwrap();
        q2.add_edge(n[2], n[0]).unwrap();
        let mut t2 = Graph::new_directed();
        let m: Vec<_> = (0..3).map(|_| t2.add_node(NodeLabel(0))).collect();
        t2.add_edge(m[0], m[1]).unwrap();
        t2.add_edge(m[1], m[2]).unwrap();
        t2.add_edge(m[0], m[2]).unwrap(); // not a cycle
        let q2l = raw(&q2);
        let t2l = raw(&t2);
        assert!(find_embedding(&q2, &t2, &q2l, &t2l).is_none());
    }

    #[test]
    fn bigger_random_instance_agrees_with_self_embedding() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = tale_graph::generate::gnm(&mut rng, 25, 40, 5);
        let gl = raw(&g);
        // a graph always embeds into itself
        let emb = find_embedding(&g, &g, &gl, &gl).unwrap();
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(emb[u.idx()], emb[v.idx()]));
        }
    }
}
