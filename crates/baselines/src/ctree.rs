//! C-Tree (closure-tree) — He & Singh, ICDE 2006.
//!
//! The R-tree-like graph index the paper compares TALE against on the
//! ASTRAL experiment (§VI-B.2, Fig. 5). Each tree node summarizes its
//! subtree with a *closure* — an upper-bounding union of the member
//! graphs; queries descend best-first, pruning subtrees whose closure
//! cannot beat the current k-th best similarity, and score leaf graphs
//! exactly with a neighbor-biased greedy mapping.
//!
//! Faithful simplifications (documented in DESIGN.md):
//! * the closure keeps label-count, degree and size upper bounds rather
//!   than the full vertex-aligned union — the same pruning logic with a
//!   cheaper (still admissible) bound;
//! * leaf scoring uses the neighbor-biased mapping of the original paper
//!   in its greedy form.
//!
//! Like the authors' implementation, the tree is **memory-resident** —
//! exactly the limitation §VI-B.2 contrasts with the disk-based NH-Index
//! ("as the database size increases, the index will soon grow out of
//! memory"). It also does not support node mismatches (§VI-B.1 disqualifies
//! it from the PIN comparison for that reason): labels are compared raw.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use tale_graph::{Graph, NodeId};

/// Tree shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct CTreeConfig {
    /// Maximum children per node before a split (`M`).
    pub max_children: usize,
}

impl Default for CTreeConfig {
    fn default() -> Self {
        CTreeConfig { max_children: 8 }
    }
}

/// Closure summary of a set of graphs: admissible upper bounds for
/// similarity estimation.
#[derive(Debug, Clone, Default)]
struct Closure {
    /// per-label max node count over members
    label_counts: HashMap<u32, u32>,
    /// max edge count
    max_edges: u32,
    /// min (nodes + edges) over members — lower-bounds the target size in
    /// the similarity denominator
    min_size: u32,
}

impl Closure {
    fn of_graph(g: &Graph) -> Closure {
        let mut label_counts: HashMap<u32, u32> = HashMap::new();
        for n in g.nodes() {
            *label_counts.entry(g.label(n).0).or_insert(0) += 1;
        }
        Closure {
            label_counts,
            max_edges: g.edge_count() as u32,
            min_size: (g.node_count() + g.edge_count()) as u32,
        }
    }

    fn merge(&mut self, other: &Closure) {
        for (&l, &c) in &other.label_counts {
            let e = self.label_counts.entry(l).or_insert(0);
            *e = (*e).max(c);
        }
        self.max_edges = self.max_edges.max(other.max_edges);
        self.min_size = self.min_size.min(other.min_size);
    }

    /// Growth in total label-count mass if `other` were merged — the
    /// "least enlargement" insertion heuristic.
    fn enlargement(&self, other: &Closure) -> u64 {
        let mut grow = 0u64;
        for (&l, &c) in &other.label_counts {
            let cur = self.label_counts.get(&l).copied().unwrap_or(0);
            if c > cur {
                grow += (c - cur) as u64;
            }
        }
        grow
    }

    /// Admissible upper bound on the C-Tree similarity of `query` to any
    /// member: `2·(ubN + ubE) / (q_size + min member size)`.
    fn sim_upper_bound(&self, q_hist: &HashMap<u32, u32>, q_edges: u32, q_size: u32) -> f64 {
        let ub_nodes: u32 = q_hist
            .iter()
            .map(|(l, &c)| c.min(self.label_counts.get(l).copied().unwrap_or(0)))
            .sum();
        let ub_edges = q_edges.min(self.max_edges);
        let denom = (q_size + self.min_size) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        2.0 * (ub_nodes + ub_edges) as f64 / denom
    }
}

enum CNode {
    Leaf {
        entries: Vec<usize>,
        closure: Closure,
    },
    Internal {
        children: Vec<usize>,
        closure: Closure,
    },
}

impl CNode {
    fn closure(&self) -> &Closure {
        match self {
            CNode::Leaf { closure, .. } | CNode::Internal { closure, .. } => closure,
        }
    }
}

/// The closure-tree.
pub struct CTree {
    config: CTreeConfig,
    nodes: Vec<CNode>,
    root: usize,
    graphs: Vec<Graph>,
    graph_closures: Vec<Closure>,
}

#[derive(PartialEq)]
struct Frontier {
    bound: f64,
    node: usize,
}
impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl CTree {
    /// An empty tree.
    pub fn new(config: CTreeConfig) -> Self {
        let root = CNode::Leaf {
            entries: Vec::new(),
            closure: Closure::default(),
        };
        CTree {
            config,
            nodes: vec![root],
            root: 0,
            graphs: Vec::new(),
            graph_closures: Vec::new(),
        }
    }

    /// Builds a tree by inserting every graph.
    pub fn build(config: CTreeConfig, graphs: impl IntoIterator<Item = Graph>) -> Self {
        let mut t = CTree::new(config);
        for g in graphs {
            t.insert(g);
        }
        t
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The indexed graph for an id returned by [`CTree::knn`].
    pub fn graph(&self, idx: usize) -> &Graph {
        &self.graphs[idx]
    }

    /// Rough in-memory footprint in bytes (the paper's point: this grows
    /// with the database and cannot spill to disk).
    pub fn approx_memory_bytes(&self) -> usize {
        let closures: usize = self
            .graph_closures
            .iter()
            .chain(self.nodes.iter().map(|n| n.closure()))
            .map(|c| 16 + c.label_counts.len() * 16)
            .sum();
        let graphs: usize = self
            .graphs
            .iter()
            .map(|g| g.node_count() * 8 + g.edge_count() * 24)
            .sum();
        closures + graphs
    }

    /// Inserts a graph, returning its id.
    pub fn insert(&mut self, g: Graph) -> usize {
        let gid = self.graphs.len();
        let gc = Closure::of_graph(&g);
        self.graphs.push(g);
        self.graph_closures.push(gc.clone());

        // descend to the leaf with least enlargement
        let mut path = vec![self.root];
        loop {
            let cur = *path.last().expect("non-empty path");
            match &self.nodes[cur] {
                CNode::Leaf { .. } => break,
                CNode::Internal { children, .. } => {
                    let best = children
                        .iter()
                        .copied()
                        .min_by_key(|&c| self.nodes[c].closure().enlargement(&gc))
                        .expect("internal node has children");
                    path.push(best);
                }
            }
        }
        let leaf = *path.last().expect("path has leaf");
        if let CNode::Leaf { entries, closure } = &mut self.nodes[leaf] {
            entries.push(gid);
            closure.merge(&gc);
        }
        // update closures along the path
        for &nid in path.iter().rev().skip(1) {
            match &mut self.nodes[nid] {
                CNode::Internal { closure, .. } | CNode::Leaf { closure, .. } => closure.merge(&gc),
            }
        }
        self.split_if_needed(&path);
        gid
    }

    fn split_if_needed(&mut self, path: &[usize]) {
        let mut child_split: Option<(usize, usize, usize)> = None; // (old, new, parent_path_pos)
        for (pos, &nid) in path.iter().enumerate().rev() {
            // apply a pending split from the child level
            if let Some((_, new_child, _)) = child_split.take() {
                if let CNode::Internal { children, .. } = &mut self.nodes[nid] {
                    children.push(new_child);
                }
            }
            let over = match &self.nodes[nid] {
                CNode::Leaf { entries, .. } => entries.len() > self.config.max_children,
                CNode::Internal { children, .. } => children.len() > self.config.max_children,
            };
            if !over {
                break;
            }
            let new_node = self.split_node(nid);
            if pos == 0 {
                // splitting the root: grow a new root
                let closure = {
                    let mut c = self.nodes[nid].closure().clone();
                    c.merge(self.nodes[new_node].closure());
                    c
                };
                let new_root = self.nodes.len();
                self.nodes.push(CNode::Internal {
                    children: vec![nid, new_node],
                    closure,
                });
                self.root = new_root;
                return;
            }
            child_split = Some((nid, new_node, pos - 1));
        }
        if let Some((_, new_child, parent_pos)) = child_split {
            let parent = path[parent_pos];
            if let CNode::Internal { children, .. } = &mut self.nodes[parent] {
                children.push(new_child);
            }
            // parent may now be over; recurse up from there
            let prefix: Vec<usize> = path[..=parent_pos].to_vec();
            self.split_if_needed(&prefix);
        }
    }

    /// Splits an overfull node, returning the new sibling's id. Quadratic
    /// seed picking (most mutually enlarging pair), greedy distribution.
    fn split_node(&mut self, nid: usize) -> usize {
        enum Item {
            Graph(usize),
            Node(usize),
        }
        let items: Vec<Item> = match &self.nodes[nid] {
            CNode::Leaf { entries, .. } => entries.iter().map(|&g| Item::Graph(g)).collect(),
            CNode::Internal { children, .. } => children.iter().map(|&c| Item::Node(c)).collect(),
        };
        let closure_of = |s: &Self, it: &Item| -> Closure {
            match it {
                Item::Graph(g) => s.graph_closures[*g].clone(),
                Item::Node(n) => s.nodes[*n].closure().clone(),
            }
        };
        // pick the two items whose mutual enlargement is largest
        let (mut s1, mut s2, mut worst) = (0usize, 1usize, 0u64);
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                let ci = closure_of(self, &items[i]);
                let cj = closure_of(self, &items[j]);
                let d = ci.enlargement(&cj) + cj.enlargement(&ci);
                if d >= worst {
                    worst = d;
                    s1 = i;
                    s2 = j;
                }
            }
        }
        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        let mut cl = closure_of(self, &items[s1]);
        let mut cr = closure_of(self, &items[s2]);
        for (i, it) in items.iter().enumerate() {
            let c = closure_of(self, it);
            let idx = match it {
                Item::Graph(g) => *g,
                Item::Node(n) => *n,
            };
            if i == s1 {
                left.push(idx);
                continue;
            }
            if i == s2 {
                right.push(idx);
                continue;
            }
            // keep groups balanced-ish, else least enlargement
            if left.len() * 2 > items.len() {
                cr.merge(&c);
                right.push(idx);
            } else if right.len() * 2 > items.len() || cl.enlargement(&c) <= cr.enlargement(&c) {
                cl.merge(&c);
                left.push(idx);
            } else {
                cr.merge(&c);
                right.push(idx);
            }
        }
        let is_leaf = matches!(self.nodes[nid], CNode::Leaf { .. });
        let new_id = self.nodes.len();
        if is_leaf {
            self.nodes[nid] = CNode::Leaf {
                entries: left,
                closure: cl,
            };
            self.nodes.push(CNode::Leaf {
                entries: right,
                closure: cr,
            });
        } else {
            self.nodes[nid] = CNode::Internal {
                children: left,
                closure: cl,
            };
            self.nodes.push(CNode::Internal {
                children: right,
                closure: cr,
            });
        }
        new_id
    }

    /// k-nearest-neighbor search: the `k` most similar graphs to `query`
    /// under the C-Tree similarity, best-first with closure-bound pruning.
    /// Returns `(graph id, similarity)` sorted descending.
    pub fn knn(&self, query: &Graph, k: usize) -> Vec<(usize, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut q_hist: HashMap<u32, u32> = HashMap::new();
        for n in query.nodes() {
            *q_hist.entry(query.label(n).0).or_insert(0) += 1;
        }
        let q_edges = query.edge_count() as u32;
        let q_size = (query.node_count() + query.edge_count()) as u32;

        let mut heap = BinaryHeap::new();
        heap.push(Frontier {
            bound: f64::INFINITY,
            node: self.root,
        });
        // results: min at front via sorted Vec (k is small)
        let mut best: Vec<(usize, f64)> = Vec::new();
        let kth = |best: &Vec<(usize, f64)>| -> f64 {
            if best.len() < k {
                f64::NEG_INFINITY
            } else {
                best.last().expect("k > 0").1
            }
        };
        while let Some(Frontier { bound, node }) = heap.pop() {
            if bound <= kth(&best) {
                break; // nothing left can improve the top-k
            }
            match &self.nodes[node] {
                CNode::Internal { children, .. } => {
                    for &c in children {
                        let b = self.nodes[c]
                            .closure()
                            .sim_upper_bound(&q_hist, q_edges, q_size);
                        if b > kth(&best) {
                            heap.push(Frontier { bound: b, node: c });
                        }
                    }
                }
                CNode::Leaf { entries, .. } => {
                    for &g in entries {
                        let gb = self.graph_closures[g].sim_upper_bound(&q_hist, q_edges, q_size);
                        if gb <= kth(&best) {
                            continue;
                        }
                        let sim = self.score(query, &self.graphs[g]);
                        if best.len() < k || sim > kth(&best) {
                            best.push((g, sim));
                            best.sort_by(|a, b| {
                                b.1.partial_cmp(&a.1)
                                    .unwrap_or(Ordering::Equal)
                                    .then(a.0.cmp(&b.0))
                            });
                            best.truncate(k);
                        }
                    }
                }
            }
        }
        best
    }

    /// Exact (well, greedy neighbor-biased) similarity between the query
    /// and one database graph, in the C-Tree similarity scale.
    pub fn score(&self, query: &Graph, target: &Graph) -> f64 {
        let (mn, me) = nbm_match(query, target);
        let denom =
            (query.node_count() + query.edge_count() + target.node_count() + target.edge_count())
                as f64;
        if denom == 0.0 {
            return 0.0;
        }
        2.0 * (mn + me) as f64 / denom
    }
}

/// Neighbor-biased greedy mapping: seeds the best label-equal pair, then
/// repeatedly extends matched pairs through their neighborhoods, reseeding
/// for disconnected remainders. Returns `(matched nodes, matched edges)`.
pub fn nbm_match(query: &Graph, target: &Graph) -> (usize, usize) {
    let mut q_used = vec![false; query.node_count()];
    let mut t_used = vec![false; target.node_count()];
    let mut map: Vec<Option<NodeId>> = vec![None; query.node_count()];
    // target nodes grouped by label for seeding
    let mut by_label: HashMap<u32, Vec<NodeId>> = HashMap::new();
    for t in target.nodes() {
        by_label.entry(target.label(t).0).or_default().push(t);
    }
    // seed order: query nodes by degree descending
    let mut seeds: Vec<NodeId> = query.nodes().collect();
    seeds.sort_by_key(|q| std::cmp::Reverse(query.degree(*q)));

    let mut frontier: Vec<(NodeId, NodeId)> = Vec::new();
    let mut matched = 0usize;
    let pair = |q: NodeId,
                t: NodeId,
                q_used: &mut Vec<bool>,
                t_used: &mut Vec<bool>,
                map: &mut Vec<Option<NodeId>>,
                frontier: &mut Vec<(NodeId, NodeId)>,
                matched: &mut usize| {
        q_used[q.idx()] = true;
        t_used[t.idx()] = true;
        map[q.idx()] = Some(t);
        frontier.push((q, t));
        *matched += 1;
    };

    for &seed_q in &seeds {
        if q_used[seed_q.idx()] {
            continue;
        }
        // best unused target with same label, degree-closest from above
        let cand = by_label
            .get(&query.label(seed_q).0)
            .into_iter()
            .flatten()
            .filter(|t| !t_used[t.idx()])
            .max_by_key(|t| {
                let qd = query.degree(seed_q);
                let td = target.degree(**t);
                (td.min(qd), std::cmp::Reverse(td.abs_diff(qd)))
            })
            .copied();
        let Some(seed_t) = cand else { continue };
        pair(
            seed_q,
            seed_t,
            &mut q_used,
            &mut t_used,
            &mut map,
            &mut frontier,
            &mut matched,
        );
        // BFS extension
        while let Some((q, t)) = frontier.pop() {
            for qn in query.neighbors(q) {
                if q_used[qn.idx()] {
                    continue;
                }
                let ql = query.label(qn).0;
                let best = target
                    .neighbors(t)
                    .filter(|tn| !t_used[tn.idx()] && target.label(*tn).0 == ql)
                    .max_by_key(|tn| {
                        let qd = query.degree(qn);
                        let td = target.degree(*tn);
                        (td.min(qd), std::cmp::Reverse(td.abs_diff(qd)))
                    });
                if let Some(tn) = best {
                    pair(
                        qn,
                        tn,
                        &mut q_used,
                        &mut t_used,
                        &mut map,
                        &mut frontier,
                        &mut matched,
                    );
                }
            }
        }
    }
    // matched edges under the mapping
    let me = query
        .edges()
        .filter(|&(u, v, _)| {
            matches!(
                (map[u.idx()], map[v.idx()]),
                (Some(mu), Some(mv)) if target.has_edge(mu, mv)
            )
        })
        .count();
    (matched, me)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new_undirected();
        let ids: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn nbm_identical_graphs_full_score() {
        let g = path(&[0, 1, 2, 3]);
        let (mn, me) = nbm_match(&g, &g);
        assert_eq!((mn, me), (4, 3));
    }

    #[test]
    fn nbm_disjoint_labels_zero() {
        let a = path(&[0, 1]);
        let b = path(&[5, 6]);
        assert_eq!(nbm_match(&a, &b), (0, 0));
    }

    #[test]
    fn insert_and_knn_self_retrieval() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let graphs: Vec<Graph> = (0..30).map(|_| gnm(&mut rng, 20, 35, 6)).collect();
        let tree = CTree::build(CTreeConfig::default(), graphs.clone());
        assert_eq!(tree.len(), 30);
        for (i, g) in graphs.iter().enumerate().step_by(7) {
            let res = tree.knn(g, 3);
            assert!(!res.is_empty());
            assert_eq!(res[0].0, i, "self should be the 1-NN");
            // greedy NBM on repeated labels may not find the identity
            // mapping, but the self-match should still score highly
            assert!(res[0].1 > 0.7, "self sim too low: {}", res[0].1);
        }
    }

    #[test]
    fn knn_prefers_mutated_sibling() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let base = gnm(&mut rng, 40, 80, 5);
        let (sibling, _) = mutate(&mut rng, &base, &MutationRates::mild(), 5);
        let mut graphs = vec![sibling];
        for _ in 0..20 {
            graphs.push(gnm(&mut rng, 40, 80, 5));
        }
        let tree = CTree::build(CTreeConfig::default(), graphs);
        let res = tree.knn(&base, 1);
        assert_eq!(res[0].0, 0, "mutated sibling should win");
    }

    #[test]
    fn split_preserves_membership() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        // many graphs force multiple splits with max_children = 3
        let graphs: Vec<Graph> = (0..50).map(|_| gnm(&mut rng, 10, 15, 4)).collect();
        let tree = CTree::build(CTreeConfig { max_children: 3 }, graphs.clone());
        assert_eq!(tree.len(), 50);
        // every graph still retrievable as its own 1-NN
        for (i, g) in graphs.iter().enumerate().step_by(11) {
            let res = tree.knn(g, 1);
            assert_eq!(res[0].0, i, "graph {i} lost: {res:?}");
        }
    }

    #[test]
    fn knn_k_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let graphs: Vec<Graph> = (0..5).map(|_| gnm(&mut rng, 8, 10, 3)).collect();
        let tree = CTree::build(CTreeConfig::default(), graphs.clone());
        assert!(tree.knn(&graphs[0], 0).is_empty());
        let all = tree.knn(&graphs[0], 100);
        assert_eq!(all.len(), 5);
        // sorted descending
        assert!(all.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn empty_tree() {
        let tree = CTree::new(CTreeConfig::default());
        assert!(tree.is_empty());
        assert!(tree.knn(&path(&[0]), 3).is_empty());
    }

    #[test]
    fn memory_grows_with_db() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let small = CTree::build(
            CTreeConfig::default(),
            (0..5).map(|_| gnm(&mut rng, 20, 30, 4)).collect::<Vec<_>>(),
        );
        let big = CTree::build(
            CTreeConfig::default(),
            (0..50)
                .map(|_| gnm(&mut rng, 20, 30, 4))
                .collect::<Vec<_>>(),
        );
        assert!(big.approx_memory_bytes() > 5 * small.approx_memory_bytes());
    }
}
