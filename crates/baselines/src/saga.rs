//! A SAGA-like fragment-index matcher (Tian et al., Bioinformatics 2007).
//!
//! SAGA is the authors' earlier approximate matcher, discussed in §II:
//! "while SAGA is very efficient for small graph queries, it is
//! computationally expensive when applied to large graphs" — the extended
//! paper compares TALE against it. This module implements SAGA's design
//! skeleton so that claim can be reproduced:
//!
//! * **Index**: every *fragment* — a set of `FRAGMENT_SIZE` (=3) nodes of
//!   a database graph, pairwise within distance `MAX_DIST` (=2) — is
//!   indexed under its sorted label triple plus a quantized distance
//!   signature.
//! * **Query**: the query's own fragments probe the index; per database
//!   graph, compatible fragment hits are *assembled* greedily into larger
//!   injective matches.
//!
//! The fragment count grows roughly as `n · d²` (nodes × 2-hop-pairs), so
//! enumeration is cheap for SAGA's intended "small queries" and explodes
//! for TALE's large ones — exactly the asymmetry the papers describe. The
//! `saga_vs_tale` experiment regenerates that curve.

use std::collections::HashMap;
use tale_graph::{Graph, NodeId};

/// Nodes per fragment (SAGA uses small fragments; 3 is its default spirit).
pub const FRAGMENT_SIZE: usize = 3;
/// Maximum pairwise BFS distance within a fragment.
pub const MAX_DIST: u32 = 2;

/// A fragment key: sorted labels + sorted quantized pairwise distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FragKey {
    labels: [u32; FRAGMENT_SIZE],
    dists: [u8; FRAGMENT_SIZE],
}

/// One indexed fragment occurrence.
#[derive(Debug, Clone, Copy)]
struct FragOcc {
    graph: u32,
    nodes: [NodeId; FRAGMENT_SIZE],
}

/// The in-memory fragment index over a set of graphs.
pub struct FragmentIndex {
    map: HashMap<FragKey, Vec<FragOcc>>,
    graphs: Vec<Graph>,
    fragments: usize,
}

/// Enumerates the fragments of `g` as `(key, nodes)` pairs.
fn fragments_of(g: &Graph, label_of: &dyn Fn(NodeId) -> u32) -> Vec<(FragKey, [NodeId; 3])> {
    let mut out = Vec::new();
    let n = g.node_count();
    // distance-≤2 neighborhoods via 1- and 2-hop sets
    for a in g.nodes() {
        // candidate partners: nodes within MAX_DIST of a, with id > a to
        // avoid permutations
        let mut near: Vec<(NodeId, u8)> = Vec::new();
        for b in g.neighbors(a) {
            if b > a {
                near.push((b, 1));
            }
        }
        for b in g.two_hop_neighbors(a) {
            if b > a {
                near.push((b, 2));
            }
        }
        near.sort_unstable_by_key(|&(n, _)| n);
        for i in 0..near.len() {
            for j in (i + 1)..near.len() {
                let (b, dab) = near[i];
                let (c, dac) = near[j];
                // distance b–c must also be ≤ MAX_DIST
                let dbc = if g.has_edge(b, c) {
                    1u8
                } else if g.neighbors(b).any(|x| g.has_edge(x, c)) {
                    2u8
                } else {
                    continue;
                };
                let mut triple = [(label_of(a), a), (label_of(b), b), (label_of(c), c)];
                triple.sort_unstable();
                let labels = [triple[0].0, triple[1].0, triple[2].0];
                let mut dists = [dab, dac, dbc];
                dists.sort_unstable();
                out.push((
                    FragKey { labels, dists },
                    [triple[0].1, triple[1].1, triple[2].1],
                ));
            }
        }
    }
    let _ = n;
    out
}

impl FragmentIndex {
    /// Indexes a set of graphs (raw labels).
    pub fn build(graphs: Vec<Graph>) -> FragmentIndex {
        let mut map: HashMap<FragKey, Vec<FragOcc>> = HashMap::new();
        let mut fragments = 0;
        for (gi, g) in graphs.iter().enumerate() {
            let label_of = |n: NodeId| g.label(n).0;
            for (key, nodes) in fragments_of(g, &label_of) {
                fragments += 1;
                map.entry(key).or_default().push(FragOcc {
                    graph: gi as u32,
                    nodes,
                });
            }
        }
        FragmentIndex {
            map,
            graphs,
            fragments,
        }
    }

    /// Total fragments indexed.
    pub fn fragment_count(&self) -> usize {
        self.fragments
    }

    /// Number of indexed graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when no graphs are indexed.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Approximate in-memory footprint (SAGA's index is much larger than
    /// the NH-Index for the same data — fragment counts are superlinear).
    pub fn approx_memory_bytes(&self) -> usize {
        self.map.len() * 32 + self.fragments * std::mem::size_of::<FragOcc>()
    }

    /// Queries the index: enumerate query fragments, probe, assemble per
    /// graph. Returns `(graph index, matched node pairs)` ranked by match
    /// size, at most `top_k` entries.
    pub fn query(&self, query: &Graph, top_k: usize) -> Vec<SagaMatch> {
        let label_of = |n: NodeId| query.label(n).0;
        let q_frags = fragments_of(query, &label_of);

        // collect fragment-level hits per database graph
        struct Hit {
            q_nodes: [NodeId; 3],
            t_nodes: [NodeId; 3],
        }
        let mut per_graph: HashMap<u32, Vec<Hit>> = HashMap::new();
        for (key, q_nodes) in &q_frags {
            if let Some(occs) = self.map.get(key) {
                for occ in occs {
                    per_graph.entry(occ.graph).or_default().push(Hit {
                        q_nodes: *q_nodes,
                        t_nodes: occ.nodes,
                    });
                }
            }
        }

        // assemble greedily per graph: accept fragment hits whose mapping
        // is consistent (injective both ways) with what's already merged
        let mut results: Vec<SagaMatch> = Vec::new();
        let mut gids: Vec<u32> = per_graph.keys().copied().collect();
        gids.sort_unstable();
        for gid in gids {
            let hits = &per_graph[&gid];
            let target = &self.graphs[gid as usize];
            let mut q_map: HashMap<NodeId, NodeId> = HashMap::new();
            let mut t_used: HashMap<NodeId, NodeId> = HashMap::new();
            for h in hits {
                // labels within the fragment are sorted, so same-label
                // nodes align positionally — check mapping consistency
                let mut ok = true;
                for i in 0..FRAGMENT_SIZE {
                    let (q, t) = (h.q_nodes[i], h.t_nodes[i]);
                    if query.label(q) != target.label(t) {
                        ok = false;
                        break;
                    }
                    match (q_map.get(&q), t_used.get(&t)) {
                        (Some(&mt), _) if mt != t => ok = false,
                        (_, Some(&mq)) if mq != q => ok = false,
                        _ => {}
                    }
                    if !ok {
                        break;
                    }
                }
                if ok {
                    for i in 0..FRAGMENT_SIZE {
                        q_map.insert(h.q_nodes[i], h.t_nodes[i]);
                        t_used.insert(h.t_nodes[i], h.q_nodes[i]);
                    }
                }
            }
            if q_map.is_empty() {
                continue;
            }
            let mut pairs: Vec<(NodeId, NodeId)> = q_map.into_iter().collect();
            pairs.sort_unstable();
            let matched_edges = query
                .edges()
                .filter(|&(u, v, _)| {
                    let fu = pairs.binary_search_by_key(&u, |p| p.0).ok();
                    let fv = pairs.binary_search_by_key(&v, |p| p.0).ok();
                    matches!((fu, fv), (Some(a), Some(b)) if target.has_edge(pairs[a].1, pairs[b].1))
                })
                .count();
            results.push(SagaMatch {
                graph: gid as usize,
                matched_nodes: pairs.len(),
                matched_edges,
                pairs,
            });
        }
        results.sort_by(|a, b| {
            (b.matched_nodes + b.matched_edges)
                .cmp(&(a.matched_nodes + a.matched_edges))
                .then(a.graph.cmp(&b.graph))
        });
        results.truncate(top_k);
        results
    }
}

/// Number of fragments a graph contributes — SAGA's workload driver,
/// exposed for the `saga_vs_tale` experiment.
pub fn fragment_count_of(g: &Graph, label_of: &dyn Fn(NodeId) -> u32) -> usize {
    fragments_of(g, label_of).len()
}

/// One assembled SAGA match.
#[derive(Debug, Clone)]
pub struct SagaMatch {
    /// Index of the matched graph (position in the build list).
    pub graph: usize,
    /// Matched node count.
    pub matched_nodes: usize,
    /// Preserved query edges.
    pub matched_edges: usize,
    /// The mapping, sorted by query node.
    pub pairs: Vec<(NodeId, NodeId)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tale_graph::generate::{gnm, mutate, MutationRates};
    use tale_graph::labels::NodeLabel;

    fn triangle_tail() -> Graph {
        let mut g = Graph::new_undirected();
        let a = g.add_node(NodeLabel(0));
        let b = g.add_node(NodeLabel(1));
        let c = g.add_node(NodeLabel(2));
        let d = g.add_node(NodeLabel(3));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(c, d).unwrap();
        g
    }

    #[test]
    fn fragment_enumeration_counts() {
        let g = triangle_tail();
        let label_of = |n: NodeId| g.label(n).0;
        let frags = fragments_of(&g, &label_of);
        // triangle {a,b,c} + {a,c,d} + {b,c,d} + {a,b,d}(a-d dist2 via c,
        // b-d dist 2) = 4 triples, all within distance 2
        assert_eq!(frags.len(), 4, "{frags:?}");
    }

    #[test]
    fn self_query_recovers_graph() {
        let g = triangle_tail();
        let idx = FragmentIndex::build(vec![g.clone()]);
        assert!(idx.fragment_count() > 0);
        let res = idx.query(&g, 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].matched_nodes, 4);
        assert_eq!(res[0].matched_edges, 4);
    }

    #[test]
    fn ranks_true_host_over_decoys() {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let base = gnm(&mut rng, 30, 60, 5);
        let (noisy, _) = mutate(&mut rng, &base, &MutationRates::mild(), 5);
        let mut graphs = vec![noisy];
        for _ in 0..8 {
            graphs.push(gnm(&mut rng, 30, 60, 5));
        }
        let idx = FragmentIndex::build(graphs);
        let res = idx.query(&base, 3);
        assert!(!res.is_empty());
        assert_eq!(res[0].graph, 0, "mutated sibling should rank first");
    }

    #[test]
    fn mapping_is_injective_and_label_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(62);
        let graphs: Vec<Graph> = (0..4).map(|_| gnm(&mut rng, 25, 50, 3)).collect();
        let q = gnm(&mut rng, 20, 40, 3);
        let idx = FragmentIndex::build(graphs.clone());
        for m in idx.query(&q, 10) {
            let target = &graphs[m.graph];
            let mut qs = std::collections::HashSet::new();
            let mut ts = std::collections::HashSet::new();
            for (a, b) in &m.pairs {
                assert!(qs.insert(*a));
                assert!(ts.insert(*b));
                assert_eq!(q.label(*a), target.label(*b));
            }
        }
    }

    #[test]
    fn fragment_count_grows_superlinearly_with_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(63);
        let sparse = gnm(&mut rng, 100, 120, 4);
        let dense = gnm(&mut rng, 100, 360, 4);
        let fi_sparse = FragmentIndex::build(vec![sparse]);
        let fi_dense = FragmentIndex::build(vec![dense]);
        // 3× the edges → far more than 3× the fragments
        assert!(
            fi_dense.fragment_count() > 4 * fi_sparse.fragment_count(),
            "{} vs {}",
            fi_dense.fragment_count(),
            fi_sparse.fragment_count()
        );
    }

    #[test]
    fn empty_cases() {
        let idx = FragmentIndex::build(Vec::new());
        assert!(idx.is_empty());
        let q = triangle_tail();
        assert!(idx.query(&q, 5).is_empty());
        // graph too small for any fragment
        let mut tiny = Graph::new_undirected();
        tiny.add_node(NodeLabel(0));
        let idx = FragmentIndex::build(vec![tiny]);
        assert_eq!(idx.fragment_count(), 0);
    }
}
