//! Minimal in-tree `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the JSON-direct serde facade in `vendor/serde`. Implemented directly on
//! `proc_macro::TokenTree` (no syn/quote, which are unavailable offline).
//!
//! Supported shapes — exactly what this workspace derives on:
//! * named-field structs (with `#[serde(skip)]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]`);
//! * single-field tuple structs (transparent, like real serde newtypes);
//! * enums of unit variants and newtype variants (externally tagged).
//!
//! Anything else (generics, struct variants, multi-field tuple structs)
//! produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    expand(item, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    expand(item, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` = `#[serde(default)]`, `Some(Some(path))` = with path.
    default: Option<Option<String>>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

struct Variant {
    name: String,
    newtype: bool,
}

enum Shape {
    Named(Vec<Field>),
    Newtype,
    Unit,
    Enum(Vec<Variant>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("error tokens")
}

fn expand(item: TokenStream, mode: Mode) -> TokenStream {
    let (name, shape) = match parse_input(item) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    let body = match (&shape, mode) {
        (Shape::Named(fields), Mode::Serialize) => gen_named_ser(&name, fields),
        (Shape::Named(fields), Mode::Deserialize) => gen_named_de(&name, fields),
        (Shape::Newtype, Mode::Serialize) => gen_newtype_ser(&name),
        (Shape::Newtype, Mode::Deserialize) => gen_newtype_de(&name),
        (Shape::Unit, Mode::Serialize) => gen_unit_ser(&name),
        (Shape::Unit, Mode::Deserialize) => gen_unit_de(&name),
        (Shape::Enum(variants), Mode::Serialize) => gen_enum_ser(&name, variants),
        (Shape::Enum(variants), Mode::Deserialize) => gen_enum_de(&name, variants),
    };
    match body.parse() {
        Ok(ts) => ts,
        Err(_) => compile_error("serde_derive generated invalid tokens (internal bug)"),
    }
}

// ---------------------------------------------------------------------------
// Input parsing.
// ---------------------------------------------------------------------------

fn parse_input(item: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut pos = 0;

    skip_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    pos += 1;

    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected type name".into()),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the in-tree derive"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Named(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    Ok((name, Shape::Newtype))
                } else {
                    Err(format!(
                        "serde_derive: tuple struct `{name}` with {n} fields is not supported \
                         (only single-field newtypes)"
                    ))
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::Unit)),
            _ => Err(format!("serde_derive: malformed struct `{name}`")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                name.clone(),
                Shape::Enum(parse_variants(&name, g.stream())?),
            )),
            _ => Err(format!("serde_derive: malformed enum `{name}`")),
        },
        other => Err(format!("serde_derive: unsupported item kind `{other}`")),
    }
}

/// Skips (outer) attributes, returning an error only on malformed input.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<(), String> {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *pos += 1,
            _ => return Err("serde_derive: malformed attribute".into()),
        }
    }
    Ok(())
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Collects any leading `#[...]` attribute groups, extracting serde ones.
fn take_field_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<FieldAttrs, String> {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        let group = match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => return Err("serde_derive: malformed attribute".into()),
        };
        *pos += 1;
        parse_serde_attr(group.stream(), &mut attrs)?;
    }
    Ok(attrs)
}

/// Parses the inside of one `#[...]`; non-serde attributes are ignored.
fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(()),
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Ok(()),
    };
    let items: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < items.len() {
        let word = match &items[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => {
                return Err(format!(
                    "serde_derive: unexpected token `{other}` in #[serde(...)]"
                ))
            }
        };
        i += 1;
        match word.as_str() {
            "skip" => attrs.skip = true,
            "default" => {
                if matches!(items.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    let lit = match items.get(i) {
                        Some(TokenTree::Literal(l)) => l.to_string(),
                        _ => {
                            return Err(
                                "serde_derive: #[serde(default = ...)] expects a string".into()
                            )
                        }
                    };
                    i += 1;
                    let path = lit.trim_matches('"').to_string();
                    attrs.default = Some(Some(path));
                } else {
                    attrs.default = Some(None);
                }
            }
            other => {
                return Err(format!(
                    "serde_derive: unsupported serde attribute `{other}`"
                ))
            }
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_field_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("serde_derive: expected `:` after field `{name}`")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        // Consume the trailing comma if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

fn parse_variants(enum_name: &str, stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        // Variant attributes (e.g. doc comments, #[default]) are ignored.
        skip_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde_derive: expected variant name in `{enum_name}`, got {other:?}"
                ))
            }
        };
        pos += 1;
        let mut newtype = false;
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde_derive: variant `{enum_name}::{name}` must be unit or newtype"
                    ));
                }
                newtype = true;
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde_derive: struct variant `{enum_name}::{name}` is not supported"
                ));
            }
            _ => {}
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, newtype });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(clippy::all, unused_qualifications)]\n";

fn gen_named_ser(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    let mut first = true;
    for field in fields.iter().filter(|f| !f.attrs.skip) {
        if !first {
            body.push_str("out.push(',');\n");
        }
        first = false;
        body.push_str(&format!(
            "::serde::write_json_string(out, {:?});\nout.push(':');\n\
             ::serde::Serialize::serialize_json(&self.{}, out);\n",
            field.name, field.name
        ));
    }
    body.push_str("out.push('}');\n");
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}}}\n}}\n"
    )
}

fn gen_named_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for field in fields {
        if field.attrs.skip {
            inits.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                field.name
            ));
            continue;
        }
        let on_missing = match &field.attrs.default {
            Some(Some(path)) => format!("{path}()"),
            Some(None) => "::core::default::Default::default()".to_string(),
            None => format!("::serde::missing_field({:?})?", field.name),
        };
        inits.push_str(&format!(
            "{}: match ::serde::obj_get(__obj, {:?}) {{\n\
             ::core::option::Option::Some(__x) => ::serde::Deserialize::deserialize_json(__x)?,\n\
             ::core::option::Option::None => {on_missing},\n}},\n",
            field.name, field.name
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         let __obj = match __value.as_object() {{\n\
         ::core::option::Option::Some(__o) => __o,\n\
         ::core::option::Option::None => return ::core::result::Result::Err(\
         ::serde::DeError::custom(\"expected JSON object for `{name}`\")),\n}};\n\
         ::core::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
    )
}

fn gen_newtype_ser(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         ::serde::Serialize::serialize_json(&self.0, out);\n}}\n}}\n"
    )
}

fn gen_newtype_de(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_json(__value)?))\n}}\n}}\n"
    )
}

fn gen_unit_ser(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         out.push_str(\"null\");\n}}\n}}\n"
    )
}

fn gen_unit_de(name: &str) -> String {
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         match __value {{\n\
         ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
         _ => ::core::result::Result::Err(::serde::DeError::custom(\
         \"expected null for unit struct `{name}`\")),\n}}\n}}\n}}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        if v.newtype {
            arms.push_str(&format!(
                "{name}::{v} (__f0) => {{\n\
                 out.push('{{');\n\
                 ::serde::write_json_string(out, {vs:?});\n\
                 out.push(':');\n\
                 ::serde::Serialize::serialize_json(__f0, out);\n\
                 out.push('}}');\n}}\n",
                v = v.name,
                vs = v.name
            ));
        } else {
            arms.push_str(&format!(
                "{name}::{v} => ::serde::write_json_string(out, {vs:?}),\n",
                v = v.name,
                vs = v.name
            ));
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         match self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for v in variants.iter().filter(|v| !v.newtype) {
        unit_arms.push_str(&format!(
            "{vs:?} => ::core::result::Result::Ok({name}::{v}),\n",
            v = v.name,
            vs = v.name
        ));
    }
    let mut newtype_arms = String::new();
    for v in variants.iter().filter(|v| v.newtype) {
        newtype_arms.push_str(&format!(
            "{vs:?} => ::core::result::Result::Ok({name}::{v}(\
             ::serde::Deserialize::deserialize_json(__inner)?)),\n",
            v = v.name,
            vs = v.name
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         if let ::core::option::Option::Some(__s) = __value.as_str() {{\n\
         return match __s {{\n{unit_arms}\
         __other => ::core::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}};\n}}\n\
         if let ::core::option::Option::Some(__obj) = __value.as_object() {{\n\
         if __obj.len() == 1 {{\n\
         let (__tag, __inner) = &__obj[0];\n\
         return match __tag.as_str() {{\n{newtype_arms}\
         __other => ::core::result::Result::Err(::serde::DeError::custom(\
         ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}};\n}}\n}}\n\
         ::core::result::Result::Err(::serde::DeError::custom(\
         \"expected string or single-key object for enum `{name}`\"))\n}}\n}}\n"
    )
}
