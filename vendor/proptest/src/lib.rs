//! Minimal in-tree property-testing harness with the `proptest` API shape
//! this workspace uses: the [`strategy::Strategy`] trait (`prop_map`,
//! `prop_flat_map`, `boxed`), range/tuple/`Just`/`vec`/`select`/`any`
//! strategies, a `Union` for `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` macros.
//!
//! Differences from real proptest, on purpose:
//! * **no shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message;
//! * deterministic seeding per (test name, case index), so failures
//!   reproduce without a persistence file (`.proptest-regressions` files
//!   are ignored);
//! * string strategies support only the `\PC{m,n}` pattern family
//!   (printable chars) that the workspace uses.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, func }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, func: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, func }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        func: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.func)(self.source.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Regex-flavored string strategy: only the `\PC{m,n}` family
    /// (printable chars, length in `[m, n]`) is recognized.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (body, min, max) = parse_pattern(self);
            assert_eq!(
                body, "\\PC",
                "unsupported string pattern {self:?}: only \\PC{{m,n}} is implemented"
            );
            let len = rng.gen_range(min..=max);
            (0..len).map(|_| printable_char(rng)).collect()
        }
    }

    fn parse_pattern(pattern: &str) -> (&str, usize, usize) {
        if let Some(rest) = pattern.strip_suffix('}') {
            if let Some((body, counts)) = rest.rsplit_once('{') {
                if let Some((lo, hi)) = counts.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                        return (body, lo, hi);
                    }
                } else if let Ok(n) = counts.trim().parse() {
                    return (body, n, n);
                }
            }
        }
        (pattern, 1, 1)
    }

    /// A char matching `\PC`: printable, never a control character.
    fn printable_char(rng: &mut TestRng) -> char {
        const WIDE: &[char] = &[
            'α', 'β', 'λ', 'Ω', 'é', 'ß', 'ñ', '中', '日', '×', '÷', '€', '→', '…', '😀', '𝕏',
        ];
        match rng.gen_range(0u32..100) {
            0..=79 => char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("ascii printable"),
            80..=89 => char::from_u32(rng.gen_range(0xA1u32..0x100)).expect("latin-1 printable"),
            _ => WIDE[rng.gen_range(0..WIDE.len())],
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait ArbitraryPrim: Sized {
        /// Draws one value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::Rng::gen(rng)
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(
        u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32
    );

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// `prop::sample::select(vec![...])`; panics on an empty list.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }
}

pub mod test_runner {
    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG for one (test, case) pair, so failures reproduce
    /// across runs without a persistence file.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::SeedableRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
    }
}

/// Runs each contained `fn name(binding in strategy, ...) { body }` as a
/// `#[test]`-style function over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::rng_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $parm = $crate::strategy::Strategy::generate(
                            &($strategy),
                            &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type (all arms are boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of real proptest's `prop::` module tree.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let strat = prop::collection::vec(0u32..100, 1..10);
        let mut r1 = crate::test_runner::rng_for("t", 3);
        let mut r2 = crate::test_runner::rng_for("t", 3);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..9), c in any::<u64>()) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            let _ = c;
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        #[test]
        fn oneof_and_select(
            s in prop_oneof![
                Just("fixed".to_string()),
                (0u32..3).prop_map(|n| format!("n{n}")),
            ],
            pick in prop::sample::select(vec![8u32, 32, 96]),
        ) {
            prop_assert!(s == "fixed" || s.starts_with('n'));
            prop_assert!([8, 32, 96].contains(&pick));
        }

        #[test]
        fn string_pattern(text in "\\PC{0,40}") {
            prop_assert!(text.chars().count() <= 40);
            prop_assert!(text.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(Just(n), n)
        })) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|x| *x == v.len()));
        }
    }
}
