//! Minimal in-tree `tempfile` replacement: just [`tempdir`] / [`TempDir`],
//! which is all the workspace uses (scratch directories in tests and
//! benches). Directories are created under `std::env::temp_dir()` with a
//! process-unique, counter-unique name and removed recursively on drop.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively, best-effort) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    delete_on_drop: bool,
}

impl TempDir {
    /// Creates a fresh temporary directory.
    pub fn new() -> io::Result<TempDir> {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        // A few attempts in case of collisions with leftover directories.
        for _ in 0..16 {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let path = base.join(format!(".tmp-tale-{pid}-{n}-{nanos:08x}"));
            match std::fs::create_dir(&path) {
                Ok(()) => {
                    return Ok(TempDir {
                        path,
                        delete_on_drop: true,
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "could not create a unique temporary directory",
        ))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the handle without deleting the directory.
    pub fn into_path(mut self) -> PathBuf {
        self.delete_on_drop = false;
        self.path.clone()
    }

    /// Deletes the directory now, reporting any error.
    pub fn close(mut self) -> io::Result<()> {
        self.delete_on_drop = false;
        std::fs::remove_dir_all(&self.path)
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        self.path()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Creates a new [`TempDir`].
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("x.txt"), b"hello").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn distinct_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn close_reports_ok() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        dir.close().unwrap();
        assert!(!path.exists());
    }
}
