//! Minimal in-tree ChaCha-based RNGs ([`ChaCha8Rng`], [`ChaCha12Rng`],
//! [`ChaCha20Rng`]) implementing the vendored `rand` traits. The core is
//! the genuine ChaCha block function (RFC 8439 quarter-round) keyed from a
//! 32-byte seed; output word order may differ from crates.io `rand_chacha`,
//! which is fine — the workspace relies on seed-determinism, not on a
//! specific upstream stream.

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha keystream generator with `R` double-rounds... strictly, `R`
/// ChaCha rounds as named (ChaCha8 = 8 rounds = 4 double-rounds).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    pos: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut s = [0u32; 16];
        s[0..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        debug_assert!(ROUNDS.is_multiple_of(2), "ChaCha rounds come in pairs");
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = s;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            buf: [0; 16],
            pos: 16,
        }
    }
}

/// ChaCha with 8 rounds — the workspace's default deterministic RNG.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let mut c = ChaCha8Rng::seed_from_u64(12);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_looks_uniform() {
        // crude sanity: mean of many unit floats near 0.5
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
