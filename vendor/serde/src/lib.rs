//! Minimal in-tree serde facade for offline builds.
//!
//! This is *not* the real serde data model: the workspace only ever
//! (de)serializes JSON, so the traits here are JSON-direct —
//! [`Serialize`] appends compact JSON to a `String`, and [`Deserialize`]
//! reads from a parsed [`Value`] tree. The derive macros (re-exported
//! from the in-tree `serde_derive`) generate impls of these traits with
//! real-serde field semantics: externally tagged enums, transparent
//! newtype structs, `#[serde(skip)]`, `#[serde(default)]`, and
//! `#[serde(default = "path")]`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object, in document order (duplicate keys keep the last).
    Object(Vec<(String, Value)>),
}

/// A JSON number, remembering whether it was integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Fits in `i64` (includes all negative integers we care about).
    Int(i64),
    /// Non-negative integer too large for `i64`.
    UInt(u64),
    /// Anything with a fraction or exponent.
    Float(f64),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Integral value as `u64`, if numeric, non-negative, and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            Value::Number(Number::UInt(u)) => Some(*u),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
            {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Integral value as `i64`, if numeric and integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Number(Number::Float(f))
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    fn type_mismatch(expected: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {expected}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serializes `self` as compact JSON appended to `out`.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserializes `Self` from a parsed JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of `value`.
    fn deserialize_json(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by serde_derive-generated code.
// ---------------------------------------------------------------------------

/// Appends `s` as a JSON string (with escaping) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Looks up `key` in object `entries` (last occurrence wins, like serde_json).
pub fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserializes a missing field: succeeds only for types (like `Option`)
/// that accept `null`, otherwise reports the field as missing.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::deserialize_json(&Value::Null)
        .map_err(|_| DeError::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buffer(*self as i128).as_str());
            }
        }
    )*};
}

fn itoa_buffer(v: i128) -> String {
    v.to_string()
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            // JSON has no NaN/Infinity; serde_json writes null.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl Serialize for Value {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.serialize_json(out),
            Value::Number(Number::Int(i)) => out.push_str(&i.to_string()),
            Value::Number(Number::UInt(u)) => out.push_str(&u.to_string()),
            Value::Number(Number::Float(f)) => f.serialize_json(out),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.serialize_json(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::type_mismatch("unsigned integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::type_mismatch("integer", value))?;
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::type_mismatch("boolean", value))
    }
}

impl Deserialize for f64 {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::type_mismatch("number", value))
    }
}

impl Deserialize for f32 {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        f64::deserialize_json(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::type_mismatch("string", value))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::type_mismatch("array", value))?;
        items.iter().map(T::deserialize_json).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::type_mismatch("array of 2", value))?;
        if items.len() != 2 {
            return Err(DeError::custom(format!(
                "expected array of 2, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::deserialize_json(&items[0])?,
            B::deserialize_json(&items[1])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::type_mismatch("array of 3", value))?;
        if items.len() != 3 {
            return Err(DeError::custom(format!(
                "expected array of 3, found {} elements",
                items.len()
            )));
        }
        Ok((
            A::deserialize_json(&items[0])?,
            B::deserialize_json(&items[1])?,
            C::deserialize_json(&items[2])?,
        ))
    }
}

impl Deserialize for Value {
    fn deserialize_json(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// JSON text parser.
// ---------------------------------------------------------------------------

/// Parses a JSON document, requiring it to span the whole input.
pub fn parse_json(input: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> DeError {
        DeError::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, DeError> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so decode
                    // the full char starting one byte back.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty");
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut s = String::new();
        v.serialize_json(&mut s);
        parse_json(&s).unwrap()
    }

    #[test]
    fn value_roundtrips() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::Int(-3))),
            (
                "b".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            (
                "c".into(),
                Value::String("quote \" slash \\ nl \n tab \t".into()),
            ),
            ("d".into(), Value::Number(Number::Float(1.5))),
            ("e".into(), Value::Number(Number::UInt(u64::MAX))),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("{not json").is_err());
        assert!(parse_json("").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("[1] trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("01a").is_err());
    }

    #[test]
    fn primitive_deserialize() {
        let v = parse_json("[3, -4, 2.5, true, \"hi\", null]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(u32::deserialize_json(&items[0]).unwrap(), 3);
        assert_eq!(i64::deserialize_json(&items[1]).unwrap(), -4);
        assert_eq!(f64::deserialize_json(&items[2]).unwrap(), 2.5);
        assert!(bool::deserialize_json(&items[3]).unwrap());
        assert_eq!(String::deserialize_json(&items[4]).unwrap(), "hi");
        assert_eq!(Option::<u32>::deserialize_json(&items[5]).unwrap(), None);
        assert!(u32::deserialize_json(&items[1]).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_json("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "A😀");
    }

    #[test]
    fn missing_field_only_for_nullable() {
        assert_eq!(missing_field::<Option<u32>>("x").unwrap(), None);
        let err = missing_field::<u32>("x").unwrap_err();
        assert!(err.to_string().contains("missing field `x`"));
    }
}
