//! Minimal in-tree stand-in for the `criterion` bench harness: enough API
//! for this workspace's benches (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros). Timing is real but
//! simple: one warm-up iteration, then `sample_size` timed iterations,
//! reporting mean wall-clock per iteration. No statistics, plots, or
//! baseline storage.

use std::fmt;
use std::time::{Duration, Instant};

/// Names one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Hands closures a timer; collects per-iteration wall-clock.
pub struct Bencher {
    sample_size: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let _ = std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size.max(1) as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement (criterion's meaning is samples; here
    /// it doubles as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{}: {:>12.3?} per iter ({} iters)",
            self.name, id, b.mean, self.sample_size
        );
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(&id, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level bench driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Opaque to the optimizer — re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a bench group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
