//! Minimal in-tree facade with the `parking_lot` API shape this workspace
//! uses, implemented over `std::sync`. Poisoning is swallowed (a poisoned
//! lock yields its guard anyway), matching parking_lot's no-poisoning
//! semantics. Includes the `arc_lock` surface (`read_arc` / `write_arc`
//! returning owned guards) via a lifetime-erased std guard held next to a
//! clone of the `Arc`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

/// Marker standing in for parking_lot's raw lock type parameter on the
/// `lock_api` guard aliases. Carries no state here.
pub struct RawRwLock {
    _private: (),
}

/// Mutual exclusion backed by [`std::sync::Mutex`], without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                guard: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take the std guard; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`], parking_lot style
/// (the guard is passed by `&mut` and re-locked in place).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.guard = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(reacquired);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Reader–writer lock backed by [`std::sync::RwLock`], without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Shared read access holding the `Arc` alive: the returned guard owns
    /// a clone of `this`, so it has no borrow lifetime.
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T> {
        lock_api::ArcRwLockReadGuard::lock(Arc::clone(self))
    }

    /// Exclusive write access holding the `Arc` alive.
    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T> {
        lock_api::ArcRwLockWriteGuard::lock(Arc::clone(self))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Owned (Arc-holding) guard types matching the `lock_api` aliases the
/// workspace imports.
pub mod lock_api {
    use super::{Arc, Deref, DerefMut, RwLock};
    use std::marker::PhantomData;

    /// Shared guard that keeps its `Arc<RwLock<T>>` alive.
    ///
    /// Field order matters: `guard` is declared before `arc` so it drops
    /// first — the lifetime-erased std guard must never outlive the lock
    /// it points into. The lock itself is heap-pinned by the `Arc`, so
    /// erasing the borrow lifetime is sound while `arc` is held.
    pub struct ArcRwLockReadGuard<R, T: ?Sized + 'static> {
        guard: Option<std::sync::RwLockReadGuard<'static, T>>,
        arc: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized + 'static> ArcRwLockReadGuard<R, T> {
        pub(crate) fn lock(arc: Arc<RwLock<T>>) -> Self {
            let guard = match arc.inner.read() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            // SAFETY: lifetime erasure only; `arc` keeps the RwLock alive
            // and at a stable address for as long as this guard exists,
            // and `guard` drops before `arc` by field order.
            let guard: std::sync::RwLockReadGuard<'static, T> =
                unsafe { std::mem::transmute(guard) };
            ArcRwLockReadGuard {
                guard: Some(guard),
                arc,
                _raw: PhantomData,
            }
        }

        /// The lock this guard came from.
        pub fn rwlock(&self) -> &Arc<RwLock<T>> {
            &self.arc
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;

        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present")
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            // Explicit for clarity: release the lock before the Arc.
            self.guard.take();
        }
    }

    /// Exclusive guard that keeps its `Arc<RwLock<T>>` alive.
    pub struct ArcRwLockWriteGuard<R, T: ?Sized + 'static> {
        guard: Option<std::sync::RwLockWriteGuard<'static, T>>,
        arc: Arc<RwLock<T>>,
        _raw: PhantomData<R>,
    }

    impl<R, T: ?Sized + 'static> ArcRwLockWriteGuard<R, T> {
        pub(crate) fn lock(arc: Arc<RwLock<T>>) -> Self {
            let guard = match arc.inner.write() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            };
            // SAFETY: same lifetime-erasure argument as the read guard.
            let guard: std::sync::RwLockWriteGuard<'static, T> =
                unsafe { std::mem::transmute(guard) };
            ArcRwLockWriteGuard {
                guard: Some(guard),
                arc,
                _raw: PhantomData,
            }
        }

        /// The lock this guard came from.
        pub fn rwlock(&self) -> &Arc<RwLock<T>> {
            &self.arc
        }
    }

    impl<R, T: ?Sized + 'static> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;

        fn deref(&self) -> &T {
            self.guard.as_ref().expect("guard present")
        }
    }

    impl<R, T: ?Sized + 'static> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.guard.as_mut().expect("guard present")
        }
    }

    impl<R, T: ?Sized + 'static> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.guard.take();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let g1 = l.read();
        let g2 = l.read();
        assert_eq!(g1.len() + g2.len(), 6);
        drop((g1, g2));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn arc_guards_outlive_local_borrow() {
        let l = Arc::new(RwLock::new(String::from("hi")));
        let owned = {
            let tmp = Arc::clone(&l);
            RwLock::read_arc(&tmp)
        };
        assert_eq!(&*owned, "hi");
        drop(owned);
        let mut w = RwLock::write_arc(&l);
        w.push_str(" there");
        drop(w);
        assert_eq!(&*l.read(), "hi there");
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        drop(started);
        handle.join().unwrap();
    }
}
