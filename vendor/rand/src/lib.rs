//! Minimal in-tree replacement for the `rand` crate, providing exactly the
//! API surface this workspace uses: [`RngCore`], [`SeedableRng`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Distributions are uniform; integer ranges use
//! 128-bit widening multiply (no modulo bias), floats use the standard
//! 53-bit mantissa construction.
//!
//! The workspace builds offline, so crates.io `rand` cannot be fetched;
//! this stands in for it behind the same workspace dependency name.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, with the `seed_from_u64` convenience the
/// workspace uses everywhere (SplitMix64 expansion, like upstream).
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random from raw bits (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased integer in `[0, bound)` via 128-bit widening multiply
/// (Lemire's method, with the rejection step).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = rng.next_u64() as u128 * bound as u128;
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = rng.next_u64() as u128 * bound as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors upstream rand's
/// `SampleUniform`: one *blanket* [`SampleRange`] impl per range form over
/// this trait, so literal-typed calls like `rng.gen_range(20..=120)` keep
/// the type-inference behavior of the real crate (per-type range impls
/// would make the integer literal ambiguous).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    /// Panics on empty ranges.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // full u64 domain
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of `T` from raw bits.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        <f64 as Standard>::sample_standard(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and selection.
pub mod seq {
    use super::{uniform_below, RngCore};

    /// `shuffle` / `choose` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Rng re-exports module kept for drop-in compatibility.
pub mod rngs {
    /// A small fast PRNG (SplitMix64 core) for internal use.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
