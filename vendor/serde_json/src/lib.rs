//! Minimal in-tree `serde_json` over the JSON-direct serde facade:
//! `to_string`, `to_string_pretty`, `to_writer`, `from_str`,
//! `from_reader`, and an [`Error`] type — the exact surface this
//! workspace calls.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = serde::parse_json(&compact)
        .map_err(|e| Error::new(format!("internal pretty-print reparse failed: {e}")))?;
    let mut out = String::new();
    write_pretty(&parsed, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = serde::parse_json(s)?;
    Ok(T::deserialize_json(&value)?)
}

/// Deserializes `T` from a reader producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(value: &Value, level: usize, out: &mut String) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, level + 1);
                write_pretty(item, level + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, level);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                write_indent(out, level + 1);
                serde::write_json_string(out, k);
                out.push_str(": ");
                write_pretty(v, level + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, level);
            out.push('}');
        }
        other => other.serialize_json(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_tuples_roundtrip() {
        let data: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let s = to_string(&data).unwrap();
        assert_eq!(s, r#"[[1,"a"],[2,"b"]]"#);
        let back: Vec<(u32, String)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_output_shape() {
        let data: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&data).unwrap();
        assert_eq!(s, "[\n  [\n    1,\n    2\n  ],\n  []\n]");
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn from_reader_and_to_writer() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![true, false]).unwrap();
        let back: Vec<bool> = from_reader(&buf[..]).unwrap();
        assert_eq!(back, vec![true, false]);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Vec<u32>>("{not json").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<Vec<u32>>("\"str\"").is_err());
    }
}
